"""Systematic schedule exploration: DPOR over the gate-based controller.

Sampling (``@interleave``) answers "did N random schedules agree?".
This module answers the stronger question for *small* models: **every
inequivalent schedule** of a handful of workers over the real
primitives, enumerated and checked, with an exhaustiveness certificate.

The exploration is dynamic partial-order reduction in the classic
replay style (generators of real threads cannot be snapshotted, so each
branch re-executes the model from scratch):

1. Run the model once under a :class:`~repro.testkit.schedulers.
   DirectedScheduler` — follow the branch's forced *prefix* of worker
   names, then a deterministic fallback — recording every decision
   (candidates offered, choice made) and the per-step *sleep set*.
2. From the decision log, enumerate backtrack points: at each depth,
   every candidate not yet explored and not in the sleep set becomes a
   new branch (the prefix up to that depth plus the sibling).  Sleep
   sets (Godefroid) carry the already-explored siblings that are
   *independent* of the new choice, so commuting permutations of
   independent grants are never re-run.
3. Completed runs are canonicalized by the Foata normal form of their
   dependence DAG (:func:`repro.testkit.por.canonical_key`); the number
   of distinct keys is the number of inequivalent schedules covered.

Dependence between grants comes from the gate labels alone (a worker
stops at every sync point, so a grant's footprint is its gate's
``(point, obj)`` — see :mod:`repro.testkit.por`), which keeps the
relation sound without instrumenting memory accesses.

Real threads bring real nondeterminism: a wake delivered by the last
grant may surface its sleeper a moment later.  The explorer therefore
runs the controller with a *settle* window before every decision,
retries a branch whose prefix diverges, repairs the frontier when a
candidate surfaces late (re-branching with an empty sleep set, which is
always sound), and counts whatever it could not reconcile in
:attr:`ExploreReport.divergences` — the certificate claims completeness
only when that counter is zero and no budget was hit.

Models must use **untimed** waits: a ``check(timeout=...)`` arms a real
timer on the shared wheel, and a sweeper firing mid-schedule is
scheduling noise the explorer cannot control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping, Sequence

from repro.testkit.harness import Controller, DeadlockReport, ScheduleDeadlock, ScheduleError
from repro.testkit.por import ObjLabeler, GrantEvent, canonical_key, family_of, footprints_conflict
from repro.testkit.schedulers import Decision, DirectedScheduler, PrefixDivergence
from repro.testkit.script import _spawn_all
from repro.testkit.trace import Trace

__all__ = [
    "explore_model",
    "ExploreReport",
    "DeadlockWitness",
    "FailureWitness",
]

#: A model factory: builds fresh primitives and returns either a worker
#: mapping (name -> callable or (fn, *args) tuple), or a (mapping,
#: oracle) pair.  The oracle runs in the test thread after a completed
#: schedule; it may assert, and whatever hashable value it returns is
#: collected into :attr:`ExploreReport.states`.
ModelFactory = Callable[[], Any]

_Footprint = tuple[str, "str | None"]


@dataclass(frozen=True, slots=True)
class DeadlockWitness:
    """One deadlocking schedule found during exploration."""

    prefix: tuple[str, ...]
    trace: str
    report: DeadlockReport | None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"deadlock after prefix {list(self.prefix)}: {self.trace}"


@dataclass(frozen=True, slots=True)
class FailureWitness:
    """One schedule that crashed a worker or failed the oracle."""

    prefix: tuple[str, ...]
    trace: str
    error: BaseException

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"failure after prefix {list(self.prefix)}: {self.error!r} ({self.trace})"


@dataclass
class ExploreReport:
    """Everything one :func:`explore_model` call established.

    ``schedules`` is the number of *inequivalent* completed schedules
    (distinct Foata keys); ``executions`` how many runs that took —
    executions above schedules are the replay overhead of branching
    plus any equivalent runs sleep sets could not prune.
    """

    executions: int = 0
    schedules: int = 0
    states: set = field(default_factory=set)
    deadlocks: list[DeadlockWitness] = field(default_factory=list)
    failures: list[FailureWitness] = field(default_factory=list)
    divergences: int = 0      #: branches abandoned: prefix would not replay
    repairs: int = 0          #: late-surfacing candidates re-branched conservatively
    redundant: int = 0        #: runs whose every candidate was asleep (wasted)
    truncated: bool = False   #: stopped at max_executions before the frontier drained
    max_depth: int = 0

    @property
    def complete(self) -> bool:
        """True when the enumeration provably covered every inequivalent
        schedule: the frontier drained, every branch replayed
        faithfully, and no budget cut the search short."""
        return self.executions > 0 and not self.truncated and self.divergences == 0

    @property
    def certificate(self) -> str:
        """Human-readable exhaustiveness certificate."""
        verdict = (
            "EXHAUSTIVE: every inequivalent schedule covered"
            if self.complete
            else "INCOMPLETE: coverage not proven"
            + (" (budget hit)" if self.truncated else "")
            + (f" ({self.divergences} divergent branch(es))" if self.divergences else "")
        )
        lines = [
            verdict,
            f"  {self.schedules} inequivalent schedule(s) in {self.executions} "
            f"execution(s), max depth {self.max_depth}",
            f"  outcomes: {len(self.states)} distinct state(s), "
            f"{len(self.deadlocks)} deadlock(s), {len(self.failures)} failure(s)",
        ]
        if self.repairs or self.redundant:
            lines.append(
                f"  frontier repairs: {self.repairs}, redundant runs: {self.redundant}"
            )
        return "\n".join(lines)

    def check(
        self,
        *,
        require_complete: bool = True,
        allow_deadlocks: bool = False,
        allow_failures: bool = False,
    ) -> "ExploreReport":
        """Assert the exploration's verdict; returns self for chaining."""
        problems = []
        if require_complete and not self.complete:
            problems.append("exploration incomplete")
        if not allow_deadlocks and self.deadlocks:
            problems.append(f"{len(self.deadlocks)} deadlock(s), first: {self.deadlocks[0]}")
        if not allow_failures and self.failures:
            problems.append(f"{len(self.failures)} failure(s), first: {self.failures[0]}")
        if problems:
            raise AssertionError("; ".join(problems) + "\n" + self.certificate)
        return self

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.certificate


# ------------------------------------------------------------ internals


class _RedundantBranch(Exception):
    """Raised by the fallback when every candidate is asleep — the rest
    of the run is provably covered by an earlier branch."""


@dataclass(frozen=True, slots=True)
class _Node:
    """One frontier branch: a forced prefix and the sleep set holding at
    its end (names -> footprints of already-covered siblings)."""

    prefix: tuple[str, ...]
    sleep: tuple[tuple[str, _Footprint], ...]


class _SleepTracker:
    """Per-run sleep-set bookkeeping, fed by the DirectedScheduler.

    Maintains the current sleep set across decisions (a sleeping
    transition wakes when a dependent grant runs) and records, per
    step, the pre-decision sleep set and every candidate's footprint —
    the raw material for post-run backtrack enumeration.
    """

    def __init__(self, initial: Mapping[str, _Footprint], start_depth: int) -> None:
        self.labeler = ObjLabeler()
        self.sleep: dict[str, _Footprint] = dict(initial)
        #: The node's sleep set describes the state *after* its forced
        #: prefix — the prefix's own grants must not prune it.
        self.start_depth = start_depth
        self.sleeps: list[dict[str, _Footprint]] = []        # pre-decision copies
        self.footprints: list[dict[str, _Footprint]] = []    # per-step candidates
        self.chosen_fp: list[_Footprint] = []
        self.redundant = False

    def _footprint(self, worker) -> _Footprint:
        return (worker.point or "?", self.labeler.label(worker.obj))

    def fallback(self, waiting, step):
        for worker in waiting:
            if worker.name not in self.sleep:
                return worker
        # Every candidate is asleep: each continuation from this state
        # is equivalent to one an earlier branch already covers
        # (classic sleep-set pruning), so abandon the run here instead
        # of paying for the rest of it.
        self.redundant = True
        raise _RedundantBranch()

    def on_decision(self, decision: Decision, waiting) -> None:
        fps = {w.name: self._footprint(w) for w in waiting}
        chosen_fp = fps[decision.chosen]
        self.sleeps.append(dict(self.sleep))
        self.footprints.append(fps)
        self.chosen_fp.append(chosen_fp)
        if decision.step < self.start_depth:
            return  # still replaying the prefix; the sleep set is not live yet
        # The chosen grant wakes every sleeping transition dependent on it.
        self.sleep = {
            name: fp
            for name, fp in self.sleep.items()
            if name != decision.chosen and not footprints_conflict(fp, chosen_fp)
        }


@dataclass
class _RunRecord:
    outcome: str                 # "ok" | "deadlock" | "failure"
    choices: list[str]
    tracker: _SleepTracker
    trace: Trace
    error: BaseException | None = None
    report: DeadlockReport | None = None
    state: Hashable = None


def _resolve_factory(factory: ModelFactory):
    built = factory()
    if isinstance(built, tuple):
        threads, oracle = built
        return threads, oracle
    return built, None


def _run_once(
    factory: ModelFactory,
    node: _Node,
    *,
    settle: float,
    stall_timeout: float,
    deadlock_confirm: float,
    deadlock_timeout: float,
    patience: float,
    finish_timeout: float,
) -> _RunRecord:
    threads, oracle = _resolve_factory(factory)
    # A short finish_timeout matters: after a deadlocking schedule the
    # parked workers never finish, and close() would otherwise spend the
    # controller's default 20s joining daemons we are about to abandon —
    # on every single deadlocking branch of the search.
    controller = Controller(
        stall_timeout=stall_timeout,
        deadlock_confirm=deadlock_confirm,
        deadlock_timeout=deadlock_timeout,
        finish_timeout=finish_timeout,
    )
    _spawn_all(controller, threads)
    tracker = _SleepTracker(dict(node.sleep), len(node.prefix))
    scheduler = DirectedScheduler(
        node.prefix,
        fallback=tracker.fallback,
        on_decision=tracker.on_decision,
        patience=patience,
    )
    outcome, error, report = "ok", None, None
    with controller:
        try:
            controller.run_scheduler(scheduler, settle=settle)
            controller.finish()
            controller.raise_worker_errors()
        except PrefixDivergence:
            raise
        except _RedundantBranch:
            outcome = "redundant"  # close() free-runs the workers out
        except ScheduleDeadlock as exc:
            outcome, error, report = "deadlock", exc, exc.report
        except ScheduleError as exc:
            outcome, error = "failure", exc
    choices = [d.chosen for d in scheduler.decisions]
    record = _RunRecord(outcome, choices, tracker, controller.trace, error, report)
    if outcome == "ok" and oracle is not None:
        try:
            record.state = oracle(controller)
        except BaseException as exc:  # noqa: BLE001 - the oracle IS the check
            record.outcome, record.error = "failure", exc
    return record


def explore_model(
    factory: ModelFactory,
    *,
    max_executions: int = 2000,
    settle: float | None = None,
    stall_timeout: float = 0.01,
    deadlock_confirm: float = 0.1,
    deadlock_timeout: float = 1.0,
    patience: float = 1.0,
    finish_timeout: float = 0.5,
    divergence_retries: int = 2,
) -> ExploreReport:
    """Exhaustively explore the inequivalent schedules of a small model.

    ``factory`` builds a *fresh* model per execution and returns either
    a worker mapping (as for :func:`repro.testkit.replay`) or a
    ``(mapping, oracle)`` pair; the oracle is called with the finished
    controller after each completed schedule, may assert model
    invariants, and its (hashable) return value is collected into
    :attr:`ExploreReport.states` — "every schedule reaches one of
    these states" falls out of the enumeration.

    Deadlocks and failures do not stop the search: they are collected
    as witnesses (with replayable traces) and the remaining frontier is
    still explored, so one report describes the whole schedule space.
    Call :meth:`ExploreReport.check` to turn the verdict into an
    assertion.
    """
    if settle is None:
        settle = stall_timeout
    report = ExploreReport()
    seen_keys: set[tuple] = set()
    frontier_seen: dict[tuple[str, ...], set[str]] = {}
    stack: list[_Node] = [_Node((), ())]

    while stack:
        if report.executions >= max_executions:
            report.truncated = True
            break
        node = stack.pop()
        record = None
        for _ in range(divergence_retries + 1):
            try:
                record = _run_once(
                    factory,
                    node,
                    settle=settle,
                    stall_timeout=stall_timeout,
                    deadlock_confirm=deadlock_confirm,
                    deadlock_timeout=deadlock_timeout,
                    patience=patience,
                    finish_timeout=finish_timeout,
                )
                break
            except PrefixDivergence:
                continue
        if record is None:
            report.divergences += 1
            continue
        report.executions += 1
        report.max_depth = max(report.max_depth, len(record.choices))
        if record.tracker.redundant:
            report.redundant += 1
        tracker = record.tracker

        if record.outcome == "ok":
            events = [
                GrantEvent(i, name, fp[0], family_of(fp[0], fp[1]))
                for i, (name, fp) in enumerate(zip(record.choices, tracker.chosen_fp))
            ]
            seen_keys.add(canonical_key(events))
            report.schedules = len(seen_keys)
            try:
                report.states.add(record.state)
            except TypeError:
                report.states.add(repr(record.state))
        elif record.outcome == "deadlock":
            report.deadlocks.append(
                DeadlockWitness(node.prefix, str(record.trace), record.report)
            )
        elif record.outcome == "failure":
            report.failures.append(
                FailureWitness(node.prefix, str(record.trace), record.error)
            )
        # "redundant": abandoned mid-run, covered by an earlier branch —
        # its decision log still feeds the backtrack enumeration below.

        # ---- enumerate backtrack points from the decision log
        for depth in range(len(record.choices)):
            path = tuple(record.choices[:depth])
            chosen = record.choices[depth]
            candidates = tracker.footprints[depth]
            seen = frontier_seen.get(path)
            if seen is None:
                # First branch at this state: schedule every un-slept
                # sibling, threading sleep sets in exploration order.
                seen = frontier_seen[path] = {chosen}
                sleep_d = tracker.sleeps[depth]
                prior: list[tuple[str, _Footprint]] = [(chosen, tracker.chosen_fp[depth])]
                pushes: list[_Node] = []
                for name in sorted(candidates):
                    if name == chosen:
                        continue
                    seen.add(name)
                    if name in sleep_d:
                        continue  # an equivalent earlier branch covers it
                    fp = candidates[name]
                    alt_sleep = {
                        n: f
                        for n, f in sleep_d.items()
                        if n != name and not footprints_conflict(f, fp)
                    }
                    for prior_name, prior_fp in prior:
                        if prior_name != name and not footprints_conflict(prior_fp, fp):
                            alt_sleep[prior_name] = prior_fp
                    pushes.append(
                        _Node(path + (name,), tuple(sorted(alt_sleep.items())))
                    )
                    prior.append((name, fp))
                stack.extend(reversed(pushes))  # pop in candidate order
            else:
                # Frontier repair: a candidate this state had never
                # offered before surfaced (real-primitive timing).  An
                # empty sleep set is always sound, just less pruned.
                for name in sorted(candidates):
                    if name not in seen:
                        seen.add(name)
                        stack.append(_Node(path + (name,), ()))
                        report.repairs += 1
    return report
