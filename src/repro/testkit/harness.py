"""The interleaving controller: gate real threads at named sync points.

The controller registers a process-wide hook with
:mod:`repro.core.syncpoints`.  Worker threads it spawned park at every
sync point they hit and advance only when *granted*; everything else in
the process (the pytest main thread, unrelated threads) passes through
untouched.  On top of that gate primitive it offers two driving styles:

* **scheduler-driven** (:meth:`Controller.run_scheduler`): one worker at
  a time is granted, chosen by a :mod:`~repro.testkit.schedulers` policy,
  until every worker finishes.
* **positioned** (used by :mod:`~repro.testkit.script`): the test
  explicitly walks workers from gate to gate (``until``/``grant``/
  ``run_thread``) to pin one exact interleaving.

Real blocking is the hard part of scheduling *real* primitives: a
granted worker may vanish into ``Condition.wait`` or block on a lock a
gated worker holds.  The controller never tries to prevent that — it
detects it.  A grant through a known-blocking point (``park.enter``,
``multiwait.park``, ``doorbell.wait``) marks the worker off-schedule
immediately; any other granted worker that fails to reach its next gate
within ``stall_timeout`` is presumed blocked and scheduling moves on.  A
blocked worker that later surfaces at a gate rejoins the schedule
normally.

Deadlock reporting is two-speed.  When every unfinished worker is
*known*-blocked at an engine park point (where a pending timed wake is
visible through the shared timer wheel) and the wheel holds no armed
deadline, nobody can make progress: after one short confirmation window
(``deadlock_confirm``, to absorb a grant whose park is still en route
to the wheel) the schedule is reported **instantly** as a
:class:`ScheduleDeadlock` carrying a structured :class:`DeadlockReport`
— who is parked where, and who waits on what level of which counter.
Only when some worker is blocked in an *unknown* primitive (a plain
lock, a doorbell with a private timeout) does the controller fall back
to the conservative no-progress-for-``deadlock_timeout`` heuristic.

Every grant is recorded; :attr:`Controller.trace` is the compact
replayable schedule (:class:`~repro.testkit.trace.Trace`).
"""

from __future__ import annotations

import sys
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core import syncpoints
from repro.core.engine import wheel
from repro.testkit.trace import Trace

__all__ = [
    "Controller",
    "DeadlockReport",
    "ScheduleError",
    "ScheduleDeadlock",
    "ScheduleFailure",
    "WORKER_START",
]

#: Pseudo sync point every worker is gated at before its body runs, so a
#: schedule controls launch order too.
WORKER_START = "start"

# Worker lifecycle states.
_NEW = "new"            # spawned, not yet at the start gate
_WAITING = "waiting"    # parked at a gate, awaiting a grant
_RUNNING = "running"    # granted, expected to reach another gate promptly
_BLOCKED = "blocked"    # granted but presumed stuck in a real primitive
_DONE = "done"          # body returned (or raised; see .error)


class ScheduleError(AssertionError):
    """The harness could not drive the schedule as asked (bad script,
    worker stuck at a gate past every timeout, mis-named thread...)."""


class ScheduleDeadlock(ScheduleError):
    """Every unfinished worker is blocked in a real primitive with no
    way to make progress — a lost wakeup or a genuine deadlock in the
    code under test.  When raised by the scheduler loop, ``report`` is
    the structured :class:`DeadlockReport` (who waits where, on what)."""

    def __init__(self, message: str, *, report: "DeadlockReport | None" = None) -> None:
        super().__init__(message)
        self.report = report


class ScheduleFailure(AssertionError):
    """Wrapper raised by ``@interleave`` carrying the failing schedule's
    trace, seed, and replay instructions."""

    def __init__(self, message: str, *, trace: Trace, seed: int | None = None) -> None:
        super().__init__(message)
        self.trace = trace
        self.seed = seed


@dataclass(frozen=True, slots=True)
class BlockedWorkerInfo:
    """One blocked worker in a :class:`DeadlockReport`."""

    name: str
    point: str          #: the gate it was last granted through ("?" if none)
    known: bool         #: True = granted through a known-blocking point
    obj: str            #: repr of the primitive at that gate

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "parked" if self.known else "presumed blocked"
        return f"{self.name}: {kind} after {self.point!r} on {self.obj}"


@dataclass(frozen=True, slots=True)
class CounterWaits:
    """Who-waits-on-what for one counter involved in a deadlock."""

    counter: str                          #: repr of the counter
    value: int                            #: value at capture time
    levels: tuple[tuple[int, int], ...]   #: (level, waiter count) pairs

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        waits = "; ".join(f"level {lv}: {n} waiter(s)" for lv, n in self.levels)
        return f"{self.counter}: value={self.value}, waiting: {waits or 'none'}"


@dataclass(frozen=True, slots=True)
class DeadlockReport:
    """Structured schedule-deadlock diagnosis, attached to
    :class:`ScheduleDeadlock` by the scheduler loop.

    ``instant`` distinguishes the all-parked proof (every unfinished
    worker known-blocked at an engine park point, timer wheel empty)
    from the conservative no-progress-timeout fallback; ``waited`` is
    the confirmation window that elapsed before reporting.
    """

    workers: tuple[BlockedWorkerInfo, ...]
    counters: tuple[CounterWaits, ...] = field(default_factory=tuple)
    wheel_armed: int = 0
    instant: bool = False
    waited: float = 0.0
    trace: str = ""

    def __str__(self) -> str:
        mode = (
            "all workers parked, timer wheel empty — nothing can wake anyone"
            if self.instant
            else f"no progress for {self.waited:.2g}s"
        )
        lines = [f"schedule deadlock ({mode}):"]
        lines += [f"  {info}" for info in self.workers]
        if self.counters:
            lines.append("  who waits on what:")
            lines += [f"    {cw}" for cw in self.counters]
        if self.wheel_armed:
            lines.append(f"  timer wheel: {self.wheel_armed} armed deadline(s)")
        lines.append(f"  trace: {self.trace}")
        return "\n".join(lines)


def _capture_counter_waits(objs: list[object]) -> tuple[CounterWaits, ...]:
    """Who-waits-on-what snapshots for the distinct counters in ``objs``.

    Reuses the stall watchdog's capture (``repro.obs.watchdog``); any
    object without counter-shaped state is skipped.  Imported lazily so
    the testkit does not pull the observability layer until a deadlock
    actually needs diagnosing.
    """
    try:
        from repro.obs.watchdog import capture_waiting
    except Exception:  # pragma: no cover - obs layer unavailable
        return ()
    out: list[CounterWaits] = []
    seen: set[int] = set()
    for obj in objs:
        if obj is None or id(obj) in seen or not hasattr(obj, "snapshot"):
            continue
        seen.add(id(obj))
        captured = capture_waiting(obj)
        if captured is None:
            continue
        value, waiting = captured
        out.append(CounterWaits(repr(obj), value, tuple(waiting)))
    return tuple(out)


class _Worker:
    """Controller-side record of one gated thread."""

    __slots__ = (
        "name", "fn", "args", "thread", "status", "point", "obj",
        "granted", "error", "blocked_known",
    )

    def __init__(self, name: str, fn: Callable[..., Any], args: tuple) -> None:
        self.name = name
        self.fn = fn
        self.args = args
        self.thread: threading.Thread | None = None
        self.status = _NEW
        self.point: str | None = None
        self.obj: object | None = None
        self.granted = False
        self.error: BaseException | None = None
        #: True when the worker went _BLOCKED via a grant through a
        #: known-blocking point (engine park); False for presumed
        #: stalls in unknown primitives.
        self.blocked_known = False

    def __repr__(self) -> str:
        return f"<worker {self.name} {self.status}" + (
            f" at {self.point}>" if self.point else ">"
        )


#: Serializes schedules process-wide: the sync-point hook is global, so
#: two controllers must never drive threads at the same time.
_schedule_lock = threading.Lock()


class Controller:
    """Spawn gated workers and drive them through one interleaving.

    Use as a context manager (or call :meth:`start`/:meth:`close`):
    entering installs the sync-point hook and starts the workers gated at
    ``start``; exiting force-finishes stragglers and uninstalls the hook
    no matter how the schedule ended.
    """

    def __init__(
        self,
        *,
        stall_timeout: float = 0.02,
        deadlock_timeout: float = 2.0,
        deadlock_confirm: float = 0.2,
        grant_timeout: float = 60.0,
        finish_timeout: float = 20.0,
    ) -> None:
        self._cond = threading.Condition()
        self._workers: dict[str, _Worker] = {}
        self._by_ident: dict[int, _Worker] = {}
        self._point_invariants: dict[str, list[Callable[[object], None]]] = {}
        self.trace = Trace()
        self.divergences = 0
        self._gen = 0           # bumped on every state change, for change-waits
        self._free_run = False  # grants disabled: everything passes through
        self._started = False
        self._closed = False
        self.stall_timeout = stall_timeout
        self.deadlock_timeout = deadlock_timeout
        #: Silence window confirming an *instant* deadlock verdict: long
        #: enough for a just-granted park to reach the timer wheel (and
        #: for the engine's ~20ms pre-wheel grace wait to expire), far
        #: below the conservative ``deadlock_timeout``.
        self.deadlock_confirm = deadlock_confirm
        self.grant_timeout = grant_timeout
        self.finish_timeout = finish_timeout

    # ------------------------------------------------------------ setup

    def spawn(self, name: str, fn: Callable[..., Any], *args: Any) -> None:
        """Register worker ``name`` running ``fn(*args)`` (before start)."""
        if self._started:
            raise ScheduleError("spawn() after start()")
        if not name or ":" in name or any(c.isspace() for c in name):
            raise ValueError(f"worker name must be ':'- and whitespace-free, got {name!r}")
        if name in self._workers:
            raise ValueError(f"duplicate worker name {name!r}")
        self._workers[name] = _Worker(name, fn, args)

    def invariant_at(self, point: str, fn: Callable[[object], None]) -> None:
        """Run ``fn(obj)`` in the arriving thread whenever ``point`` fires.

        The thread may hold the primitive's internal locks at that
        moment (see the point table in ``docs/testing.md``); the checker
        must only read state, never call back into the primitive.  A
        raising checker fails the worker and thereby the schedule.
        """
        self._point_invariants.setdefault(point, []).append(fn)

    # ------------------------------------------------------- the hook

    def _hook(self, point: str, obj: object) -> None:
        worker = self._by_ident.get(threading.get_ident())
        if worker is None:
            return
        for checker in self._point_invariants.get(point, ()):
            checker(obj)
        if self._free_run:
            return
        self._gate(worker, point, obj)

    def _gate(self, worker: _Worker, point: str, obj: object) -> None:
        with self._cond:
            if self._free_run:
                return
            worker.status = _WAITING
            worker.point = point
            worker.obj = obj
            self._bump()
            deadline = time.monotonic() + self.grant_timeout
            while not worker.granted and not self._free_run:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    worker.status = _RUNNING
                    raise ScheduleError(
                        f"worker {worker.name!r} abandoned at gate {point!r}: "
                        f"no grant within {self.grant_timeout}s (trace: {self.trace})"
                    )
                self._cond.wait(remaining)
            worker.granted = False

    def _run_worker(self, worker: _Worker) -> None:
        self._by_ident[threading.get_ident()] = worker
        try:
            self._gate(worker, WORKER_START, None)
            worker.fn(*worker.args)
        except BaseException as exc:  # noqa: BLE001 - reported via .errors
            worker.error = exc
        finally:
            with self._cond:
                worker.status = _DONE
                worker.point = None
                self._bump()

    def _bump(self) -> None:
        # Callers hold self._cond.
        self._gen += 1
        self._cond.notify_all()

    # --------------------------------------------------- lifecycle

    def start(self) -> "Controller":
        """Install the hook and launch every worker, gated at ``start``."""
        if self._started:
            raise ScheduleError("start() called twice")
        _schedule_lock.acquire()
        try:
            syncpoints.install(self._hook)
        except BaseException:
            _schedule_lock.release()
            raise
        self._started = True
        for worker in self._workers.values():
            worker.thread = threading.Thread(
                target=self._run_worker, args=(worker,), name=f"testkit-{worker.name}", daemon=True
            )
            worker.thread.start()
        return self

    def close(self) -> None:
        """Force-finish stragglers, uninstall the hook (idempotent)."""
        if self._closed:
            return
        self._closed = True
        abandoned: list[str] = []
        if self._started:
            with self._cond:
                self._free_run = True
                for worker in self._workers.values():
                    worker.granted = True
                self._bump()
            deadline = time.monotonic() + self.finish_timeout
            for worker in self._workers.values():
                if worker.thread is None:
                    continue
                worker.thread.join(max(0.0, deadline - time.monotonic()))
                if worker.thread.is_alive():
                    abandoned.append(worker.name)
            syncpoints.uninstall()
            _schedule_lock.release()
        self.abandoned = abandoned

    def __enter__(self) -> "Controller":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------- inspection

    @property
    def errors(self) -> dict[str, BaseException]:
        """Exceptions that escaped worker bodies, by worker name."""
        return {w.name: w.error for w in self._workers.values() if w.error is not None}

    def raise_worker_errors(self) -> None:
        errors = self.errors
        if errors:
            lines = ", ".join(f"{name}: {exc!r}" for name, exc in errors.items())
            raise ScheduleError(
                f"worker(s) raised: {lines} (trace: {self.trace})"
            ) from next(iter(errors.values()))

    def _statuses(self) -> str:
        return ", ".join(repr(w) for w in sorted(self._workers.values(), key=lambda w: w.name))

    def _waiting_sorted(self) -> list[_Worker]:
        return sorted(
            (w for w in self._workers.values() if w.status == _WAITING),
            key=lambda w: w.name,
        )

    # --------------------------------------------- driving primitives

    def _grant_locked(self, worker: _Worker) -> None:
        # Callers hold self._cond and have verified worker is WAITING.
        self.trace.append(worker.name, worker.point or "?", worker.obj)
        if worker.point in syncpoints.BLOCKING_POINTS:
            worker.status = _BLOCKED
            worker.blocked_known = True
        else:
            worker.status = _RUNNING
            worker.blocked_known = False
        worker.granted = True
        self._bump()

    def _wait_change(self, gen: int, timeout: float) -> bool:
        # Callers hold self._cond.  True if anything changed in time.
        return self._cond.wait_for(lambda: self._gen != gen, timeout)

    def until(self, name: str, point: str, timeout: float = 10.0) -> None:
        """Advance worker ``name`` gate-by-gate until it waits at ``point``.

        Grants the worker through every intermediate gate.  Fails if the
        worker finishes, or stops surfacing at gates, before reaching
        ``point``.
        """
        worker = self._worker(name)
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                if worker.status == _DONE:
                    raise ScheduleError(
                        f"worker {name!r} finished before reaching {point!r} "
                        f"(error: {worker.error!r}, trace: {self.trace})"
                    )
                if worker.status == _WAITING:
                    if worker.point == point:
                        return
                    self._grant_locked(worker)
                gen = self._gen
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._wait_change(gen, remaining):
                    raise ScheduleError(
                        f"worker {name!r} did not reach {point!r} within {timeout}s "
                        f"({self._statuses()}; trace: {self.trace})"
                    )

    def grant(self, name: str, point: str | None = None, timeout: float = 10.0) -> str:
        """Release worker ``name`` from its current (or next) gate.

        Returns the point it was granted at; with ``point`` given, fails
        unless the worker was gated exactly there.
        """
        worker = self._worker(name)
        deadline = time.monotonic() + timeout
        with self._cond:
            while worker.status != _WAITING:
                if worker.status == _DONE:
                    raise ScheduleError(
                        f"cannot grant {name!r}: already finished (trace: {self.trace})"
                    )
                gen = self._gen
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._wait_change(gen, remaining):
                    raise ScheduleError(
                        f"worker {name!r} never arrived at a gate within {timeout}s "
                        f"({self._statuses()}; trace: {self.trace})"
                    )
            at = worker.point or "?"
            if point is not None and at != point:
                raise ScheduleError(
                    f"worker {name!r} is gated at {at!r}, expected {point!r} "
                    f"(trace: {self.trace})"
                )
            self._grant_locked(worker)
            return at

    def run_thread(self, name: str, timeout: float = 10.0) -> str:
        """Grant ``name`` through every gate until it finishes or blocks.

        Returns ``"done"`` or ``"blocked"`` — the latter when the worker
        stops surfacing at gates within ``stall_timeout`` (it is sitting
        in a real primitive and needs another worker to make progress).
        """
        worker = self._worker(name)
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                if worker.status == _DONE:
                    return "done"
                if worker.status == _WAITING:
                    self._grant_locked(worker)
                    continue
                gen = self._gen
                stall = min(self.stall_timeout, max(0.0, deadline - time.monotonic()))
                if not self._wait_change(gen, stall):
                    if worker.status in (_RUNNING, _BLOCKED):
                        worker.status = _BLOCKED
                        return "blocked"
                if time.monotonic() >= deadline:
                    raise ScheduleError(
                        f"run_thread({name!r}) exceeded {timeout}s "
                        f"({self._statuses()}; trace: {self.trace})"
                    )

    def settle(self, timeout: float | None = None) -> None:
        """Wait until no worker is mid-segment (each is gated, parked in
        a real primitive, or done).

        A :meth:`grant` returns as soon as the gate opens — the released
        segment then runs concurrently with the test thread.  Scripts
        that interleave grants *across* workers need the previous
        segment finished before the next grant, or the two race; the
        scheduler loop gets this from its internal quiesce, and replay
        calls this between steps for the same reason.  ``timeout`` is
        the change-free window after which a still-running worker is
        taken to be blocked in a real primitive (default:
        ``stall_timeout``).
        """
        if timeout is None:
            timeout = self.stall_timeout
        with self._cond:
            while True:
                active = [
                    w
                    for w in self._workers.values()
                    if w.status in (_NEW, _RUNNING)
                ]
                if not active:
                    return
                gen = self._gen
                if not self._wait_change(gen, timeout):
                    for worker in active:
                        if worker.status == _RUNNING:
                            worker.status = _BLOCKED
                            worker.blocked_known = False
                    return

    def finish(self, timeout: float | None = None) -> None:
        """Free-run every worker to completion and join them.

        Raises if any worker cannot finish (still blocked in a real
        primitive after ``finish_timeout``) — with all gates open that
        means a lost wakeup or deadlock in the code under test.  A
        worker *exception* is surfaced first: a crashed peer is usually
        why the survivors hang (the waiter it was meant to wake never
        hears from it), and reporting the hang would bury the cause.
        """
        if timeout is None:
            timeout = self.finish_timeout
        with self._cond:
            self._free_run = True
            for worker in self._workers.values():
                worker.granted = True
            self._bump()
        deadline = time.monotonic() + timeout
        stuck = []
        for worker in self._workers.values():
            if worker.thread is None:
                continue
            worker.thread.join(max(0.0, deadline - time.monotonic()))
            if worker.thread.is_alive():
                stuck.append(worker.name)
        if stuck:
            errors = self.errors
            if errors:
                lines = ", ".join(f"{name}: {exc!r}" for name, exc in errors.items())
                raise ScheduleError(
                    f"worker(s) raised: {lines}; worker(s) {stuck} then never "
                    f"finished with every gate open — the exception likely "
                    f"killed their waker ({self._statuses()}; trace: {self.trace})"
                ) from next(iter(errors.values()))
            raise ScheduleDeadlock(
                f"worker(s) {stuck} never finished with every gate open "
                f"({self._statuses()}; trace: {self.trace})\n{self._stuck_frames(stuck)}"
            )

    def _stuck_frames(self, stuck: list[str]) -> str:
        """One innermost frame per stuck worker thread, for the report."""
        frames = sys._current_frames()
        lines = []
        for name in stuck:
            thread = self._workers[name].thread
            frame = frames.get(thread.ident) if thread and thread.ident else None
            if frame is None:
                continue
            where = traceback.extract_stack(frame, limit=1)[0]
            lines.append(f"  {name} is at {where.filename}:{where.lineno} in {where.name}")
        return "\n".join(lines)

    def _worker(self, name: str) -> _Worker:
        try:
            return self._workers[name]
        except KeyError:
            raise ScheduleError(
                f"unknown worker {name!r} (have: {sorted(self._workers)})"
            ) from None

    # ------------------------------------------------ scheduler driving

    def run_scheduler(self, scheduler, *, settle: float | None = None) -> None:
        """Drive every worker to completion under ``scheduler``.

        One grant at a time: the scheduler picks among gated workers
        whenever no granted worker is still en route to its next gate.
        A scheduler may return ``None`` to ask for a short wait before
        being consulted again (used by
        :class:`~repro.testkit.schedulers.DirectedScheduler` while the
        worker its prefix names has not surfaced yet).

        ``settle`` (seconds) makes each decision wait out one extra
        change-free window whenever some worker is *blocked*: a wake
        delivered by the previous grant may still be propagating, and a
        systematic explorer wants the candidate set stable before it
        branches on it.  ``None`` (default) keeps decisions immediate.
        """
        step = 0
        with self._cond:
            while True:
                waiting = self._quiesce_locked(settle)
                if waiting is None:
                    return
                choice = scheduler.choose(waiting, step)
                if choice is None:
                    gen = self._gen
                    self._wait_change(gen, self.stall_timeout)
                    continue
                if choice not in waiting:
                    raise ScheduleError(f"scheduler chose non-waiting worker {choice!r}")
                self._grant_locked(choice)
                step += 1

    def _quiesce_locked(self, settle: float | None) -> "list[_Worker] | None":
        """Wait until the schedule needs a decision; caller holds _cond.

        Returns the sorted gated candidates, or ``None`` when every
        worker is done.  Raises :class:`ScheduleDeadlock` when every
        unfinished worker is blocked and nothing can wake them (instant
        proof or timeout fallback — see :meth:`_deadlock_wait_locked`).
        """
        while True:
            workers = self._workers.values()
            if all(w.status == _DONE for w in workers):
                return None
            active = [w for w in workers if w.status in (_NEW, _RUNNING)]
            if active:
                gen = self._gen
                if not self._wait_change(gen, self.stall_timeout):
                    for worker in active:
                        if worker.status == _RUNNING:
                            worker.status = _BLOCKED
                            worker.blocked_known = False
                continue
            waiting = self._waiting_sorted()
            if waiting:
                if settle is not None and any(w.status == _BLOCKED for w in workers):
                    gen = self._gen
                    if self._wait_change(gen, settle):
                        continue  # something moved; re-stabilize
                return waiting
            # Everyone left is blocked in a real primitive.
            self._deadlock_wait_locked()

    def _deadlock_wait_locked(self) -> None:
        """All unfinished workers blocked: wait for one to surface, else
        raise.  Caller holds ``_cond``; returns (to re-quiesce) as soon
        as anything changes.

        The *instant* path: if every blocked worker is known-parked at
        an engine park point and the shared timer wheel is empty, no
        release pass is running (no worker is) and no timer can fire —
        a short ``deadlock_confirm`` silence (covering a park still en
        route to the wheel) proves the deadlock.  Otherwise fall back
        to the conservative ``deadlock_timeout``.
        """
        blocked = [w for w in self._workers.values() if w.status == _BLOCKED]
        instant = (
            bool(blocked)
            and all(
                w.blocked_known and w.point in syncpoints.ENGINE_PARK_POINTS
                for w in blocked
            )
            and wheel().armed_count() == 0
        )
        waited = self.deadlock_confirm if instant else self.deadlock_timeout
        gen = self._gen
        if self._wait_change(gen, waited):
            return
        if instant and wheel().armed_count() != 0:
            # A just-granted timed park armed the wheel during the
            # confirmation window without surfacing at a gate; the
            # timer will wake it — take the conservative path instead.
            return
        report = DeadlockReport(
            workers=tuple(
                BlockedWorkerInfo(w.name, w.point or "?", w.blocked_known, repr(w.obj))
                for w in sorted(blocked, key=lambda w: w.name)
            ),
            counters=_capture_counter_waits([w.obj for w in blocked]) if instant else (),
            wheel_armed=wheel().armed_count(),
            instant=instant,
            waited=waited,
            trace=str(self.trace),
        )
        raise ScheduleDeadlock(
            f"{report}\n  blocked in real primitives ({self._statuses()})",
            report=report,
        )
