"""Invariant checkers over the counters' private state.

Two flavours:

* **Quiescence checks** (``assert_*_quiescent``) — called from the test
  thread after a schedule finished, when no worker is live.  They assert
  the structural facts every schedule must restore: no leaked wait
  nodes, zeroed tallies, an empty draining set, and a ``reset()`` that
  is not poisoned.
* **Point invariants** (``tallies_consistent``) — registered with
  :meth:`Controller.invariant_at` and run *in the arriving worker
  thread*, possibly while that thread holds the counter lock.  They must
  therefore only read fields, never take locks or call methods of the
  primitive (reading racy ints is fine: sync points fire at quiescent
  instants of the owning thread, and the checks are one-sided
  inequalities that hold under any serialization).

These deliberately reach into private attributes — they are the test
kit's eyes, version-locked to the implementation they watch.
"""

from __future__ import annotations

__all__ = [
    "assert_counter_quiescent",
    "assert_sharded_quiescent",
    "assert_multiwait_closed",
    "tallies_consistent",
]


def assert_counter_quiescent(counter, *, expect_value: int | None = None) -> None:
    """Assert a :class:`MonotonicCounter` carries no trace of past waiters.

    Checks, in order: no waiting levels, no live-waiter tally, an empty
    draining set (the PR-2 leak poisoned ``reset()`` through exactly this
    set), and — the behavioural summary of all three — that ``reset()``
    succeeds.  The counter is left reset; pass ``expect_value`` to also
    pin the pre-reset value.
    """
    if expect_value is not None:
        assert counter.value == expect_value, (
            f"value {counter.value} != expected {expect_value}"
        )
    with counter._lock:
        live_levels = counter._live_levels
        live_waiters = counter._live_waiters
        waiting = len(counter._waiters)
    with counter._drain_lock:
        draining = dict(counter._draining)
    assert waiting == 0, f"{waiting} level(s) still in the wait list: {counter._waiters!r}"
    assert live_levels == 0, f"_live_levels == {live_levels} at quiescence"
    assert live_waiters == 0, f"_live_waiters == {live_waiters} at quiescence"
    assert not draining, (
        f"_draining leaked {len(draining)} node(s) at quiescence: "
        f"{[node.snapshot() for node in draining.values()]}"
    )
    counter.reset()  # must not raise ResetConcurrencyError


def assert_sharded_quiescent(sharded, *, expect_value: int | None = None) -> None:
    """Assert a :class:`ShardedCounter` is quiescent: no checkers
    registered, and (after a flush) the central counter quiescent too."""
    total = sharded.flush()
    if expect_value is not None:
        assert total == expect_value, f"value {total} != expected {expect_value}"
    with sharded._checkers_lock:
        checkers = sharded._checkers
    assert checkers == 0, f"_checkers == {checkers} at quiescence"
    pending = sharded.pending
    assert pending == 0, f"{pending} pending after flush()"
    assert_counter_quiescent(sharded._central)


def assert_multiwait_closed(mw) -> None:
    """Assert a closed :class:`MultiWait` released every subscription and
    left the counters it watched quiescent-compatible (no wait-node or
    checker residue is asserted here — pass the counters to the
    quiescence checks for that)."""
    with mw._lock:
        assert mw._closed, "MultiWait not closed"
        assert not mw._subs, f"{len(mw._subs)} subscription handle(s) retained after close"
        assert not mw._waiters, f"{len(mw._waiters)} waiter record(s) retained after close"


def tallies_consistent(counter) -> None:
    """Point invariant: waiter tallies never go negative and the wait
    list never exceeds the live-level tally.

    Safe at any sync point: plain int/len reads of a counter whose owner
    thread is parked at a gate.  Register with
    ``controller.invariant_at(point, lambda obj: tallies_consistent(c))``
    — ``obj`` is whatever primitive fired the point, which for nested
    primitives (sharded → central) is not always the object under test.
    """
    live_levels = counter._live_levels
    live_waiters = counter._live_waiters
    assert live_levels >= 0, f"_live_levels went negative: {live_levels}"
    assert live_waiters >= 0, f"_live_waiters went negative: {live_waiters}"
    # Deliberately no cross-field inequality: none holds at *every*
    # instant (subscriber-only nodes count as a level but zero waiters,
    # and a concurrently-running granted worker can sit between a list
    # insert and its tally update).  Double-decrement bugs still surface
    # here — a tally driven negative stays negative until the next
    # increment, and sync points fire densely enough to observe it.
