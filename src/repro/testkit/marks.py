"""Pytest integration: the ``@interleave`` decorator.

``@interleave(schedules=N)`` turns a test body into N adversarially
scheduled runs.  The body receives a fresh :class:`ScheduleRun` each
time, spawns its workers on it, calls :meth:`ScheduleRun.run`, and then
asserts whatever it likes (typically the quiescence checkers from
:mod:`repro.testkit.invariants`)::

    @interleave(schedules=25, scheduler="pct")
    def test_fan_in(sched):
        counter = MonotonicCounter()
        for i in range(sched.threads):
            sched.spawn(f"inc{i}", counter.increment, 1)
        sched.spawn("waiter", counter.check, sched.threads)
        sched.run()
        assert_counter_quiescent(counter, expect_value=sched.threads)

Any failure — a worker exception, a deadlock, a failed probe or
assertion — is re-raised as :class:`ScheduleFailure` carrying the seed
and the compact grant trace, plus a ready-to-paste
:func:`repro.testkit.replay` call.  Decorated tests also carry the
``interleave`` pytest marker (registered in ``tests/conftest.py``) so CI
can select or deselect them with ``-m interleave``.

Environment knobs (all optional; defaults are fully deterministic):

``TESTKIT_SEED``
    Overrides every test's base seed — CI's nightly job sets this to the
    run id so each night explores different schedules, while PR runs
    leave it unset for reproducible fixed-seed schedules.
``TESTKIT_SCHEDULES_SCALE``
    Float multiplier on every ``schedules=N`` count (nightly depth).
``TESTKIT_TRACE_DIR``
    Directory failing schedules write their trace to, as
    ``<dir>/<test>-seed<seed>.trace`` for artifact upload.  Unset, the
    dump goes to ``<tmpdir>/testkit-traces`` instead — a failure always
    leaves a replayable file, and its path is printed in the failure
    message along with the seed and scheduler kind.
"""

from __future__ import annotations

import functools
import inspect
import os
import tempfile
import zlib
from typing import Any, Callable

from repro.testkit.harness import Controller, ScheduleFailure
from repro.testkit.schedulers import make_scheduler

try:  # pragma: no cover - exercised implicitly by every pytest run
    import pytest as _pytest
except ImportError:  # pragma: no cover - testkit works without pytest
    _pytest = None

__all__ = ["interleave", "ScheduleRun", "ScheduleFailure"]


class ScheduleRun:
    """One scheduled execution handed to an ``@interleave`` test body."""

    def __init__(
        self,
        *,
        index: int,
        seed: int,
        scheduler: str,
        pct_depth: int,
        threads: int,
        stall_timeout: float,
    ) -> None:
        self.index = index
        self.seed = seed
        self.scheduler_kind = scheduler
        #: Suggested worker-pool size (the decorator's ``threads=`` knob);
        #: purely advisory — bodies spawn what they want.
        self.threads = threads
        self.controller = Controller(stall_timeout=stall_timeout)
        self._scheduler = make_scheduler(scheduler, seed, pct_depth=pct_depth)
        self._ran = False

    def spawn(self, name: str, fn: Callable[..., Any], *args: Any) -> None:
        self.controller.spawn(name, fn, *args)

    def invariant_at(self, point: str, fn: Callable[[object], None]) -> None:
        self.controller.invariant_at(point, fn)

    def run(self) -> None:
        """Drive every spawned worker to completion under the scheduler,
        then re-raise any worker exception."""
        if self._ran:
            raise RuntimeError("ScheduleRun.run() called twice")
        self._ran = True
        with self.controller:
            self.controller.run_scheduler(self._scheduler)
            self.controller.finish()
            self.controller.raise_worker_errors()

    @property
    def trace(self):
        return self.controller.trace

    def __repr__(self) -> str:
        return (
            f"<ScheduleRun #{self.index} {self.scheduler_kind} seed={self.seed} "
            f"{len(self.trace)} grants>"
        )


def _base_seed(fn: Callable, explicit: int | None) -> int:
    env = os.environ.get("TESTKIT_SEED")
    if env:  # empty string (e.g. a blank CI variable) means unset
        return int(env)
    if explicit is not None:
        return explicit
    # Deterministic per-test default: different tests explore different
    # schedule neighbourhoods, every run of one test explores the same.
    return zlib.crc32(fn.__qualname__.encode())


def _scaled(schedules: int) -> int:
    scale = float(os.environ.get("TESTKIT_SCHEDULES_SCALE") or "1")
    return max(1, round(schedules * scale))


def _dump_trace(fn: Callable, run: ScheduleRun) -> str | None:
    directory = os.environ.get("TESTKIT_TRACE_DIR") or os.path.join(
        tempfile.gettempdir(), "testkit-traces"
    )
    try:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{fn.__name__}-seed{run.seed}.trace")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(str(run.trace) + "\n")
    except OSError:  # pragma: no cover - a read-only tmpdir must not mask the failure
        return None
    return path


def interleave(
    schedules: int = 20,
    *,
    scheduler: str = "random",
    seed: int | None = None,
    pct_depth: int = 3,
    threads: int = 3,
    stall_timeout: float = 0.02,
):
    """Run the decorated test body under ``schedules`` adversarial
    schedules (see module docstring for the body protocol)."""

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        signature = inspect.signature(fn)
        parameters = list(signature.parameters.values())
        if not parameters:
            raise TypeError(
                f"@interleave test {fn.__qualname__} must take the "
                "ScheduleRun as its first parameter"
            )

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> None:
            base = _base_seed(fn, seed)
            for index in range(_scaled(schedules)):
                run = ScheduleRun(
                    index=index,
                    seed=base + index,
                    scheduler=scheduler,
                    pct_depth=pct_depth,
                    threads=threads,
                    stall_timeout=stall_timeout,
                )
                try:
                    fn(run, *args, **kwargs)
                except ScheduleFailure:
                    raise
                except BaseException as exc:
                    path = _dump_trace(fn, run)
                    where = f"\n  trace file: {path}" if path else ""
                    raise ScheduleFailure(
                        f"{fn.__qualname__} failed on schedule #{run.index} "
                        f"(scheduler={scheduler!r}, seed={run.seed}): {exc!r}\n"
                        f"  trace: {run.trace}{where}\n"
                        f"  rerun just this schedule: TESTKIT_SEED={run.seed} "
                        f"python -m pytest -k {fn.__name__}\n"
                        f"  replay: repro.testkit.replay({str(run.trace)!r}, "
                        f"threads={{...}})  # same worker names/fns as the test\n"
                        f"  shrink it: repro.testkit.shrink_trace(trace, "
                        f"repro.testkit.replay_fails(factory))  # docs/testing.md",
                        trace=run.trace,
                        seed=run.seed,
                    ) from exc

        # Hide the ScheduleRun parameter from pytest's fixture resolution:
        # the wrapper injects it, so the collected signature must not
        # advertise it.
        wrapper.__signature__ = signature.replace(parameters=parameters[1:])  # type: ignore[attr-defined]
        if _pytest is not None:
            wrapper = _pytest.mark.interleave(wrapper)
        return wrapper

    return decorate
