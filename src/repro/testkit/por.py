"""Partial-order machinery over grant traces: the DPOR substrate.

A scheduler-driven run is fully described by its grant sequence (the
:class:`~repro.testkit.trace.Trace`).  Because a controller-owned worker
stops at **every** sync point it reaches, the code a grant releases runs
from one gate to the next — so the grant's footprint (which shared
primitive it may touch next) is exactly its gate's ``(point, obj)``
label.  That observation turns the grant trace into a Mazurkiewicz
trace: two grants *commute* (swapping them cannot change any reachable
state) whenever they are by different workers **and** their footprints
touch different primitives.

This module defines that dependence relation and the three derived
objects the explorer (:mod:`repro.testkit.explore`) needs:

* :func:`happens_before_clocks` — one vector clock per grant (reusing
  :class:`repro.determinism.VectorClock`), where grant *i* happens
  before grant *j* iff there is a chain of dependent grants from *i*
  to *j*;
* :func:`racing_pairs` — the adjacent-in-the-partial-order dependent
  pairs by different workers that are not otherwise ordered: exactly
  the places where reversing the pair may reach a new state (DPOR's
  backtracking points);
* :func:`canonical_key` — the Foata normal form of the trace's
  dependence DAG: equivalent interleavings (equal up to commuting
  adjacent independent grants) map to the same key, so "how many
  *inequivalent* schedules did we cover" is a set of keys.

Object identities are run-specific (``id()`` changes between the
re-executions DPOR performs), so footprints name objects through an
:class:`ObjLabeler` — a per-run map from primitive to a stable
first-sighting label (``"o0"``, ``"o1"``...).  Deterministic models
sight their primitives in the same order on every execution, which is
what makes labels comparable across runs (the explorer cross-checks
this with its divergence counter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.determinism import VectorClock

__all__ = [
    "GrantEvent",
    "ObjLabeler",
    "READ_POINTS",
    "LOCAL_POINTS",
    "SYMMETRIC_POINTS",
    "family_of",
    "conflicts",
    "footprints_conflict",
    "annotate",
    "happens_before_clocks",
    "racing_pairs",
    "canonical_key",
]

#: Point prefixes whose object is the primitive that scopes the
#: dependence: two grants on different primitives of these kinds touch
#: disjoint state and commute.
_OBJECT_SCOPED_PREFIXES = (
    "increment.",
    "check.",
    "park.",
    "subscribe.",
    "shard.",
    "sharded.",
    "gcounter.",
    "doorbell.",
    "wheel.",
)


#: Points whose grant segment only *reads* shared state: the code from
#: thread launch to the first real gate performs at most a lock-free
#: value read (``check``'s fast path) — every mutation of a shared
#: primitive fires a gate first.  Two read-only segments of different
#: workers always commute, whatever they read.  (This holds for worker
#: bodies that only touch instrumented primitives; a body mutating
#: bare shared objects before its first gate is outside the testkit's
#: dependence model.)
READ_POINTS = frozenset({"start"})

#: Points whose grant segment touches only the granting thread's own
#: state.  ``park.enter`` fires immediately before ``slot.block()`` on
#: the thread's private parking slot, so the granted segment is exactly
#: "this thread parks" — the post-wake bookkeeping (countdown pop,
#: draining-set removal) runs later, inside the wake-*delivering*
#: grant's window, and is ordered by that grant's wildcard footprint.
#: A local grant therefore commutes with everything except wildcard
#: (wake-delivery) grants: parking before or after a value publication
#: reaches the same state because a slot set is banked, never lost.
#: Only sound for **untimed** waits (a timed park's segment also arms
#: the shared timer wheel) — which explorer models must use anyway.
LOCAL_POINTS = frozenset({"park.enter"})

#: Points where two grants by *different* workers on the *same*
#: primitive still commute with each other: ``check.lock`` segments
#: register wait-nodes (insertion order into the waitlist is
#: unobservable — a release pass wakes whole levels, and the value read
#: both segments make cannot change between them); ``park.drain``
#: segments pop distinct per-node entries from the draining set.
SYMMETRIC_POINTS = frozenset({"check.lock", "park.drain"})

#: Points whose segment never publishes a counter value — the only
#: shared state a :data:`READ_POINTS` segment can observe.  A read
#: segment commutes with these; against anything else (``increment.lock``
#: assigns the new value inside its segment, wildcards are unknown) the
#: read stays conservatively ordered.
VALUE_READ_COMPAT = frozenset(
    {
        "check.lock",
        "park.enter",
        "park.drain",
        "park.verdict",
        "park.adjudicate",
        "subscribe.lock",
        "subscribe.cancel",
        # Engine plumbing mutates slots/tokens/claims, never a value a
        # fast-path read could observe.
        "doorbell.ring",
        "doorbell.deliver",
        "doorbell.wait",
        "wheel.release",
        "wheel.timeout",
    }
)


def family_of(point: str, label: Hashable | None) -> Hashable | None:
    """The dependence family of a grant at ``point`` on object ``label``.

    Returns a hashable family key, or ``None`` for the *wildcard*
    family that conflicts with everything (modulo read-read, see
    :data:`READ_POINTS`).  ``start`` grants (the code from thread
    launch to the first real gate) and ``node.*`` / ``multiwait.*``
    grants (wait-node and fan-in plumbing that reaches across
    primitives via subscriptions) are wildcards: treating them as
    dependent on everything is always sound, it only costs reduction.
    """
    for prefix in _OBJECT_SCOPED_PREFIXES:
        if point.startswith(prefix):
            return None if label is None else ("obj", label)
    return None


@dataclass(frozen=True, slots=True)
class GrantEvent:
    """One grant, annotated for dependence analysis."""

    index: int
    thread: str
    point: str
    family: Hashable | None  #: None = wildcard (conflicts with all)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.thread}:{self.point}"


def _pair_conflicts(
    pa: str, fa: Hashable | None, pb: str, fb: Hashable | None
) -> bool:
    """Cross-worker dependence between two (point, family) footprints."""
    a_read, b_read = pa in READ_POINTS, pb in READ_POINTS
    if a_read and b_read:
        return False
    a_local, b_local = pa in LOCAL_POINTS, pb in LOCAL_POINTS
    if a_local or b_local:
        if a_local and b_local:
            return False  # two threads parking their own slots
        # A local grant orders only against wake-delivery (wildcard,
        # non-read) grants — those are what set its slot.
        point, family, read = (pb, fb, b_read) if a_local else (pa, fa, a_read)
        return family is None and not read
    if a_read or b_read:
        # A read segment commutes with value-preserving segments; only
        # a value publication (or an unknown wildcard) orders it.
        other = pb if a_read else pa
        return other not in VALUE_READ_COMPAT
    if pa == pb and pa in SYMMETRIC_POINTS and fa == fb:
        return False
    return fa is None or fb is None or fa == fb


def footprints_conflict(
    a: tuple[str, Hashable | None], b: tuple[str, Hashable | None]
) -> bool:
    """Do two (point, label) footprints of *different* workers touch
    common state?  (Callers handle the same-worker case — program order
    always conflicts.)"""
    return _pair_conflicts(
        a[0], family_of(a[0], a[1]), b[0], family_of(b[0], b[1])
    )


def conflicts(a: GrantEvent, b: GrantEvent) -> bool:
    """Dependence relation: same worker, or overlapping footprints.

    Same-worker grants never commute (program order); cross-worker
    grants conflict when either footprint is wildcard or both name the
    same primitive family — refined by the read-only
    (:data:`READ_POINTS`), thread-local (:data:`LOCAL_POINTS`) and
    symmetric (:data:`SYMMETRIC_POINTS`) commutation facts above.
    """
    if a.thread == b.thread:
        return True
    return _pair_conflicts(a.point, a.family, b.point, b.family)


class ObjLabeler:
    """Stable per-run labels for the primitives a schedule touches.

    Labels are assigned in first-sighting order (``"o0"``, ``"o1"``...)
    and the labeled objects are kept referenced so ``id()`` reuse can
    never alias two primitives to one label within a run.
    """

    __slots__ = ("_labels", "_keep")

    def __init__(self) -> None:
        self._labels: dict[int, str] = {}
        self._keep: list[object] = []

    def label(self, obj: object) -> str | None:
        if obj is None:
            return None
        key = id(obj)
        label = self._labels.get(key)
        if label is None:
            label = f"o{len(self._keep)}"
            self._labels[key] = label
            self._keep.append(obj)
        return label


def annotate(
    steps: Iterable[object], labeler: ObjLabeler | None = None
) -> list[GrantEvent]:
    """Turn trace steps (``.thread``/``.point``/optional ``.obj``) into
    :class:`GrantEvent`\\ s, labeling objects through ``labeler``."""
    labeler = labeler or ObjLabeler()
    events: list[GrantEvent] = []
    for index, step in enumerate(steps):
        label = labeler.label(getattr(step, "obj", None))
        events.append(
            GrantEvent(index, step.thread, step.point, family_of(step.point, label))
        )
    return events


def _dependence_edges(events: Sequence[GrantEvent]) -> list[list[int]]:
    """For each event index j, the sorted indices i < j with conflicts(i, j)."""
    preds: list[list[int]] = []
    for j, ej in enumerate(events):
        preds.append([i for i in range(j) if conflicts(events[i], ej)])
    return preds


def happens_before_clocks(events: Sequence[GrantEvent]) -> list[VectorClock]:
    """One vector clock per grant; ``clocks[i].happens_before(clocks[j])``
    iff grant *i* is ordered before grant *j* by a dependent chain.

    Threads are mapped to clock components by first appearance; the
    clock of event *j* joins every earlier conflicting event's clock and
    then ticks *j*'s own thread component.
    """
    tids: dict[str, int] = {}
    clocks: list[VectorClock] = []
    for j, event in enumerate(events):
        tid = tids.setdefault(event.thread, len(tids))
        clock = VectorClock()
        for i in range(j):
            if conflicts(events[i], event):
                clock.join(clocks[i])
        clock.tick(tid)
        clocks.append(clock)
    return clocks


def racing_pairs(events: Sequence[GrantEvent]) -> list[tuple[int, int]]:
    """Dependent cross-worker pairs with no *other* ordering between them.

    A pair ``(i, j)`` races when the grants conflict, belong to
    different workers, and removing the direct ``i -> j`` dependence
    edge leaves them concurrent — i.e. their order in this trace is a
    genuine scheduling choice, not a consequence of other dependences.
    These are the reversal candidates a DPOR explorer backtracks on.
    """
    races: list[tuple[int, int]] = []
    n = len(events)
    for j in range(n):
        ej = events[j]
        for i in range(j):
            ei = events[i]
            if ei.thread == ej.thread or not conflicts(ei, ej):
                continue
            # Is i -> j implied transitively without the direct edge?
            # Recompute j's clock joining every predecessor except i.
            tids: dict[str, int] = {}
            clocks: list[VectorClock] = []
            for k in range(j + 1):
                tid = tids.setdefault(events[k].thread, len(tids))
                clock = VectorClock()
                for m in range(k):
                    if k == j and m == i:
                        continue
                    if conflicts(events[m], events[k]):
                        clock.join(clocks[m])
                clock.tick(tid)
                clocks.append(clock)
            if not clocks[i].happens_before(clocks[j]):
                races.append((i, j))
    return races


def canonical_key(events: Sequence[GrantEvent]) -> tuple:
    """Foata normal form of the trace's dependence DAG.

    Repeatedly peel the dependence-minimal events into a level and sort
    each level by ``(thread, point)`` label.  Two interleavings that
    differ only by commuting adjacent independent grants share their
    DAG and therefore their key — the explorer counts distinct keys as
    *inequivalent schedules covered*.
    """
    preds = _dependence_edges(events)
    remaining = set(range(len(events)))
    levels: list[tuple[tuple[str, str], ...]] = []
    while remaining:
        frontier = [j for j in remaining if not any(i in remaining for i in preds[j])]
        levels.append(
            tuple(sorted((events[j].thread, events[j].point) for j in frontier))
        )
        remaining.difference_update(frontier)
    return tuple(levels)
