"""Scheduling policies for the interleaving controller.

A scheduler answers one question, repeatedly: *of the workers currently
parked at a sync-point gate, which one runs next?*  The controller
(:mod:`repro.testkit.harness`) guarantees the candidate list is sorted
by worker name, so a scheduler seeded identically makes the same choice
whenever it faces the same candidates — schedules are reproducible up to
the real-time nondeterminism of threads parked in actual condition
variables (exact reruns go through :func:`repro.testkit.replay`).

Two adversarial policies are provided:

* :class:`RandomScheduler` — uniform seeded choice.  Simple, and with
  enough schedules surprisingly effective at shaking out ordering bugs.
* :class:`PCTScheduler` — probabilistic concurrency testing (Burckhardt
  et al., ASPLOS 2010): workers get random priorities, the
  highest-priority gated worker always runs, and at ``depth`` randomly
  pre-chosen schedule steps the current leader is demoted below
  everyone.  For a bug that needs ``d`` ordered preemptions, a PCT
  schedule with depth ``d`` finds it with probability ≥ 1/(n·k^(d-1))
  — far better than uniform random over long schedules.

Scripted schedules are not a scheduler: they drive the controller's
positioning primitives directly (see :mod:`repro.testkit.script`).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

__all__ = [
    "Scheduler",
    "RandomScheduler",
    "PCTScheduler",
    "DirectedScheduler",
    "Decision",
    "PrefixDivergence",
    "make_scheduler",
]


class Scheduler(Protocol):
    """Strategy interface consumed by ``Controller.run_scheduler``."""

    def choose(self, waiting: Sequence["object"], step: int) -> "object":
        """Pick the next worker to grant.

        ``waiting`` is a non-empty list of workers (objects with a
        ``.name`` and ``.point``) sorted by name; ``step`` is the number
        of grants issued so far.
        """
        ...


class RandomScheduler:
    """Uniform seeded choice among the gated workers."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, waiting, step):
        return self._rng.choice(waiting)

    def __repr__(self) -> str:
        return f"RandomScheduler(seed={self.seed})"


class PCTScheduler:
    """PCT-style randomized priority scheduling with ``depth`` demotions.

    Priorities are assigned lazily (first time a worker is seen) from the
    seeded stream; ``depth`` priority-change points are pre-sampled from
    ``range(1, horizon)``.  When the global grant count hits a change
    point, the currently highest-priority *gated* worker is demoted below
    every priority handed out so far, forcing the preemption the bug
    depth asks for.
    """

    def __init__(self, seed: int = 0, depth: int = 3, horizon: int = 64) -> None:
        if depth < 0 or horizon < 2:
            raise ValueError(f"need depth >= 0 and horizon >= 2, got {depth}, {horizon}")
        self.seed = seed
        self.depth = depth
        self.horizon = horizon
        self._rng = random.Random(seed)
        self._priority: dict[str, float] = {}
        self._floor = 0.0  # demoted workers stack below this, in demotion order
        self._change_points = set(
            self._rng.sample(range(1, horizon), min(depth, horizon - 1))
        )

    def choose(self, waiting, step):
        for worker in waiting:
            if worker.name not in self._priority:
                self._priority[worker.name] = self._rng.random()
        leader = max(waiting, key=lambda w: self._priority[w.name])
        if step in self._change_points:
            self._floor -= 1.0
            self._priority[leader.name] = self._floor
            leader = max(waiting, key=lambda w: self._priority[w.name])
        return leader

    def __repr__(self) -> str:
        return f"PCTScheduler(seed={self.seed}, depth={self.depth})"


class PrefixDivergence(AssertionError):
    """A :class:`DirectedScheduler` prefix named a worker that never
    surfaced at a gate — this execution does not follow the recorded
    branch (real-primitive nondeterminism), so its results cannot be
    attributed to that branch."""


@dataclass(frozen=True, slots=True)
class Decision:
    """One scheduling decision recorded by :class:`DirectedScheduler`.

    ``candidates`` are the gated workers offered (name-sorted by the
    controller), as ``(name, point, obj)`` triples; ``chosen`` is the
    name granted.
    """

    step: int
    candidates: tuple[tuple[str, str, object], ...]
    chosen: str


class DirectedScheduler:
    """Follow a forced prefix of worker names, then hand over to a
    fallback policy — the replay engine of the DPOR explorer
    (:mod:`repro.testkit.explore`).

    While ``step`` is inside ``prefix``, the scheduler insists on the
    named worker: if it is not among the gated candidates yet (it may
    still be en route to its gate), ``choose`` returns ``None``, which
    asks the controller to wait briefly and consult again; after
    ``patience`` seconds of that, :class:`PrefixDivergence` is raised.
    Beyond the prefix, ``fallback(waiting, step)`` picks (default:
    first candidate, i.e. lowest name).  Every successful decision is
    recorded and reported through ``on_decision`` — the explorer uses
    the stream to maintain sleep sets and enumerate backtrack points.
    """

    def __init__(
        self,
        prefix: Sequence[str],
        *,
        fallback: "Callable[[Sequence[object], int], object] | None" = None,
        on_decision: "Callable[[Decision, Sequence[object]], None] | None" = None,
        patience: float = 2.0,
    ) -> None:
        self.prefix = list(prefix)
        self.fallback = fallback
        self.on_decision = on_decision
        self.patience = patience
        self.decisions: list[Decision] = []
        self._stuck_since: float | None = None

    def choose(self, waiting, step):
        if step < len(self.prefix):
            want = self.prefix[step]
            chosen = next((w for w in waiting if w.name == want), None)
            if chosen is None:
                now = time.monotonic()
                if self._stuck_since is None:
                    self._stuck_since = now
                if now - self._stuck_since >= self.patience:
                    raise PrefixDivergence(
                        f"directed prefix step {step} wants {want!r} but only "
                        f"{[w.name for w in waiting]} surfaced within "
                        f"{self.patience}s"
                    )
                return None  # controller waits briefly and asks again
        elif self.fallback is not None:
            chosen = self.fallback(waiting, step)
        else:
            chosen = waiting[0]
        self._stuck_since = None
        decision = Decision(
            step,
            tuple((w.name, w.point or "?", w.obj) for w in waiting),
            chosen.name,
        )
        self.decisions.append(decision)
        if self.on_decision is not None:
            self.on_decision(decision, waiting)
        return chosen

    def __repr__(self) -> str:
        return f"DirectedScheduler(prefix={self.prefix!r})"


def make_scheduler(kind: str, seed: int, *, pct_depth: int = 3) -> Scheduler:
    """Build a scheduler from the ``@interleave`` spelling (``"random"``/``"pct"``)."""
    if kind == "random":
        return RandomScheduler(seed)
    if kind == "pct":
        return PCTScheduler(seed, depth=pct_depth)
    raise ValueError(f"unknown scheduler kind {kind!r} (expected 'random' or 'pct')")
