"""Scripted schedules and trace replay.

A *script* pins one exact interleaving as a list of small ops executed
by the test thread against a :class:`~repro.testkit.harness.Controller`:

* :func:`until` — advance a worker gate-by-gate until it parks at a
  named sync point (it then *stays there*, holding whatever real locks
  it holds, while other ops run);
* :func:`grant` — release a worker from its current gate, optionally
  asserting which point it was gated at;
* :func:`run_thread` — let one worker run gate-to-gate until it either
  finishes or blocks in a real primitive;
* :func:`probe` — run an assertion callback in the test thread while the
  workers stand still.

Scripts are written against the *protocol* (the sequence of sync points
a code path fires), so one script can drive both a buggy and a fixed
implementation of the same protocol and let probes tell them apart —
that is how the PR-2 draining-set leak is reproduced in
``tests/testkit/test_scripted_regressions.py``.

:func:`replay` is the other direction: take the printed
:class:`~repro.testkit.trace.Trace` of a failed scheduler run and
re-impose its grant order.  Replay is *lenient* by default — real
condition variables may surface threads in a slightly different gate
order on re-execution — so mismatched steps are skipped and counted
rather than failing the replay; the divergence count tells you how
faithful the rerun was.  Two escalations harden it:

* ``mode="until"`` treats each recorded step as a *positioning* op
  (walk the thread to that point, then release it) instead of a bare
  grant — the format shrunk traces use, where consecutive same-thread
  grants have been collapsed away;
* ``strict=True`` (or a trace so stale that *no* step could be
  re-imposed, even leniently) raises :class:`StaleTraceError` instead
  of silently free-running code that no longer matches the recording.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.testkit.harness import Controller, ScheduleError
from repro.testkit.trace import Trace

__all__ = [
    "Until",
    "Grant",
    "RunThread",
    "Probe",
    "until",
    "grant",
    "run_thread",
    "probe",
    "run_script",
    "replay",
    "ReplayResult",
    "StaleTraceError",
]


class StaleTraceError(ScheduleError):
    """A replayed trace no longer matches the code: in strict mode any
    step that cannot be re-imposed raises this; in lenient mode it is
    raised only when *no* recorded step could be imposed at all —
    either way the replay refuses to pass itself off as a rerun of the
    recorded schedule."""


# ------------------------------------------------------------- script ops


@dataclass(frozen=True)
class Until:
    """Advance ``thread`` through gates until it waits at ``point``."""

    thread: str
    point: str
    timeout: float = 10.0


@dataclass(frozen=True)
class Grant:
    """Release ``thread`` from its gate (asserting ``point`` if given)."""

    thread: str
    point: str | None = None
    timeout: float = 10.0


@dataclass(frozen=True)
class RunThread:
    """Run ``thread`` to completion or until it blocks in a real
    primitive; ``expect`` (``"done"``/``"blocked"``) asserts which."""

    thread: str
    expect: str | None = None
    timeout: float = 10.0


@dataclass(frozen=True)
class Probe:
    """Run ``fn(controller)`` in the test thread between grants."""

    fn: Callable[[Controller], None]
    label: str = ""


def until(thread: str, point: str, timeout: float = 10.0) -> Until:
    return Until(thread, point, timeout)


def grant(thread: str, point: str | None = None, timeout: float = 10.0) -> Grant:
    return Grant(thread, point, timeout)


def run_thread(thread: str, expect: str | None = None, timeout: float = 10.0) -> RunThread:
    return RunThread(thread, expect, timeout)


def probe(fn: Callable[[Controller], None], label: str = "") -> Probe:
    return Probe(fn, label)


# --------------------------------------------------------------- drivers


def _spawn_all(controller: Controller, threads: Mapping[str, Any]) -> None:
    for name, spec in threads.items():
        if callable(spec):
            controller.spawn(name, spec)
        else:
            fn, *args = spec
            controller.spawn(name, fn, *args)


def run_script(
    script: Sequence[Until | Grant | RunThread | Probe],
    threads: Mapping[str, Any],
    *,
    stall_timeout: float = 0.02,
    finish: bool = True,
) -> Controller:
    """Execute ``script`` over ``threads`` (name → callable or
    ``(callable, *args)`` tuple) and return the finished controller.

    After the last op (with ``finish=True``, the default) every worker
    is free-run to completion and worker exceptions are re-raised — a
    script only has to choreograph the interesting prefix.
    """
    controller = Controller(stall_timeout=stall_timeout)
    _spawn_all(controller, threads)
    with controller:
        for index, op in enumerate(script):
            try:
                if isinstance(op, Until):
                    controller.until(op.thread, op.point, timeout=op.timeout)
                elif isinstance(op, Grant):
                    controller.grant(op.thread, op.point, timeout=op.timeout)
                elif isinstance(op, RunThread):
                    outcome = controller.run_thread(op.thread, timeout=op.timeout)
                    if op.expect is not None and outcome != op.expect:
                        raise ScheduleError(
                            f"run_thread({op.thread!r}) ended {outcome!r}, "
                            f"script expected {op.expect!r} (trace: {controller.trace})"
                        )
                elif isinstance(op, Probe):
                    op.fn(controller)
                else:
                    raise TypeError(f"not a script op: {op!r}")
            except ScheduleError as exc:
                raise ScheduleError(f"script step {index} ({op!r}): {exc}") from exc
        if finish:
            controller.finish()
            controller.raise_worker_errors()
    return controller


@dataclass
class ReplayResult:
    """Outcome of a :func:`replay`: the controller (trace, errors) plus
    how many recorded steps could / could not be re-imposed exactly."""

    controller: Controller
    divergences: int = 0
    skipped: list[str] = field(default_factory=list)
    imposed: int = 0


def replay(
    trace: Trace | str,
    threads: Mapping[str, Any],
    *,
    stall_timeout: float = 0.02,
    step_timeout: float = 2.0,
    mode: str = "grant",
    strict: bool = False,
) -> ReplayResult:
    """Re-impose a recorded grant order on a fresh run of ``threads``.

    Leniently by default: a step whose worker is already done, or whose
    worker never surfaces at a gate in time (it is blocked in a real
    primitive awaiting a peer the original schedule had already run), is
    skipped and counted in :attr:`ReplayResult.divergences`.  A
    gate-point mismatch is granted anyway and counted.  Each imposed
    step is followed by a :meth:`Controller.settle` so the granted
    segment finishes before the next step's worker moves — the same
    gate-to-gate serialization the recording run had.  Workers are
    free-run to completion afterwards and their exceptions re-raised —
    so a replay of a crashing schedule crashes the same way.

    ``mode="until"`` re-imposes each step as ``until(thread, point)``
    then ``grant`` — the right semantics for *shrunk* traces, where the
    boring intermediate grants have been deleted and each surviving
    step means "get this thread to this point, then let it through".

    ``strict=True`` raises :class:`StaleTraceError` on the first step
    that cannot be re-imposed exactly.  Even in lenient mode, a
    non-empty trace none of whose steps could be imposed raises — a
    trace that stale is not a replay, and silently free-running would
    report whatever the uncontrolled schedule happened to do.
    """
    if mode not in ("grant", "until"):
        raise ValueError(f"mode must be 'grant' or 'until', got {mode!r}")
    if isinstance(trace, str):
        trace = Trace.parse(trace)
    result = ReplayResult(Controller(stall_timeout=stall_timeout))
    controller = result.controller
    _spawn_all(controller, threads)
    with controller:
        for index, step in enumerate(trace):
            if step.thread not in controller._workers:
                raise ScheduleError(
                    f"trace names worker {step.thread!r} but threads= "
                    f"only defines {sorted(controller._workers)}"
                )
            try:
                if mode == "until":
                    controller.until(step.thread, step.point, timeout=step_timeout)
                    at = controller.grant(step.thread, step.point, timeout=step_timeout)
                else:
                    at = controller.grant(step.thread, timeout=step_timeout)
            except ScheduleError as exc:
                if strict:
                    raise StaleTraceError(
                        f"replay step {index} ({step}) could not be re-imposed: {exc}"
                    ) from exc
                result.divergences += 1
                result.skipped.append(str(step))
                continue
            result.imposed += 1
            # The recorded order had the scheduler's quiesce between
            # grants: a granted segment ran to its next gate before the
            # next decision.  Re-impose that too, or this step's segment
            # races the next step's worker and the replay reproduces a
            # *different* interleaving than the one recorded.
            controller.settle(stall_timeout)
            if at != step.point:
                if strict:
                    raise StaleTraceError(
                        f"replay step {index} expected gate {step.point!r}, "
                        f"worker {step.thread!r} was at {at!r} "
                        f"(trace: {controller.trace})"
                    )
                result.divergences += 1
        if len(trace) and result.imposed == 0:
            raise StaleTraceError(
                f"stale trace: none of its {len(trace)} step(s) could be "
                f"re-imposed on the current code "
                f"(skipped: {' '.join(result.skipped)}) — re-record the "
                f"schedule instead of trusting this free-run"
            )
        # Deterministic drain.  finish() opens every remaining gate at
        # once, so the workers' post-trace segments race each other and
        # the replay outcome depends on OS scheduling — poison for a
        # shrinker, whose predicate must be a *function* of the trace.
        # Run the leftovers one worker at a time instead (trace order,
        # then name order), looping while anyone still finishes, and
        # only then open the gates for good (join + error surfacing).
        order = dict.fromkeys(
            [step.thread for step in trace] + sorted(controller._workers)
        )
        done: set[str] = set()
        progress = True
        while progress:
            progress = False
            for name in order:
                if name in done:
                    continue
                try:
                    outcome = controller.run_thread(name, timeout=step_timeout)
                except ScheduleError:
                    continue  # leave the stuck worker to finish() below
                if outcome == "done":
                    done.add(name)
                    progress = True  # it may have unblocked a peer
        controller.finish()
        controller.raise_worker_errors()
    return result
