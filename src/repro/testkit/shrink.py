"""Failing-trace shrinking: from hundreds of grants to the ones that matter.

A scheduler-found failure arrives as a full grant trace — every ``start``
gate, every boring lock acquisition, interleaved across every worker.
The bug usually lives in two or three of those grants.  This module
minimizes the trace while preserving the failure:

1. **Prefix truncation** (binary search): failures are usually decided
   early — the shortest failing prefix is found in O(log n) replays
   (verified, since failure need not be monotone in prefix length).
2. **ddmin** (Zeller/Hildebrandt delta debugging): remove chunks of the
   remaining steps at increasing granularity until the trace is
   1-minimal — deleting any single step makes the failure vanish.

Candidates are judged by a *predicate* — any callable from a
:class:`~repro.testkit.trace.Trace` to "did the failure reproduce?".
:func:`replay_fails` builds the standard one on top of
:func:`repro.testkit.replay` in ``until`` mode: each surviving step
positions its thread at the recorded point and releases it, so deleting
the steps *between* two decisive grants keeps the candidate meaningful
(the replayer walks threads through whatever boring gates the deletion
skipped).  That is what lets a minimal trace drop to the 3-ish
positioning steps a human would have scripted by hand.

The minimal trace is replayable (same ``mode="until"``), written to
``TESTKIT_TRACE_DIR`` when set, and comes with the replay count it cost.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.testkit.script import StaleTraceError, replay
from repro.testkit.trace import Trace, TraceStep

__all__ = ["ShrinkResult", "shrink_trace", "replay_fails"]

Predicate = Callable[[Trace], bool]


@dataclass
class ShrinkResult:
    """Outcome of :func:`shrink_trace`."""

    minimal: Trace            #: the 1-minimal failing trace
    original_steps: int
    replays: int              #: candidate replays spent
    path: str | None = None   #: where the minimal trace was saved, if anywhere

    @property
    def minimal_steps(self) -> int:
        return len(self.minimal)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        saved = f" (saved to {self.path})" if self.path else ""
        return (
            f"shrunk {self.original_steps} -> {self.minimal_steps} step(s) "
            f"in {self.replays} replay(s){saved}: {self.minimal}"
        )


class _Budget:
    __slots__ = ("spent", "limit", "fails")

    def __init__(self, fails: Predicate, limit: int) -> None:
        self.spent = 0
        self.limit = limit
        self.fails = fails

    def __call__(self, steps: list[TraceStep]) -> bool:
        if self.spent >= self.limit:
            return False  # out of budget: treat as not-failing, keep current
        self.spent += 1
        return bool(self.fails(Trace(steps)))


def _shortest_failing_prefix(steps: list[TraceStep], check: _Budget) -> list[TraceStep]:
    lo, hi = 1, len(steps)  # invariant: steps[:hi] fails (verified by caller)
    while lo < hi:
        mid = (lo + hi) // 2
        if check(steps[:mid]):
            hi = mid
        else:
            lo = mid + 1
    candidate = steps[:hi]
    # Binary search assumed monotonicity; trust it only if verified.
    if hi < len(steps) and not check(candidate):
        return steps
    return candidate


def _ddmin(steps: list[TraceStep], check: _Budget) -> list[TraceStep]:
    chunks = 2
    while len(steps) >= 2:
        size = max(1, len(steps) // chunks)
        reduced = False
        start = 0
        while start < len(steps):
            candidate = steps[:start] + steps[start + size:]
            if candidate and check(candidate):
                steps = candidate
                chunks = max(chunks - 1, 2)
                reduced = True
                break
            start += size
        if not reduced:
            if chunks >= len(steps):
                break
            chunks = min(len(steps), chunks * 2)
    return steps


def shrink_trace(
    trace: Trace | str,
    fails: Predicate,
    *,
    max_replays: int = 400,
    save_as: str | None = None,
) -> ShrinkResult:
    """Minimize ``trace`` while ``fails`` keeps returning True.

    ``fails`` must hold on the input trace (validated first — a
    predicate that cannot even reproduce the original failure would
    "minimize" to garbage).  The result is 1-minimal with respect to
    single-step deletion, up to the ``max_replays`` budget (an
    exhausted budget returns the best trace found so far, never an
    unvalidated one).

    The minimal trace is written to ``save_as`` if given, else to
    ``$TESTKIT_TRACE_DIR/minimal-<n>steps.trace`` when the env var is
    set — next to the full traces ``@interleave`` dumps, so the CI
    artifact contains both the haystack and the needle.
    """
    if isinstance(trace, str):
        trace = Trace.parse(trace)
    steps = list(trace)
    if not steps:
        raise ValueError("cannot shrink an empty trace")
    check = _Budget(fails, max_replays)
    if not check(steps):
        raise ValueError(
            "the predicate does not fail on the original trace — nothing to shrink"
        )
    steps = _shortest_failing_prefix(steps, check)
    steps = _ddmin(steps, check)
    result = ShrinkResult(Trace(steps), len(trace), check.spent)
    directory = os.environ.get("TESTKIT_TRACE_DIR")
    if save_as is None and directory:
        os.makedirs(directory, exist_ok=True)
        save_as = os.path.join(directory, f"minimal-{len(steps)}steps.trace")
    if save_as:
        with open(save_as, "w", encoding="utf-8") as handle:
            handle.write(str(result.minimal) + "\n")
        result.path = save_as
    return result


def replay_fails(
    factory: Callable[[], Any],
    *,
    exception: type[BaseException] | tuple[type[BaseException], ...] | None = None,
    mode: str = "until",
    step_timeout: float = 0.3,
    stall_timeout: float = 0.02,
) -> Predicate:
    """Build the standard shrink predicate: replay the candidate against
    a fresh model and report whether the failure reproduced.

    ``factory`` builds fresh primitives per candidate and returns a
    worker mapping or a ``(mapping, oracle)`` pair (the same shape
    :func:`repro.testkit.explore.explore_model` takes).  The failure
    is defined by:

    * ``exception`` given — the replay (worker body, finish, or
      re-raised worker error) raises a matching exception, directly or
      anywhere along its ``__cause__`` chain;
    * otherwise an oracle from the factory — the replay completes and
      ``oracle(controller)`` returns truthy ("the bad state is
      there"), the right shape for silent-corruption bugs.  A crashing
      replay is a *different* failure and does not count: without this
      the shrinker happily walks from the silent corruption to
      whatever unrelated crash the mangled schedule can also trigger,
      and "minimizes" across failure modes;
    * neither — any exception at all counts as the failure.

    Candidates that are too mangled to replay (``StaleTraceError``)
    never count as failing.
    """

    def _matches(exc: BaseException) -> bool:
        if exception is None:
            return True
        seen: BaseException | None = exc
        while seen is not None:
            if isinstance(seen, exception):
                return True
            seen = seen.__cause__
        return False

    def predicate(candidate: Trace) -> bool:
        built = factory()
        threads, oracle = built if isinstance(built, tuple) else (built, None)
        try:
            result = replay(
                candidate,
                threads,
                mode=mode,
                step_timeout=step_timeout,
                stall_timeout=stall_timeout,
            )
        except StaleTraceError:
            return False
        except BaseException as exc:  # noqa: BLE001 - the crash is the signal
            if exception is None and oracle is not None:
                return False  # the failure is the oracle's state, not a crash
            return _matches(exc)
        if exception is not None:
            return False  # expected a crash; the replay completed
        if oracle is not None:
            return bool(oracle(result.controller))
        return False

    return predicate
