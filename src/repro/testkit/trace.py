"""Compact, replayable schedule traces.

A schedule is fully described by the sequence of *grants* the controller
issued: which worker was allowed to proceed, and at which sync point it
was gated when the grant arrived.  :class:`Trace` is that sequence, with
a one-line textual form — ``"w0:start w0:check.lock inc:increment.lock"``
— that failing tests print and :func:`repro.testkit.replay` parses back.

Thread names therefore must not contain whitespace or ``":"`` (the
harness enforces this at ``spawn``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["TraceStep", "Trace"]


@dataclass(frozen=True, slots=True)
class TraceStep:
    """One grant: ``thread`` was released from its gate at ``point``.

    ``obj`` is the primitive the gate fired with, recorded live by the
    controller for dependence analysis (:mod:`repro.testkit.por`).  It
    is an in-memory annotation only: excluded from equality and from
    the textual form, and absent on parsed traces.
    """

    thread: str
    point: str
    obj: object | None = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"{self.thread}:{self.point}"


class Trace:
    """An ordered record of grants, printable and parseable.

    >>> t = Trace([TraceStep("w", "start"), TraceStep("w", "park.enter")])
    >>> str(t)
    'w:start w:park.enter'
    >>> Trace.parse(str(t)) == t
    True
    """

    __slots__ = ("steps",)

    def __init__(self, steps: Iterable[TraceStep] = ()) -> None:
        self.steps: list[TraceStep] = list(steps)

    @classmethod
    def parse(cls, text: str) -> "Trace":
        """Parse the one-line ``thread:point`` format back into a trace."""
        steps = []
        for token in text.split():
            thread, sep, point = token.partition(":")
            if not sep or not thread or not point:
                raise ValueError(f"malformed trace token {token!r}")
            steps.append(TraceStep(thread, point))
        return cls(steps)

    def append(self, thread: str, point: str, obj: object | None = None) -> None:
        self.steps.append(TraceStep(thread, point, obj))

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[TraceStep]:
        return iter(self.steps)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Trace) and self.steps == other.steps

    def __str__(self) -> str:
        return " ".join(str(step) for step in self.steps)

    def __repr__(self) -> str:
        return f"Trace({str(self)!r})"
