"""Exhaustive schedule exploration (model checking the §6 claims)."""

from repro.verify.explorer import (
    ExplorationReport,
    ExplorerProgram,
    ScheduleExplorer,
    explore,
    explore_random,
)
from repro.verify.programs import (
    counter_ordered_program,
    counter_racy_program,
    counter_racy_program_split,
    lock_program,
    lock_program_split,
)

__all__ = [
    "explore",
    "explore_random",
    "ScheduleExplorer",
    "ExplorerProgram",
    "ExplorationReport",
    "lock_program",
    "counter_ordered_program",
    "counter_racy_program",
    "lock_program_split",
    "counter_racy_program_split",
]
