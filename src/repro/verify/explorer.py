"""Exhaustive schedule exploration for small simulated programs.

Section 6 argues that counter synchronization is deterministic *over all
schedules* while lock synchronization is not.  Sampling schedules with
real threads can only ever falsify determinacy; this explorer **proves**
it for small programs by enumerating every interleaving.

Programs use the :mod:`repro.simthread` syscall vocabulary (generators
yielding ``counter.check(...)``, ``lock.acquire()``, ...), but the
explorer interprets them untimed: a *step* executes one task's pending
syscall and runs its code to the next yield.  Interleaving granularity is
therefore the yield points — to expose intra-statement races (lost
updates), split the statement across yields with ``Delay(0)``.

The search is replay-based depth-first: generators cannot be snapshotted,
so each branch replays the program from scratch following a recorded
choice string.  Cost is O(executions × depth), fine for the 2-4 thread
programs of the E7 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Hashable, Sequence

from repro.simthread.primitives import SimBarrier, SimCounter, SimEvent, SimLock, SimSemaphore
from repro.simthread.syscalls import (
    BarrierPass,
    CheckOp,
    Compute,
    Delay,
    EventCheck,
    EventSet,
    IncrementOp,
    LockAcquire,
    LockRelease,
    SemAcquire,
    SemRelease,
    Syscall,
)

__all__ = [
    "ExplorerProgram",
    "ExplorationReport",
    "ScheduleExplorer",
    "explore",
    "explore_random",
]


class _Token:
    def __init__(self, label: str) -> None:
        self._label = label

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self._label


#: Task not yet started: its first step runs code up to the first yield.
_START = _Token("<start>")
#: Task's blocking syscall was satisfied by another task (barrier release).
_SATISFIED = _Token("<satisfied>")
#: Task finished.
_DONE = _Token("<done>")


@dataclass(slots=True)
class ExplorerProgram:
    """One explorable program instance: fresh tasks + a state observer.

    ``observe`` is called after each maximal execution and must return a
    hashable projection of the final program state (e.g. the value of the
    shared variable).  Factories must build *all* state fresh per call.
    """

    tasks: list[Generator[Any, Any, Any]]
    observe: Callable[[], Hashable]


@dataclass(slots=True)
class ExplorationReport:
    """Everything the exhaustive search found."""

    #: Distinct final states over all deadlock-free maximal executions.
    states: set = field(default_factory=set)
    #: Number of maximal executions explored.
    executions: int = 0
    #: Number of executions that ended in deadlock (blocked, not done).
    deadlocks: int = 0
    #: True if the search hit ``max_executions`` before finishing.
    truncated: bool = False
    #: Branch-choice strings of the first few deadlocking executions —
    #: a replayable witness for each (feed to ScheduleExplorer._run).
    deadlock_traces: list = field(default_factory=list)

    @property
    def deterministic(self) -> bool:
        """One final state, no deadlocks, search complete."""
        return len(self.states) == 1 and self.deadlocks == 0 and not self.truncated

    def __str__(self) -> str:
        flags = []
        if self.deadlocks:
            flags.append(f"{self.deadlocks} deadlock(s)")
        if self.truncated:
            flags.append("TRUNCATED")
        extra = f" [{', '.join(flags)}]" if flags else ""
        return (
            f"{self.executions} execution(s), {len(self.states)} distinct "
            f"final state(s): {sorted(map(repr, self.states))}{extra}"
        )


class _ExecTask:
    __slots__ = ("index", "gen", "pending")

    def __init__(self, index: int, gen: Generator[Any, Any, Any]) -> None:
        self.index = index
        self.gen = gen
        self.pending: Any = _START


class _Execution:
    """One concrete run of the program under explorer semantics."""

    def __init__(self, program: ExplorerProgram) -> None:
        self.tasks = [_ExecTask(i, gen) for i, gen in enumerate(program.tasks)]
        self.observe = program.observe
        self.lock_owner: dict[int, _ExecTask | None] = {}

    # -------------------------------------------------------------- guards

    def _enabled(self, task: _ExecTask) -> bool:
        pending = task.pending
        if pending is _DONE:
            return False
        if pending is _START or pending is _SATISFIED:
            return True
        if isinstance(pending, (Compute, Delay, IncrementOp, EventSet, LockRelease, SemRelease)):
            return True
        if isinstance(pending, CheckOp):
            return pending.counter.value >= pending.level
        if isinstance(pending, EventCheck):
            return pending.event.is_set
        if isinstance(pending, LockAcquire):
            return self.lock_owner.get(id(pending.lock)) is None
        if isinstance(pending, SemAcquire):
            return pending.semaphore.value >= pending.n
        if isinstance(pending, BarrierPass):
            barrier = pending.barrier
            arrived = sum(
                1
                for other in self.tasks
                if isinstance(other.pending, BarrierPass) and other.pending.barrier is barrier
            )
            return arrived == barrier.parties
        raise TypeError(f"schedule explorer does not support syscall {pending!r}")

    def runnable(self) -> list[_ExecTask]:
        return [task for task in self.tasks if self._enabled(task)]

    def done(self) -> bool:
        return all(task.pending is _DONE for task in self.tasks)

    # --------------------------------------------------------------- steps

    def step(self, task: _ExecTask) -> None:
        pending = task.pending
        if isinstance(pending, BarrierPass):
            # Barrier completion releases every party; each advances in its
            # own later step so release-order interleavings stay explored.
            barrier = pending.barrier
            for other in self.tasks:
                if isinstance(other.pending, BarrierPass) and other.pending.barrier is barrier:
                    other.pending = _SATISFIED
            return
        if isinstance(pending, IncrementOp):
            pending.counter.value += pending.amount
        elif isinstance(pending, EventSet):
            pending.event.is_set = True
        elif isinstance(pending, LockAcquire):
            self.lock_owner[id(pending.lock)] = task
        elif isinstance(pending, LockRelease):
            if self.lock_owner.get(id(pending.lock)) is not task:
                raise RuntimeError(f"task {task.index} released a lock it does not own")
            self.lock_owner[id(pending.lock)] = None
        elif isinstance(pending, SemAcquire):
            pending.semaphore.value -= pending.n
        elif isinstance(pending, SemRelease):
            pending.semaphore.value += pending.n
        # CheckOp/EventCheck guards already held; Compute/Delay are no-ops.
        self._advance(task)

    def _advance(self, task: _ExecTask) -> None:
        try:
            syscall = task.gen.send(None)
        except StopIteration:
            task.pending = _DONE
            return
        if not isinstance(syscall, Syscall):
            raise TypeError(f"task {task.index} yielded non-syscall {syscall!r}")
        task.pending = syscall


class ScheduleExplorer:
    """Replay-based DFS over all schedules of a program factory."""

    def __init__(
        self,
        factory: Callable[[], ExplorerProgram],
        *,
        max_executions: int = 100_000,
        max_steps: int = 100_000,
    ) -> None:
        self._factory = factory
        self._max_executions = max_executions
        self._max_steps = max_steps

    def explore(self) -> ExplorationReport:
        report = ExplorationReport()
        # Each stack entry is a choice string: the index chosen at each
        # *branch point* (scheduling point with >1 runnable task).
        stack: list[tuple[int, ...]] = [()]
        while stack:
            if report.executions >= self._max_executions:
                report.truncated = True
                break
            schedule = stack.pop()
            outcome, trace = self._run(schedule, stack)
            report.executions += 1
            if outcome is _DEADLOCK:
                report.deadlocks += 1
                if len(report.deadlock_traces) < 8:
                    report.deadlock_traces.append(trace)
            else:
                report.states.add(outcome)
        return report

    def _run(
        self, schedule: Sequence[int], stack: list[tuple[int, ...]]
    ) -> tuple[Any, tuple[int, ...]]:
        execution = _Execution(self._factory())
        cursor = 0
        trace: list[int] = []
        for _ in range(self._max_steps):
            runnable = execution.runnable()
            if not runnable:
                if execution.done():
                    return execution.observe(), tuple(trace)
                return _DEADLOCK, tuple(trace)
            if len(runnable) == 1:
                execution.step(runnable[0])
                continue
            if cursor < len(schedule):
                choice = schedule[cursor]
            else:
                # New branch point: take choice 0 now, queue the alternatives.
                choice = 0
                for alternative in range(1, len(runnable)):
                    stack.append(tuple(trace) + (alternative,))
            trace.append(choice)
            cursor += 1
            execution.step(runnable[choice])
        raise RuntimeError(
            f"execution exceeded max_steps={self._max_steps}; "
            "is the program unbounded?"
        )


_DEADLOCK = _Token("<deadlock>")


def explore_random(
    factory: Callable[[], ExplorerProgram],
    *,
    samples: int = 1000,
    seed: int = 0,
    max_steps: int = 100_000,
) -> ExplorationReport:
    """Sample random schedules instead of enumerating all of them.

    For programs whose schedule space is too large for :func:`explore`:
    runs the program ``samples`` times, choosing uniformly among runnable
    tasks at every scheduling point.  Can only ever *refute* determinacy
    (multiple states found) or find deadlocks — a single-state result is
    evidence, not proof.  The report is marked ``truncated`` to keep
    ``deterministic`` honest about that asymmetry.
    """
    import random

    rng = random.Random(seed)
    report = ExplorationReport(truncated=True)
    for _ in range(samples):
        execution = _Execution(factory())
        for _ in range(max_steps):
            runnable = execution.runnable()
            if not runnable:
                break
            execution.step(runnable[rng.randrange(len(runnable))])
        else:
            raise RuntimeError(f"execution exceeded max_steps={max_steps}")
        report.executions += 1
        if execution.done():
            report.states.add(execution.observe())
        else:
            report.deadlocks += 1
    return report


def explore(
    factory: Callable[[], ExplorerProgram],
    *,
    max_executions: int = 100_000,
    max_steps: int = 100_000,
) -> ExplorationReport:
    """Exhaustively explore every schedule of ``factory``'s program.

    >>> from repro.simthread import SimCounter
    >>> def program():
    ...     c = SimCounter("c")
    ...     x = [0]
    ...     def first():
    ...         yield c.check(0); x[0] += 1; yield c.increment(1)
    ...     def second():
    ...         yield c.check(1); x[0] *= 2; yield c.increment(1)
    ...     return ExplorerProgram(tasks=[first(), second()], observe=lambda: x[0])
    >>> explore(program).deterministic
    True
    """
    return ScheduleExplorer(
        factory, max_executions=max_executions, max_steps=max_steps
    ).explore()
