"""The paper's §6 example programs, packaged for exhaustive exploration.

Three two-thread programs over a shared ``x`` (initially 0), one thread
computing ``x = x + 1`` and the other ``x = x * 2``:

* :func:`lock_program` — mutual exclusion by lock (the paper's first
  example): atomicity but **no order**, so the final value is 1 or 2
  depending on acquisition order.
* :func:`counter_ordered_program` — the paper's ordered counter program
  (``Check(0)``/``Check(1)``): exactly one final state, 2.
* :func:`counter_racy_program` — the paper's broken variant (both
  ``Check(0)``): counter synchronization used without the shared-variable
  discipline, so results vary with order.

Each ``*_split`` variant separates the read and the write of ``x`` across
yield points, exposing *lost-update* interleavings in addition to
ordering nondeterminism (e.g. both threads read 0).
"""

from __future__ import annotations

from repro.simthread.primitives import SimCounter, SimLock
from repro.simthread.syscalls import Delay
from repro.verify.explorer import ExplorerProgram

__all__ = [
    "lock_program",
    "counter_ordered_program",
    "counter_racy_program",
    "lock_program_split",
    "counter_racy_program_split",
]


def lock_program() -> ExplorerProgram:
    """``multithreaded { {Lock; x=x+1; Unlock} {Lock; x=x*2; Unlock} }``."""
    lock = SimLock("xLock")
    x = [0]

    def add_one():
        yield lock.acquire()
        x[0] = x[0] + 1
        yield lock.release()

    def double():
        yield lock.acquire()
        x[0] = x[0] * 2
        yield lock.release()

    return ExplorerProgram(tasks=[add_one(), double()], observe=lambda: x[0])


def counter_ordered_program() -> ExplorerProgram:
    """``{Check(0); x=x+1; Inc(1)} || {Check(1); x=x*2; Inc(1)}`` — deterministic."""
    counter = SimCounter("xCount")
    x = [0]

    def add_one():
        yield counter.check(0)
        x[0] = x[0] + 1
        yield counter.increment(1)

    def double():
        yield counter.check(1)
        x[0] = x[0] * 2
        yield counter.increment(1)

    return ExplorerProgram(tasks=[add_one(), double()], observe=lambda: x[0])


def counter_racy_program() -> ExplorerProgram:
    """Both threads ``Check(0)`` — counter sync without the discipline."""
    counter = SimCounter("xCount")
    x = [0]

    def add_one():
        yield counter.check(0)
        x[0] = x[0] + 1
        yield counter.increment(1)

    def double():
        yield counter.check(0)
        x[0] = x[0] * 2
        yield counter.increment(1)

    return ExplorerProgram(tasks=[add_one(), double()], observe=lambda: x[0])


def lock_program_split() -> ExplorerProgram:
    """Lock program with read/write split — still atomic (lock held), so the
    split adds no states beyond acquisition-order nondeterminism."""
    lock = SimLock("xLock")
    x = [0]

    def add_one():
        yield lock.acquire()
        tmp = x[0]
        yield Delay(0)
        x[0] = tmp + 1
        yield lock.release()

    def double():
        yield lock.acquire()
        tmp = x[0]
        yield Delay(0)
        x[0] = tmp * 2
        yield lock.release()

    return ExplorerProgram(tasks=[add_one(), double()], observe=lambda: x[0])


def counter_racy_program_split() -> ExplorerProgram:
    """Racy counter program with read/write split: exposes lost updates
    (both threads read x == 0) on top of ordering nondeterminism."""
    counter = SimCounter("xCount")
    x = [0]

    def add_one():
        yield counter.check(0)
        tmp = x[0]
        yield Delay(0)
        x[0] = tmp + 1
        yield counter.increment(1)

    def double():
        yield counter.check(0)
        tmp = x[0]
        yield Delay(0)
        x[0] = tmp * 2
        yield counter.increment(1)

    return ExplorerProgram(tasks=[add_one(), double()], observe=lambda: x[0])
