"""Tests for the asyncio counter and the thread->loop bridge."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.aio import AsyncCounter, CounterBridge
from repro.core import CheckTimeout, CounterValueError, ResetConcurrencyError


def run(coro):
    return asyncio.run(coro)


class TestAsyncCounterBasics:
    def test_initial_value(self):
        assert AsyncCounter().value == 0

    def test_increment_returns_new_value(self):
        c = AsyncCounter()
        assert c.increment(3) == 3
        assert c.increment() == 4

    def test_immediate_check(self):
        async def scenario():
            c = AsyncCounter()
            c.increment(5)
            await c.check(5)
            await c.check(0)
            return c.value

        assert run(scenario()) == 5

    def test_validation(self):
        c = AsyncCounter()
        with pytest.raises(CounterValueError):
            c.increment(-1)
        with pytest.raises(CounterValueError):
            run(c.check(-1))
        with pytest.raises(ValueError):
            AsyncCounter(max_value=-2)

    def test_overflow(self):
        from repro.core import CounterOverflowError

        c = AsyncCounter(max_value=2)
        c.increment(2)
        with pytest.raises(CounterOverflowError):
            c.increment(1)
        assert c.value == 2

    def test_repr(self):
        assert "kCount" in repr(AsyncCounter(name="kCount"))


class TestAsyncSuspension:
    def test_check_suspends_until_level(self):
        async def scenario():
            c = AsyncCounter()
            order = []

            async def waiter():
                await c.check(3)
                order.append("woke")

            task = asyncio.ensure_future(waiter())
            await asyncio.sleep(0)
            order.append("inc2")
            c.increment(2)
            await asyncio.sleep(0)
            assert "woke" not in order
            order.append("inc1")
            c.increment(1)
            await task
            return order

        assert run(scenario()) == ["inc2", "inc1", "woke"]

    def test_multiple_levels_one_counter(self):
        async def scenario():
            c = AsyncCounter()
            woke = []

            async def waiter(level):
                await c.check(level)
                woke.append(level)

            tasks = [asyncio.ensure_future(waiter(level)) for level in (3, 1, 2)]
            await asyncio.sleep(0)
            assert c.snapshot().waiting_levels == (1, 2, 3)
            c.increment(2)
            await asyncio.sleep(0)
            assert sorted(woke) == [1, 2]
            c.increment(1)
            await asyncio.gather(*tasks)
            return woke

        woke = run(scenario())
        assert sorted(woke) == [1, 2, 3]

    def test_storage_proportional_to_levels(self):
        async def scenario():
            c = AsyncCounter(stats=True)
            tasks = [
                asyncio.ensure_future(c.check((i % 3) + 1)) for i in range(12)
            ]
            await asyncio.sleep(0)
            snapshot = c.snapshot()
            assert snapshot.total_waiters == 12
            assert len(snapshot.nodes) == 3  # L, not W
            c.increment(3)
            await asyncio.gather(*tasks)
            assert c.stats.max_live_levels == 3
            assert c.stats.max_live_waiters == 12

        run(scenario())

    def test_check_timeout(self):
        async def scenario():
            c = AsyncCounter()
            with pytest.raises(CheckTimeout):
                await c.check(1, timeout=0.01)
            # state unperturbed, level reclaimed
            assert c.snapshot().nodes == ()
            c.increment(1)
            await c.check(1)

        run(scenario())

    def test_timeout_does_not_disturb_other_waiters(self):
        async def scenario():
            c = AsyncCounter()
            patient = asyncio.ensure_future(c.check(5))
            await asyncio.sleep(0)
            with pytest.raises(CheckTimeout):
                await c.check(5, timeout=0.01)
            assert c.snapshot().total_waiters == 1
            c.increment(5)
            await patient

        run(scenario())

    def test_timeout_leaves_no_pending_task(self):
        """A timed-out check must not strand a pending task on the loop.

        A shield around ``event.wait()`` would protect the inner task
        from ``wait_for``'s cancellation; with the level popped by the
        timed-out last waiter its event is never set, so that task would
        pend forever — one leak per timeout, surfacing as "Task was
        destroyed but it is pending!" at loop shutdown."""

        async def scenario():
            c = AsyncCounter()
            with pytest.raises(CheckTimeout):
                await c.check(1, timeout=0.01)
            await asyncio.sleep(0)
            leftovers = [t for t in asyncio.all_tasks() if t is not asyncio.current_task()]
            assert leftovers == []

        run(scenario())

    def test_cancelled_waiter_reclaims_level(self):
        async def scenario():
            c = AsyncCounter()
            task = asyncio.ensure_future(c.check(7))
            await asyncio.sleep(0)
            assert c.snapshot().waiting_levels == (7,)
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            assert c.snapshot().nodes == ()

        run(scenario())

    def test_reset_contract(self):
        async def scenario():
            c = AsyncCounter()
            task = asyncio.ensure_future(c.check(1))
            await asyncio.sleep(0)
            with pytest.raises(ResetConcurrencyError):
                c.reset()
            c.increment(1)
            await task
            c.reset()
            assert c.value == 0

        run(scenario())


class TestAsyncPatterns:
    def test_writer_reader_broadcast(self):
        """The §5.3 pattern, coroutine edition."""

        async def scenario():
            n = 20
            data = [None] * n
            c = AsyncCounter()
            seen = []

            async def writer():
                for i in range(n):
                    data[i] = i * i
                    c.increment(1)
                    if i % 5 == 0:
                        await asyncio.sleep(0)

            async def reader():
                out = []
                for i in range(n):
                    await c.check(i + 1)
                    out.append(data[i])
                seen.append(out)

            await asyncio.gather(writer(), reader(), reader())
            return seen

        seen = run(scenario())
        assert seen == [[i * i for i in range(20)]] * 2

    def test_ordered_sections(self):
        """§5.2 ordering with coroutines."""

        async def scenario():
            c = AsyncCounter()
            order = []

            async def worker(i):
                await c.check(i)
                order.append(i)
                c.increment(1)

            await asyncio.gather(*(worker(i) for i in reversed(range(8))))
            return order

        assert run(scenario()) == list(range(8))


class TestCounterBridge:
    def test_thread_increments_wake_coroutine(self):
        async def scenario():
            bridge = CounterBridge(asyncio.get_running_loop(), name="bridge")

            def worker():
                for _ in range(5):
                    bridge.increment(1)

            thread = threading.Thread(target=worker)
            thread.start()
            await asyncio.wait_for(bridge.async_counter.check(5), timeout=10)
            thread.join()
            return bridge.async_counter.value, bridge.thread_counter.value

        async_value, thread_value = run(scenario())
        assert async_value == 5
        assert thread_value == 5

    def test_threads_can_also_check_the_thread_side(self):
        async def scenario():
            bridge = CounterBridge(asyncio.get_running_loop())
            observed = []

            def thread_waiter():
                bridge.thread_counter.check(3, timeout=10)
                observed.append(bridge.thread_counter.value)

            thread = threading.Thread(target=thread_waiter)
            thread.start()
            bridge.increment(3)
            await bridge.async_counter.check(3)
            thread.join(10)
            return observed

        assert run(scenario()) == [3]

    def test_direct_check_wakes_from_thread_increment(self):
        """The engine-era handoff: ``await bridge.check(level)`` parks on
        a loop future the releasing thread completes directly — no
        mirrored AsyncCounter in the wait path."""
        async def scenario():
            bridge = CounterBridge(asyncio.get_running_loop())

            def worker():
                for _ in range(5):
                    bridge.increment(1)

            thread = threading.Thread(target=worker)
            thread.start()
            await asyncio.wait_for(bridge.check(5), timeout=10)
            thread.join()
            return bridge.thread_counter.value

        assert run(scenario()) == 5

    def test_direct_check_already_satisfied_never_parks(self):
        async def scenario():
            bridge = CounterBridge(asyncio.get_running_loop())
            bridge.increment(2)
            await bridge.check(2)  # immediate: no subscription left behind
            await bridge.check(1)
            return bridge.thread_counter.snapshot().waiting_levels

        assert run(scenario()) == ()

    def test_direct_check_timeout_deregisters(self):
        async def scenario():
            bridge = CounterBridge(asyncio.get_running_loop())
            with pytest.raises(CheckTimeout):
                await bridge.check(3, timeout=0.02)
            # The subscription was cancelled: the wait node is reclaimed
            # and a later increment fires nothing stale.
            levels = bridge.thread_counter.snapshot().waiting_levels
            bridge.thread_counter.increment(3)
            return levels

        assert run(scenario()) == ()

    def test_direct_check_satisfaction_racing_expiry_is_success(self):
        """Stability adjudication: if the level is reached by the time the
        expiry fires, the check reports success even when the future's
        completion callback lost the race."""
        async def scenario():
            bridge = CounterBridge(asyncio.get_running_loop())
            # Satisfy on the thread counter *behind the bridge's back* so
            # no deliver callback is ever scheduled, then let an
            # effectively-instant timeout expire: the re-read must win.
            bridge.thread_counter.increment(4)
            task = asyncio.ensure_future(bridge.check(4, timeout=5))
            await task
            return bridge.thread_counter.value

        assert run(scenario()) == 4

    def test_direct_check_cancellation_deregisters(self):
        async def scenario():
            bridge = CounterBridge(asyncio.get_running_loop())
            task = asyncio.ensure_future(bridge.check(7))
            await asyncio.sleep(0)  # let it subscribe and park
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            return bridge.thread_counter.snapshot().waiting_levels

        assert run(scenario()) == ()

    def test_mirror_is_idempotent_under_batching(self):
        async def scenario():
            bridge = CounterBridge(asyncio.get_running_loop())
            for _ in range(10):
                bridge.increment(1)
            await bridge.async_counter.check(10)
            # Duplicate absolute-floor callbacks must not overshoot.
            bridge._raise_to(10)
            bridge._raise_to(4)
            return bridge.async_counter.value

        assert run(scenario()) == 10
