"""Tests for AsyncMultiWait and AsyncCounter subscriptions."""

from __future__ import annotations

import asyncio

import pytest

from repro.aio import AsyncCounter, AsyncMultiWait
from repro.core import CheckTimeout, CounterValueError


def run(coro):
    return asyncio.run(coro)


class TestAsyncSubscribe:
    def test_satisfied_level_returns_none_without_firing(self):
        async def scenario():
            counter = AsyncCounter()
            counter.increment(2)
            fired = []
            assert counter.subscribe(2, lambda: fired.append(True)) is None
            return fired

        assert run(scenario()) == []

    def test_callback_fires_on_satisfying_increment(self):
        async def scenario():
            counter = AsyncCounter()
            fired = []
            subscription = counter.subscribe(3, lambda: fired.append(True))
            assert subscription is not None
            counter.increment(2)
            assert fired == []
            counter.increment(1)
            return fired, counter._levels

        fired, levels = run(scenario())
        assert fired == [True]
        assert levels == {}  # node reclaimed with the release

    def test_cancel_reclaims_subscription_only_level(self):
        async def scenario():
            counter = AsyncCounter()
            fired = []
            subscription = counter.subscribe(5, lambda: fired.append(True))
            assert 5 in counter._levels
            subscription.cancel()
            assert counter._levels == {}
            subscription.cancel()  # idempotent
            counter.increment(5)
            return fired

        assert run(scenario()) == []

    def test_cancel_keeps_level_with_parked_checker(self):
        async def scenario():
            counter = AsyncCounter()
            checker = asyncio.ensure_future(counter.check(1))
            await asyncio.sleep(0)  # let the checker park
            subscription = counter.subscribe(1, lambda: None)
            subscription.cancel()
            assert 1 in counter._levels  # the checker still needs the node
            counter.increment(1)
            await checker
            return counter._levels

        assert run(scenario()) == {}

    def test_validation(self):
        counter = AsyncCounter()
        with pytest.raises(CounterValueError):
            counter.subscribe(-1, lambda: None)
        with pytest.raises(TypeError):
            counter.subscribe(1, "not callable")


class TestAsyncMultiWait:
    def test_wait_all_blocks_until_every_condition(self):
        async def scenario():
            a, b = AsyncCounter(), AsyncCounter()
            order = []
            with AsyncMultiWait([(a, 1), (b, 2)]) as mw:
                async def waiter():
                    await mw.wait_all()
                    order.append("woke")

                task = asyncio.ensure_future(waiter())
                a.increment(1)
                b.increment(1)
                await asyncio.sleep(0)
                order.append("partial")
                b.increment(1)
                await task
            return order

        assert run(scenario()) == ["partial", "woke"]

    def test_already_satisfied_recorded_at_construction(self):
        async def scenario():
            a, b = AsyncCounter(), AsyncCounter()
            a.increment(4)
            with AsyncMultiWait([(a, 4), (b, 1), (a, 5)]) as mw:
                assert mw.satisfied == {0}
                assert len(mw) == 3
                b.increment(1)
                a.increment(1)
                await mw.wait_all(timeout=5)
                return mw.satisfied

        assert run(scenario()) == {0, 1, 2}

    def test_wait_any_returns_satisfied_indices(self):
        async def scenario():
            a, b = AsyncCounter(), AsyncCounter()
            with AsyncMultiWait([(a, 1), (b, 1)]) as mw:
                loop = asyncio.get_running_loop()
                loop.call_soon(b.increment, 1)
                return await mw.wait_any(timeout=5)

        assert run(scenario()) == {1}

    def test_timeout_raises_check_timeout(self):
        async def scenario():
            counter = AsyncCounter()
            with AsyncMultiWait([(counter, 1)]) as mw:
                with pytest.raises(CheckTimeout):
                    await mw.wait_all(timeout=0.01)
            return counter._levels

        assert run(scenario()) == {}  # close() reclaimed the node

    def test_close_reclaims_nodes_and_refuses_waits(self):
        async def scenario():
            a, b = AsyncCounter(), AsyncCounter()
            mw = AsyncMultiWait([(a, 1), (b, 1)])
            assert 1 in a._levels and 1 in b._levels
            mw.close()
            mw.close()  # idempotent
            assert a._levels == {} and b._levels == {}
            with pytest.raises(RuntimeError):
                await mw.wait_all()

        run(scenario())

    def test_rejects_non_subscribable(self):
        with pytest.raises(TypeError, match="subscribe"):
            AsyncMultiWait([(object(), 1)])
        with pytest.raises(CounterValueError):
            AsyncMultiWait([(AsyncCounter(), -1)])

    def test_fan_in_of_many_counters(self):
        async def scenario():
            counters = [AsyncCounter() for _ in range(6)]
            with AsyncMultiWait([(c, 2) for c in counters]) as mw:
                for c in counters:
                    c.increment(1)
                for c in counters:
                    c.increment(1)
                await mw.wait_all(timeout=5)
            return [c._levels for c in counters]

        assert run(scenario()) == [{}] * 6
