"""AsyncShardedCounter: batching under a cooperative event loop."""

from __future__ import annotations

import asyncio

import pytest

from repro.aio import AsyncCounter, AsyncShardedCounter
from repro.core import CheckTimeout, CounterValueError


def run(coro):
    return asyncio.run(coro)


class TestBatching:
    def test_increments_stay_pending_below_batch(self):
        async def scenario():
            c = AsyncShardedCounter(batch=8)
            for _ in range(5):
                c.increment(1)
            assert c.published == 0
            assert c.pending == 5
            assert c.value == 5      # reconciling read
            assert c.pending == 0

        run(scenario())

    def test_batch_threshold_publishes(self):
        async def scenario():
            c = AsyncShardedCounter(batch=4)
            assert c.increment(3) == 0
            assert c.increment(1) == 4
            assert c.flush() == 4

        run(scenario())

    def test_constructor_validated(self):
        with pytest.raises(ValueError):
            AsyncShardedCounter(batch=0)

    def test_operands_validated(self):
        async def scenario():
            c = AsyncShardedCounter()
            with pytest.raises(CounterValueError):
                c.increment(-1)
            with pytest.raises(CounterValueError):
                await c.check(-1)

        run(scenario())


class TestCheckSemantics:
    def test_check_sees_unflushed_increments(self):
        async def scenario():
            c = AsyncShardedCounter(batch=1_000)
            c.increment(5)
            await c.check(5, timeout=1)   # reconciles instead of timing out

        run(scenario())

    def test_suspended_check_woken_despite_batching(self):
        async def scenario():
            c = AsyncShardedCounter(batch=1_000_000)
            task = asyncio.ensure_future(c.check(10))
            await asyncio.sleep(0)
            for _ in range(10):
                c.increment(1)            # waiter present: publishes eagerly
            await asyncio.wait_for(task, timeout=5)
            assert c.value == 10

        run(scenario())

    def test_check_timeout(self):
        async def scenario():
            c = AsyncShardedCounter(batch=1)
            c.increment(1)
            with pytest.raises(CheckTimeout):
                await c.check(99, timeout=0.01)

        run(scenario())

    def test_reset_and_reuse(self):
        async def scenario():
            c = AsyncShardedCounter(batch=4)
            c.increment(3)
            c.reset()
            assert c.value == 0
            c.increment(2)
            assert c.value == 2

        run(scenario())


class TestDifferentialWithPlainAsyncCounter:
    def test_same_script_same_values(self):
        async def scenario():
            import random

            rng = random.Random(7)
            amounts = [rng.randrange(0, 4) for _ in range(200)]
            total = sum(amounts)
            plain = AsyncCounter()
            batched = AsyncShardedCounter(batch=16)
            running = 0
            for amount in amounts:
                plain.increment(amount)
                batched.increment(amount)
                running += amount
                assert plain.value == running
                assert batched.value == running   # reconciling
            await plain.check(total)
            await batched.check(total)
            assert plain.value == batched.value == total

        run(scenario())

    def test_stats_delegation(self):
        async def scenario():
            c = AsyncShardedCounter(batch=1, stats=True)
            c.increment(2)
            await c.check(1)
            assert c.stats.enabled
            assert c.stats.increments == 1
            assert AsyncShardedCounter().stats.enabled is False

        run(scenario())
