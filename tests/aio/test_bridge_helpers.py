"""The bridge's module-level helpers: absolute floors and thread-side calls.

``raise_to`` is the idiom that mirrors a replicated total into a local
counter: idempotent and order-insensitive *because* counters are
monotone.  ``wait_threadside`` is the inverse of the PR-6 aio handoff —
a thread parking on its engine slot until a coroutine on some loop
completes — and is what the dist layer's thread shim is built on.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.aio.bridge import raise_to, wait_threadside
from repro.core import MonotonicCounter
from tests.helpers import join_all, spawn


class TestRaiseTo:
    def test_raises_to_target(self):
        counter = MonotonicCounter()
        raise_to(counter, 5)
        assert counter.value == 5

    def test_idempotent_and_order_insensitive(self):
        counter = MonotonicCounter()
        for target in (3, 7, 7, 2, 9, 1):
            raise_to(counter, target)
        assert counter.value == 9  # max of the targets, not their sum

    def test_zero_and_negative_gap_are_noops(self):
        counter = MonotonicCounter()
        counter.increment(4)
        raise_to(counter, 4)
        raise_to(counter, 0)
        assert counter.value == 4


class _LoopThread:
    """A private running loop on a daemon thread, for thread-side tests."""

    def __init__(self):
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            started.set()
            self.loop.run_forever()
            self.loop.close()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        started.wait()

    def stop(self):
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)


@pytest.fixture()
def loop_thread():
    lt = _LoopThread()
    yield lt
    lt.stop()


class TestWaitThreadside:
    def test_returns_coroutine_result(self, loop_thread):
        async def answer():
            return 42

        assert wait_threadside(loop_thread.loop, answer()) == 42

    def test_propagates_coroutine_exception(self, loop_thread):
        async def boom():
            raise ValueError("from the loop")

        with pytest.raises(ValueError, match="from the loop"):
            wait_threadside(loop_thread.loop, boom())

    def test_timeout_raises_and_cancels(self, loop_thread):
        cancelled = []

        async def stuck():
            try:
                await asyncio.sleep(60)
            except asyncio.CancelledError:
                cancelled.append(True)
                raise

        with pytest.raises(TimeoutError):
            wait_threadside(loop_thread.loop, stuck(), timeout=0.1)
        # The in-flight coroutine was cancelled, not leaked.
        deadline = asyncio.run_coroutine_threadsafe(
            asyncio.sleep(0), loop_thread.loop
        )
        deadline.result(5)
        assert cancelled == [True]

    def test_slot_rearmed_after_timeout(self, loop_thread):
        """The guaranteed done-callback set is consumed on the timeout
        path, so the caller's slot is clean for its next park."""
        async def stuck():
            await asyncio.sleep(60)

        async def quick():
            return "ok"

        with pytest.raises(TimeoutError):
            wait_threadside(loop_thread.loop, stuck(), timeout=0.05)
        # Same thread, same slot: a second call must work flawlessly.
        assert wait_threadside(loop_thread.loop, quick()) == "ok"

    def test_many_threads_share_one_loop(self, loop_thread):
        async def double(x):
            await asyncio.sleep(0.01)
            return x * 2

        results = {}

        def caller(i):
            results[i] = wait_threadside(loop_thread.loop, double(i), timeout=10)

        threads = [spawn(caller, i) for i in range(8)]
        join_all(threads)
        assert results == {i: i * 2 for i in range(8)}
