"""Cancellation semantics of the asyncio counter family.

The async implementations deliberately run unshielded (see the comments
in ``repro/aio/counter.py``): cancelling an ``Event.wait`` is
side-effect free, and a shield would leave one pending task lingering
per timed-out or cancelled check.  These tests pin the contract that
motivates that choice:

* cancelling a suspended ``check``/``wait_all``/``wait_any`` mid-wait
  raises ``CancelledError`` in the waiter and nothing else;
* the waiter's ``finally`` reclaims its level bookkeeping — no node
  residue, tallies consistent, ``reset()`` not poisoned;
* no orphaned task remains on the loop afterwards (the PR-2 review
  class of bug: a leaked inner task per expired wait).
"""

from __future__ import annotations

import asyncio
import contextlib

import pytest

from repro.aio import AsyncCounter
from repro.aio.multiwait import AsyncMultiWait
from repro.core.errors import CheckTimeout


def run(coro):
    return asyncio.run(coro)


async def _settle(task):
    """Cancel ``task``, await its unwinding, and assert it ended in
    cancellation (not some other exception, not a silent success)."""
    task.cancel()
    with contextlib.suppress(asyncio.CancelledError):
        await task
    assert task.cancelled()


def _stragglers():
    """Tasks still pending on the loop besides the caller's own."""
    current = asyncio.current_task()
    return [t for t in asyncio.all_tasks() if t is not current and not t.done()]


class TestCancelCheck:
    def test_cancel_untimed_check_reclaims_level(self):
        async def scenario():
            counter = AsyncCounter()
            task = asyncio.ensure_future(counter.check(1))
            await asyncio.sleep(0)  # let it suspend
            assert counter.snapshot().waiting_levels == (1,)
            await _settle(task)
            # The finally block ran: level reclaimed, no waiter residue.
            assert counter._levels == {}
            assert _stragglers() == []
            counter.reset()  # not poisoned
            counter.increment(1)
            await counter.check(1)  # counter fully usable

        run(scenario())

    def test_cancel_timed_check_leaves_no_pending_tasks(self):
        """The wait_for plumbing must unwind completely on cancellation —
        no inner waiter left pending on the loop."""

        async def scenario():
            counter = AsyncCounter()
            task = asyncio.ensure_future(counter.check(1, timeout=30))
            await asyncio.sleep(0)
            await _settle(task)
            assert counter._levels == {}
            assert _stragglers() == []

        run(scenario())

    def test_timeout_expiry_leaves_no_pending_tasks(self):
        """The leak class the no-shield comment documents: a check whose
        timeout *expires* must also leave a clean loop and no node."""

        async def scenario():
            counter = AsyncCounter()
            with pytest.raises(CheckTimeout):
                await counter.check(1, timeout=0.01)
            assert counter._levels == {}
            assert _stragglers() == []
            counter.reset()

        run(scenario())

    def test_cancel_one_waiter_spares_the_others(self):
        async def scenario():
            counter = AsyncCounter()
            doomed = asyncio.ensure_future(counter.check(1))
            survivor = asyncio.ensure_future(counter.check(1))
            await asyncio.sleep(0)
            node = counter._levels[1]
            assert node.count == 2
            await _settle(doomed)
            # Same level node, one waiter fewer — not reclaimed early.
            assert counter._levels[1] is node and node.count == 1
            counter.increment(1)
            await survivor
            assert counter._levels == {}
            assert _stragglers() == []

        run(scenario())

    def test_cancelled_waiter_spares_a_subscription_on_its_level(self):
        """A cancelled waiter sharing its level with a live subscription
        must not reclaim the node out from under the subscriber."""

        async def scenario():
            counter = AsyncCounter()
            fired = []
            subscription = counter.subscribe(1, lambda: fired.append(True))
            assert subscription is not None
            task = asyncio.ensure_future(counter.check(1))
            await asyncio.sleep(0)
            await _settle(task)
            assert 1 in counter._levels  # kept alive for the subscriber
            counter.increment(1)
            assert fired == [True]
            assert counter._levels == {}

        run(scenario())


class TestCancelMultiWait:
    def test_cancel_wait_all_midwait(self):
        async def scenario():
            a, b = AsyncCounter(), AsyncCounter()
            mw = AsyncMultiWait([(a, 1), (b, 1)])
            task = asyncio.ensure_future(mw.wait_all())
            await asyncio.sleep(0)
            a.increment(1)  # partial satisfaction, still waiting
            await asyncio.sleep(0)
            await _settle(task)
            assert mw.satisfied == frozenset({0})  # delivery survived
            assert _stragglers() == []
            # Close cancels the unfired subscription: both counters end
            # with no registered levels and a working reset().
            mw.close()
            assert a._levels == {} and b._levels == {}
            a.reset()
            b.reset()

        run(scenario())

    def test_cancel_timed_wait_any_then_reuse(self):
        """Cancellation must not wedge the object: a later delivery still
        lands and a fresh wait observes it."""

        async def scenario():
            a, b = AsyncCounter(), AsyncCounter()
            mw = AsyncMultiWait([(a, 1), (b, 1)])
            task = asyncio.ensure_future(mw.wait_any(timeout=30))
            await asyncio.sleep(0)
            await _settle(task)
            assert _stragglers() == []
            b.increment(1)
            assert await mw.wait_any(timeout=1) == frozenset({1})
            mw.close()
            assert a._levels == {} and b._levels == {}

        run(scenario())

    def test_cancelled_wait_does_not_close_the_multiwait(self):
        """Cancellation of one waiting coroutine is not close(): other
        waiters of the same object keep working."""

        async def scenario():
            a = AsyncCounter()
            mw = AsyncMultiWait([(a, 1)])
            doomed = asyncio.ensure_future(mw.wait_all())
            survivor = asyncio.ensure_future(mw.wait_all())
            await asyncio.sleep(0)
            await _settle(doomed)
            a.increment(1)
            await asyncio.wait_for(survivor, 1)
            assert mw.satisfied == frozenset({0})
            mw.close()
            assert _stragglers() == []

        run(scenario())
