"""§5.2 ordered accumulation: determinacy of the counter version."""

from __future__ import annotations

import pytest

from repro.apps.accumulate import (
    accumulate_counter,
    accumulate_lock,
    accumulate_sequential,
    distinct_float_sums,
    float_sum,
    ill_conditioned_terms,
    list_append,
)


class TestSequentialOracle:
    def test_float_sum(self):
        assert accumulate_sequential([1.0, 2.0, 3.0], float_sum, 0.0) == 6.0

    def test_list_append(self):
        assert accumulate_sequential([1, 2, 3], list_append, []) == [1, 2, 3]

    def test_empty_items(self):
        assert accumulate_sequential([], float_sum, 0.0) == 0.0


class TestIllConditionedWorkload:
    def test_requested_length(self):
        assert len(ill_conditioned_terms(30)) == 30
        assert len(ill_conditioned_terms(1)) == 1

    def test_seeded_reproducibility(self):
        assert ill_conditioned_terms(20, seed=5) == ill_conditioned_terms(20, seed=5)
        assert ill_conditioned_terms(20, seed=5) != ill_conditioned_terms(20, seed=6)

    def test_sum_is_permutation_dependent(self):
        """The workload really is non-associative in practice: many
        distinct sums across permutations."""
        terms = ill_conditioned_terms(30)
        assert distinct_float_sums(terms, permutations=30) > 1


class TestCounterOrdering:
    def test_counter_version_equals_sequential_float(self):
        terms = ill_conditioned_terms(24)
        expected = accumulate_sequential(terms, float_sum, 0.0)
        assert accumulate_counter(terms, float_sum, 0.0) == expected

    def test_counter_version_equals_sequential_list(self):
        items = list(range(20))
        assert accumulate_counter(items, list_append, []) == items

    def test_counter_version_deterministic_with_jitter(self):
        """Even with deliberate scheduling noise, the counter-ordered fold
        is bitwise deterministic across runs — §5.2's claim."""
        terms = ill_conditioned_terms(16)
        expected = accumulate_sequential(terms, float_sum, 0.0)
        results = {
            accumulate_counter(terms, float_sum, 0.0, jitter=0.002) for _ in range(10)
        }
        assert results == {expected}

    def test_list_ordering_with_jitter(self):
        items = list(range(12))
        for _ in range(5):
            assert accumulate_counter(items, list_append, [], jitter=0.002) == items

    def test_compute_hook(self):
        items = [1, 2, 3, 4]
        result = accumulate_counter(
            items, float_sum, 0.0, compute=lambda i, x: x * 10
        )
        assert result == 100.0


class TestLockBaseline:
    def test_lock_version_preserves_multiset(self):
        """The lock version is correct up to ordering: with a commutative
        fold it matches; with list append it is a permutation."""
        items = list(range(16))
        result = accumulate_lock(items, list_append, [], jitter=0.002)
        assert sorted(result) == items

    def test_lock_version_integer_sum_exact(self):
        items = list(range(100))
        assert accumulate_lock(items, lambda a, b: a + b, 0) == sum(items)

    def test_lock_version_can_reorder(self):
        """Over many jittered runs the lock version usually produces at
        least one non-sequential ordering; we assert only the weak form
        (all orderings are permutations) plus report determinism status."""
        items = list(range(10))
        orders = {
            tuple(accumulate_lock(items, list_append, [], jitter=0.003))
            for _ in range(20)
        }
        assert all(sorted(order) == items for order in orders)


class TestCrossValidation:
    @pytest.mark.parametrize("n", [1, 2, 7, 30])
    def test_sizes(self, n):
        terms = ill_conditioned_terms(n)
        expected = accumulate_sequential(terms, float_sum, 0.0)
        assert accumulate_counter(terms, float_sum, 0.0) == expected
