"""E1 + §4 correctness: all Floyd-Warshall variants against Figure 1 and oracles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.floyd_warshall import (
    INF,
    figure1_edge,
    figure1_path,
    shortest_paths_barrier,
    shortest_paths_counter,
    shortest_paths_events,
    shortest_paths_reference,
    shortest_paths_sequential,
    validate_edge_matrix,
)
from repro.apps.graphs import random_dense_graph, random_negative_graph, random_sparse_graph

ALL_PARALLEL = [shortest_paths_barrier, shortest_paths_events, shortest_paths_counter]


class TestFigure1:
    """Experiment E1: the paper's example input/output matrices."""

    def test_edge_matrix_shape_and_contract(self):
        edge = figure1_edge()
        assert edge.shape == (3, 3)
        assert np.all(np.diag(edge) == 0)
        assert edge[1, 2] == INF  # the missing 1 -> 2 edge

    def test_reference_reproduces_figure1(self):
        assert np.array_equal(shortest_paths_reference(figure1_edge()), figure1_path())

    def test_sequential_reproduces_figure1(self):
        assert np.array_equal(shortest_paths_sequential(figure1_edge()), figure1_path())

    @pytest.mark.parametrize("solver", ALL_PARALLEL)
    @pytest.mark.parametrize("num_threads", [1, 2, 3])
    def test_parallel_variants_reproduce_figure1(self, solver, num_threads):
        assert np.array_equal(solver(figure1_edge(), num_threads), figure1_path())

    def test_figure1_has_negative_edge_but_no_negative_cycle(self):
        edge = figure1_edge()
        assert edge.min() == -3.0
        path = shortest_paths_reference(edge)
        assert np.all(np.diag(path) == 0)


class TestValidation:
    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            validate_edge_matrix(np.zeros((2, 3)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            validate_edge_matrix(np.zeros((0, 0)))

    def test_nonzero_diagonal_rejected(self):
        edge = np.ones((2, 2))
        with pytest.raises(ValueError, match="zero"):
            validate_edge_matrix(edge)

    def test_negative_cycle_detected(self):
        edge = np.array([[0.0, 1.0], [-2.0, 0.0]])  # cycle weight -1
        with pytest.raises(ValueError, match="negative"):
            shortest_paths_reference(edge)

    def test_thread_count_validated(self):
        for solver in ALL_PARALLEL:
            with pytest.raises(ValueError):
                solver(figure1_edge(), 0)

    def test_input_not_mutated(self):
        edge = figure1_edge()
        original = edge.copy()
        shortest_paths_counter(edge, 2)
        assert np.array_equal(edge, original)


class TestAgainstOracles:
    @pytest.mark.parametrize("solver", ALL_PARALLEL)
    def test_random_dense(self, solver):
        edge = random_dense_graph(32, seed=7)
        expected = shortest_paths_reference(edge)
        assert np.allclose(solver(edge, 4), expected)

    @pytest.mark.parametrize("solver", ALL_PARALLEL)
    def test_random_sparse_with_unreachable_pairs(self, solver):
        edge = random_sparse_graph(24, p=0.1, seed=11)
        expected = shortest_paths_reference(edge)
        got = solver(edge, 3)
        finite = np.isfinite(expected)
        assert np.array_equal(np.isfinite(got), finite)
        assert np.allclose(got[finite], expected[finite])

    @pytest.mark.parametrize("solver", ALL_PARALLEL)
    def test_negative_edges_no_negative_cycles(self, solver):
        edge = random_negative_graph(20, seed=3)
        assert (edge < 0).any(), "workload should contain negative edges"
        expected = shortest_paths_reference(edge)
        assert np.allclose(solver(edge, 4), expected)

    def test_networkx_cross_oracle(self):
        """Independent oracle: networkx's Floyd-Warshall on a sparse graph."""
        nx = pytest.importorskip("networkx")
        edge = random_sparse_graph(12, p=0.3, seed=5)
        n = edge.shape[0]
        graph = nx.DiGraph()
        graph.add_nodes_from(range(n))
        for i in range(n):
            for j in range(n):
                if i != j and np.isfinite(edge[i, j]):
                    graph.add_edge(i, j, weight=edge[i, j])
        expected = np.full((n, n), INF)
        np.fill_diagonal(expected, 0.0)
        for src, lengths in nx.all_pairs_dijkstra_path_length(graph):
            for dst, dist in lengths.items():
                expected[src, dst] = dist
        assert np.allclose(shortest_paths_counter(edge, 4), expected)

    @pytest.mark.parametrize("num_threads", [1, 2, 5, 8, 32])
    def test_more_threads_than_rows_is_capped(self, num_threads):
        edge = random_dense_graph(8, seed=0)
        expected = shortest_paths_reference(edge)
        for solver in ALL_PARALLEL:
            assert np.allclose(solver(edge, num_threads), expected)

    def test_single_vertex(self):
        edge = np.zeros((1, 1))
        for solver in ALL_PARALLEL:
            assert np.array_equal(solver(edge, 1), np.zeros((1, 1)))


class TestDeterminacyIntegration:
    def test_counter_variant_with_traced_counter_race_free(self):
        """§6 applied to §4.5: the production algorithm, instrumented —
        its counter discipline must pass the checker.  (The path matrix
        itself is partitioned by rows, so we instrument the counter's own
        protocol rather than each matrix cell.)"""
        from repro.determinism import DeterminismChecker

        checker = DeterminismChecker()
        counter = checker.counter("kCount")
        edge = random_dense_graph(16, seed=2)
        expected = shortest_paths_reference(edge)
        got = shortest_paths_counter(edge, 4, counter=counter)
        assert np.allclose(got, expected)
        checker.assert_race_free()

    def test_repeated_runs_bitwise_identical(self):
        edge = random_dense_graph(24, seed=9)
        results = {shortest_paths_counter(edge, 4).tobytes() for _ in range(5)}
        assert len(results) == 1


class TestLevelTiled:
    """§4.5 + monotonicity: snapshot-elided checks must not change results."""

    @pytest.mark.parametrize("num_threads", [1, 2, 4])
    def test_matches_reference(self, num_threads):
        edge = random_dense_graph(32, seed=21)
        expected = shortest_paths_reference(edge)
        got = shortest_paths_counter(edge, num_threads, level_tiled=True)
        assert np.allclose(got, expected)

    def test_negative_edges(self):
        edge = random_negative_graph(20, seed=9)
        expected = shortest_paths_reference(edge)
        assert np.allclose(shortest_paths_counter(edge, 4, level_tiled=True), expected)

    def test_elides_counter_checks(self):
        """The whole point: strictly fewer check calls than iterations
        whenever the snapshot covers future levels."""
        from repro.core import MonotonicCounter

        calls = {}
        for level_tiled in (False, True):
            counter = MonotonicCounter(stats=True)
            shortest_paths_counter(
                random_dense_graph(24, seed=5),
                2,
                counter=counter,
                level_tiled=level_tiled,
            )
            calls[level_tiled] = counter.stats.checks
        assert calls[True] < calls[False]

    def test_figure1(self):
        got = shortest_paths_counter(figure1_edge(), 3, level_tiled=True)
        assert np.allclose(got, figure1_path())
