"""2-D red-black Gauss-Seidel: the §5.1 pattern in two dimensions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.gauss_seidel import (
    gauss_seidel_barrier,
    gauss_seidel_ragged,
    gauss_seidel_sequential,
    laplace_residual,
)


def random_grid(shape=(20, 16), seed=0) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0.0, 100.0, shape)


class TestOracle:
    def test_zero_sweeps_identity(self):
        grid = random_grid()
        assert np.array_equal(gauss_seidel_sequential(grid, 0), grid)

    def test_boundary_rows_and_columns_fixed(self):
        grid = random_grid()
        out = gauss_seidel_sequential(grid, 25)
        assert np.array_equal(out[0, :], grid[0, :])
        assert np.array_equal(out[-1, :], grid[-1, :])
        assert np.array_equal(out[:, 0], grid[:, 0])
        assert np.array_equal(out[:, -1], grid[:, -1])

    def test_converges_to_laplace_solution(self):
        grid = np.zeros((16, 16))
        grid[:, -1] = 100.0
        out = gauss_seidel_sequential(grid, 2000)
        assert laplace_residual(out) < 1e-6

    def test_residual_decreases(self):
        grid = random_grid(seed=3)
        r0 = laplace_residual(gauss_seidel_sequential(grid, 1))
        r1 = laplace_residual(gauss_seidel_sequential(grid, 50))
        assert r1 < r0

    def test_constant_grid_is_fixed_point(self):
        grid = np.full((10, 10), 7.0)
        assert np.array_equal(gauss_seidel_sequential(grid, 20), grid)

    def test_validation(self):
        with pytest.raises(ValueError):
            gauss_seidel_sequential(np.zeros((2, 5)), 1)
        with pytest.raises(ValueError):
            gauss_seidel_sequential(np.zeros(5), 1)
        with pytest.raises(ValueError):
            gauss_seidel_sequential(np.zeros((5, 5)), -1)


@pytest.mark.parametrize("impl", [gauss_seidel_barrier, gauss_seidel_ragged])
class TestParallelVariants:
    @pytest.mark.parametrize("num_threads", [1, 2, 3, 7, 18])
    def test_bitwise_equal_to_oracle(self, impl, num_threads):
        grid = random_grid(seed=1)
        expected = gauss_seidel_sequential(grid, 30)
        got = impl(grid, 30, num_threads=num_threads)
        assert np.array_equal(got, expected)

    def test_per_row_threads(self, impl):
        grid = random_grid((12, 10), seed=2)
        expected = gauss_seidel_sequential(grid, 15)
        assert np.array_equal(impl(grid, 15, num_threads=None), expected)

    def test_zero_sweeps(self, impl):
        grid = random_grid((8, 8))
        assert np.array_equal(impl(grid, 0, num_threads=2), grid)

    def test_minimum_grid(self, impl):
        grid = random_grid((3, 3), seed=4)
        expected = gauss_seidel_sequential(grid, 10)
        assert np.array_equal(impl(grid, 10), expected)

    def test_deterministic_across_runs(self, impl):
        grid = random_grid(seed=5)
        results = {impl(grid, 20, num_threads=4).tobytes() for _ in range(5)}
        assert len(results) == 1

    def test_thread_validation(self, impl):
        with pytest.raises(ValueError):
            impl(random_grid(), 5, num_threads=0)

    def test_input_not_mutated(self, impl):
        grid = random_grid(seed=6)
        original = grid.copy()
        impl(grid, 10, num_threads=3)
        assert np.array_equal(grid, original)


class TestNonSquareGrids:
    @pytest.mark.parametrize("shape", [(3, 30), (30, 3), (17, 5)])
    def test_odd_shapes(self, shape):
        grid = random_grid(shape, seed=7)
        expected = gauss_seidel_sequential(grid, 12)
        assert np.array_equal(gauss_seidel_ragged(grid, 12, num_threads=4), expected)
        assert np.array_equal(gauss_seidel_barrier(grid, 12, num_threads=4), expected)
