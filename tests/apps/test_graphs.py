"""Tests for the graph workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.floyd_warshall import INF, shortest_paths_reference, validate_edge_matrix
from repro.apps.graphs import random_dense_graph, random_negative_graph, random_sparse_graph


class TestDenseGraph:
    def test_shape_and_diagonal(self):
        edge = random_dense_graph(10, seed=0)
        assert edge.shape == (10, 10)
        assert np.all(np.diag(edge) == 0)

    def test_weights_in_range(self):
        edge = random_dense_graph(10, seed=0, low=2.0, high=3.0)
        off_diag = edge[~np.eye(10, dtype=bool)]
        assert np.all((off_diag >= 2.0) & (off_diag <= 3.0))

    def test_seeded_reproducibility(self):
        assert np.array_equal(random_dense_graph(8, seed=5), random_dense_graph(8, seed=5))
        assert not np.array_equal(random_dense_graph(8, seed=5), random_dense_graph(8, seed=6))

    def test_validation(self):
        with pytest.raises(ValueError):
            random_dense_graph(0)

    def test_accepted_by_solver(self):
        shortest_paths_reference(random_dense_graph(6, seed=1))


class TestSparseGraph:
    def test_absent_edges_are_inf(self):
        edge = random_sparse_graph(20, p=0.1, seed=0)
        assert np.isinf(edge).any()
        assert np.all(np.diag(edge) == 0)

    def test_density_tracks_p(self):
        n = 40
        dense = random_sparse_graph(n, p=0.8, seed=1)
        sparse = random_sparse_graph(n, p=0.05, seed=1)
        count = lambda e: np.isfinite(e).sum() - n  # noqa: E731
        assert count(dense) > count(sparse)

    def test_p_bounds_validated(self):
        with pytest.raises(ValueError):
            random_sparse_graph(5, p=1.5)
        with pytest.raises(ValueError):
            random_sparse_graph(5, p=-0.1)
        with pytest.raises(ValueError):
            random_sparse_graph(0)

    def test_p_zero_is_edgeless(self):
        edge = random_sparse_graph(6, p=0.0, seed=0)
        assert np.isfinite(edge).sum() == 6  # only the diagonal

    def test_solver_handles_unreachable(self):
        edge = random_sparse_graph(10, p=0.1, seed=2)
        path = shortest_paths_reference(edge)
        assert np.all(np.diag(path) == 0)


class TestNegativeGraph:
    def test_contains_negative_edges(self):
        edge = random_negative_graph(15, seed=0, negative_fraction=0.3)
        assert (edge < 0).any()

    def test_no_negative_cycles_by_construction(self):
        """The potential-reweighting construction guarantees it for any
        seed; spot-check several via Floyd-Warshall's own detector."""
        for seed in range(5):
            edge = random_negative_graph(12, seed=seed, negative_fraction=0.5)
            path = shortest_paths_reference(edge)  # raises on negative cycle
            assert np.all(np.diag(path) == 0)

    def test_zero_diagonal(self):
        edge = random_negative_graph(8, seed=3)
        validate_edge_matrix(edge)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_negative_graph(0)


class TestINF:
    def test_inf_is_numpy_inf(self):
        assert INF == np.inf
        assert INF + 5 == INF  # additive absorbing, as Floyd-Warshall needs
