"""§5.1 heat simulation: barrier and ragged versions against the oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.heat import default_update, heat_barrier, heat_ragged, heat_sequential


def initial_state(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0.0, 100.0, n)


class TestOracle:
    def test_zero_steps_is_identity(self):
        init = initial_state(10)
        assert np.array_equal(heat_sequential(init, 0), init)

    def test_boundaries_constant(self):
        init = initial_state(12)
        final = heat_sequential(init, 50)
        assert final[0] == init[0]
        assert final[-1] == init[-1]

    def test_diffusion_converges_toward_linear_profile(self):
        init = np.zeros(11)
        init[0], init[-1] = 0.0, 100.0
        final = heat_sequential(init, 5000)
        assert np.allclose(final, np.linspace(0.0, 100.0, 11), atol=0.5)

    def test_update_rule_conserves_constant_field(self):
        constant = np.full(9, 42.0)
        assert np.allclose(heat_sequential(constant, 100), constant)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            heat_sequential(np.zeros(2), 1)  # too few cells
        with pytest.raises(ValueError):
            heat_sequential(np.zeros((3, 3)), 1)  # not 1-D
        with pytest.raises(ValueError):
            heat_sequential(np.zeros(5), -1)


@pytest.mark.parametrize("impl", [heat_barrier, heat_ragged])
class TestParallelVariants:
    def test_matches_oracle_default_threads(self, impl):
        init = initial_state(20, seed=1)
        assert np.allclose(impl(init, 30), heat_sequential(init, 30))

    @pytest.mark.parametrize("num_threads", [1, 2, 3, 7, 18])
    def test_matches_oracle_blocked(self, impl, num_threads):
        init = initial_state(20, seed=2)
        expected = heat_sequential(init, 25)
        assert np.allclose(impl(init, 25, num_threads=num_threads), expected)

    def test_zero_steps(self, impl):
        init = initial_state(8)
        assert np.array_equal(impl(init, 0, num_threads=2), init)

    def test_minimum_rod(self, impl):
        init = initial_state(3)  # one interior cell
        assert np.allclose(impl(init, 10), heat_sequential(init, 10))

    def test_custom_update_rule(self, impl):
        def averaging(left, centre, right):
            return (left + centre + right) / 3.0

        init = initial_state(12, seed=3)
        expected = heat_sequential(init, 15, update=averaging)
        got = impl(init, 15, num_threads=3, update=averaging)
        assert np.allclose(got, expected)

    def test_thread_count_validation(self, impl):
        with pytest.raises(ValueError):
            impl(initial_state(8), 5, num_threads=0)

    def test_deterministic_across_runs(self, impl):
        init = initial_state(16, seed=4)
        results = {impl(init, 20, num_threads=4).tobytes() for _ in range(5)}
        assert len(results) == 1


class TestRaggedProtocolObservables:
    def test_counters_reach_two_ticks_per_step(self):
        """After the run, every participant's counter reads 2 * steps
        (one read tick + one write tick per step, §5.1)."""
        from repro.patterns.ragged import RaggedBarrier
        from repro.structured import multithreaded_for

        n, steps = 6, 10
        rb = RaggedBarrier(n + 2)
        rb.preload(0, 2 * steps)
        rb.preload(n + 1, 2 * steps)

        def worker(index):
            p = index + 1
            for t in range(1, steps + 1):
                rb.wait_for(p - 1, 2 * t - 2)
                rb.wait_for(p + 1, 2 * t - 2)
                rb.advance(p)
                rb.wait_for(p - 1, 2 * t - 1)
                rb.wait_for(p + 1, 2 * t - 1)
                rb.advance(p)

        multithreaded_for(worker, range(n))
        assert all(rb.progress(p) == 2 * steps for p in range(1, n + 1))
