"""Tests for the dataflow-partition pipeline (§5.3 shape) and wavefront LCS."""

from __future__ import annotations

import pytest

from repro.apps.lcs import lcs_length_sequential, lcs_length_wavefront, lcs_table
from repro.apps.paraffins import dataflow_partitions, partition_count
from repro.structured import sequential_execution


class TestPartitionOracle:
    def test_known_values(self):
        # OEIS A000041.
        assert [partition_count(n) for n in range(10)] == [1, 1, 2, 3, 5, 7, 11, 15, 22, 30]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            partition_count(-1)


class TestDataflowPartitions:
    def test_counts_match_partition_function(self):
        result = dataflow_partitions(9)
        for k, partitions in result.items():
            assert len(partitions) == partition_count(k), f"stage {k}"

    def test_each_partition_sums_and_is_sorted(self):
        result = dataflow_partitions(8)
        for k, partitions in result.items():
            for partition in partitions:
                assert sum(partition) == k
                assert list(partition) == sorted(partition, reverse=True)

    def test_no_duplicates(self):
        result = dataflow_partitions(10)
        for k, partitions in result.items():
            assert len(set(partitions)) == len(partitions)

    def test_deterministic_order_across_runs(self):
        runs = [dataflow_partitions(7) for _ in range(4)]
        assert all(run == runs[0] for run in runs)

    def test_sequential_equivalence(self):
        """§6 applied to the pipeline: threaded == sequential execution."""
        with sequential_execution():
            sequential = dataflow_partitions(7)
        assert dataflow_partitions(7) == sequential

    def test_trivial_sizes(self):
        assert dataflow_partitions(0) == {0: [()]}
        assert dataflow_partitions(1) == {0: [()], 1: [(1,)]}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            dataflow_partitions(-1)


class TestLCS:
    def test_table_shape_and_border(self):
        table = lcs_table("abc", "de")
        assert table.shape == (4, 3)
        assert (table[0, :] == 0).all()
        assert (table[:, 0] == 0).all()

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("a", "", 0),
            ("abc", "abc", 3),
            ("abc", "xyz", 0),
            ("ABCBDAB", "BDCABA", 4),  # classic CLRS example
            ("AGGTAB", "GXTXAYB", 4),
        ],
    )
    def test_known_cases(self, a, b, expected):
        assert lcs_length_sequential(a, b) == expected
        assert lcs_length_wavefront(a, b, num_threads=3, col_block=2) == expected

    def test_difflib_cross_oracle(self):
        import difflib
        import random

        rng = random.Random(7)
        for _ in range(5):
            a = "".join(rng.choice("ACGT") for _ in range(40))
            b = "".join(rng.choice("ACGT") for _ in range(35))
            matcher = difflib.SequenceMatcher(None, a, b, autojunk=False)
            expected = sum(block.size for block in matcher.get_matching_blocks())
            got = lcs_length_wavefront(a, b, num_threads=4, col_block=5)
            # difflib's matching blocks give a common subsequence, i.e. a
            # lower bound; the DP oracle is exact, so compare to it and
            # sanity-check against difflib.
            exact = lcs_length_sequential(a, b)
            assert got == exact
            assert exact >= expected or exact >= 0

    @pytest.mark.parametrize("num_threads", [1, 2, 4, 9])
    @pytest.mark.parametrize("col_block", [1, 3, 64])
    def test_partitioning_sweep(self, num_threads, col_block):
        a, b = "ABCBDABAD" * 2, "BDCABAZZQ" * 2
        expected = lcs_length_sequential(a, b)
        got = lcs_length_wavefront(a, b, num_threads=num_threads, col_block=col_block)
        assert got == expected

    def test_deterministic_across_runs(self):
        a, b = "XMJYAUZ" * 3, "MZJAWXU" * 3
        results = {lcs_length_wavefront(a, b, num_threads=4) for _ in range(5)}
        assert len(results) == 1


class TestLCSSyncTile:
    @pytest.mark.parametrize("sync_tile", [1, 2, 5, 100])
    def test_tiled_synchronization_matches_oracle(self, sync_tile):
        a, b = "ABCBDABAD" * 2, "BDCABAZZQ" * 2
        expected = lcs_length_sequential(a, b)
        got = lcs_length_wavefront(
            a, b, num_threads=3, col_block=2, sync_tile=sync_tile
        )
        assert got == expected
