"""The counter-backed sliding-window rate limiter (local backend).

The property everything else leans on: ``admitted - retired`` is an
over-estimate of the true in-window count (``retired`` is an admitted
sample from at least one window ago), so admit-iff-under-limit can never
over-admit — stale marks err toward rejecting.  Schedule-exhaustive
coverage of the same invariants lives in
``tests/testkit/test_ratelimit_interleave.py``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.apps.ratelimit import LocalBackend, RateLimiter
from tests.helpers import join_all, spawn, wait_until


def fixed_clock(value: float = 0.0):
    """A settable clock: ``clock.now = t`` moves time."""

    def clock() -> float:
        return clock.now

    clock.now = value
    return clock


class TestConstruction:
    @pytest.mark.parametrize("limit", [0, -1, True, 1.5, "3"])
    def test_limit_must_be_positive_int(self, limit):
        with pytest.raises(ValueError):
            RateLimiter(limit, 1.0)

    @pytest.mark.parametrize("window", [0, -0.5])
    def test_window_must_be_positive(self, window):
        with pytest.raises(ValueError):
            RateLimiter(5, window)

    def test_max_keys_must_be_positive(self):
        with pytest.raises(ValueError):
            RateLimiter(5, 1.0, max_keys=0)

    def test_roll_interval_defaults_to_an_eighth_of_the_window(self):
        assert RateLimiter(5, 8.0).roll_interval == pytest.approx(1.0)

    def test_repr_names_the_quota(self):
        text = repr(RateLimiter(5, 2.0, name="api"))
        assert "api" in text and "5" in text


class TestAdmission:
    def test_burst_admits_exactly_the_limit(self):
        clock = fixed_clock()
        limiter = RateLimiter(5, 1.0, clock=clock)
        grants = [limiter.try_acquire("u") for _ in range(12)]
        assert sum(grants) == 5
        assert grants[:5] == [True] * 5  # FIFO within the burst
        assert limiter.in_window("u") == 5

    def test_keys_are_independent(self):
        clock = fixed_clock()
        limiter = RateLimiter(2, 1.0, clock=clock)
        assert [limiter.try_acquire("a") for _ in range(3)] == [True, True, False]
        assert [limiter.try_acquire("b") for _ in range(3)] == [True, True, False]

    def test_unknown_key_has_empty_window(self):
        assert RateLimiter(5, 1.0).in_window("ghost") == 0

    def test_stale_marks_reject_rather_than_over_admit(self):
        # Time passes but nothing rolls: the estimate stays pinned at the
        # limit and admission keeps refusing — the conservative failure
        # mode the stability argument promises.
        clock = fixed_clock()
        limiter = RateLimiter(3, 1.0, roll_interval=1000.0, clock=clock)
        for _ in range(3):
            assert limiter.try_acquire("u")
        clock.now = 50.0  # far past the window, but no roll ran
        assert not limiter.try_acquire("u")
        assert limiter.in_window("u") == 3

    def test_roll_frees_quota_after_the_window(self):
        clock = fixed_clock()
        limiter = RateLimiter(2, 1.0, roll_interval=1000.0, clock=clock)
        assert limiter.try_acquire("u") and limiter.try_acquire("u")
        assert not limiter.try_acquire("u")
        clock.now = 0.5
        limiter.roll("u")  # mid-window: admissions still young, nothing retires
        assert not limiter.try_acquire("u")
        clock.now = 1.6
        limiter.roll("u")  # the t=0 sample is now a window old
        assert limiter.try_acquire("u")

    def test_opportunistic_roll_on_admit(self):
        # No explicit roll call: the decision path itself rolls once
        # roll_interval has elapsed.
        clock = fixed_clock()
        limiter = RateLimiter(2, 1.0, roll_interval=0.25, clock=clock)
        assert limiter.try_acquire("u") and limiter.try_acquire("u")
        clock.now = 2.0
        assert limiter.try_acquire("u")

    def test_marks_stay_bounded_across_many_rolls(self):
        clock = fixed_clock()
        limiter = RateLimiter(1000, 1.0, roll_interval=1000.0, clock=clock)
        for i in range(200):
            clock.now = i * 0.1
            limiter.try_acquire("u")
            limiter.roll("u")
        assert limiter.snapshot()["u"]["marks"] < 20

    def test_snapshot_shape_and_pin_hygiene(self):
        limiter = RateLimiter(2, 60.0)
        limiter.try_acquire("u")
        for _ in range(3):
            limiter.try_acquire("u")
        snap = limiter.snapshot()["u"]
        assert snap["admitted"] == 2
        assert snap["retired"] == 0
        assert snap["in_window"] == 2
        assert snap["pins"] == 0  # every touch's pin was paid back


class TestBlockingAcquire:
    def test_timeout_returns_false(self):
        limiter = RateLimiter(1, 60.0)
        assert limiter.acquire("u")
        t0 = time.monotonic()
        assert limiter.acquire("u", timeout=0.1) is False
        assert time.monotonic() - t0 < 5.0
        assert limiter.snapshot()["u"]["pins"] == 0

    def test_zero_budget_timeout_never_parks(self):
        limiter = RateLimiter(1, 60.0)
        assert limiter.acquire("u")
        assert limiter.acquire("u", timeout=0.0) is False

    def test_blocked_acquire_wakes_on_roll(self):
        limiter = RateLimiter(1, 0.25, roll_interval=1000.0)
        assert limiter.try_acquire("u")
        got = []
        waiter = spawn(lambda: got.append(limiter.acquire("u", timeout=10.0)))
        wait_until(lambda: limiter.snapshot()["u"]["pins"] > 0)
        time.sleep(0.3)  # let the admission age past the window
        limiter.roll("u")
        join_all([waiter])
        assert got == [True]

    def test_roller_context_frees_quota_continuously(self):
        limiter = RateLimiter(2, 0.1, roll_interval=0.02)
        admitted = 0
        with limiter:
            deadline = time.monotonic() + 0.6
            while time.monotonic() < deadline:
                if limiter.acquire("u", timeout=0.5):
                    admitted += 1
        # Strictly more than one window's worth proves rolls recycled
        # quota; the exact count is schedule noise.
        assert admitted > 2
        assert limiter.in_window("u") <= 2

    def test_start_roller_twice_is_an_error(self):
        limiter = RateLimiter(1, 1.0)
        with limiter:
            with pytest.raises(RuntimeError):
                limiter.start_roller()


class TestLru:
    def test_eviction_is_oldest_first_and_counted(self):
        limiter = RateLimiter(2, 1.0, max_keys=2)
        for key in "abcd":
            limiter.try_acquire(key)
        assert limiter.evictions == 2
        assert limiter.keys() == ["c", "d"]

    def test_touch_refreshes_recency(self):
        limiter = RateLimiter(2, 1.0, max_keys=2)
        limiter.try_acquire("a")
        limiter.try_acquire("b")
        limiter.try_acquire("a")  # "b" is now the LRU victim
        limiter.try_acquire("c")
        assert limiter.keys() == ["a", "c"]

    def test_eviction_skips_entries_with_parked_waiters(self):
        limiter = RateLimiter(1, 60.0, max_keys=2, roll_interval=1000.0)
        assert limiter.try_acquire("a")
        got = []
        waiter = spawn(lambda: got.append(limiter.acquire("a", timeout=20.0)))
        wait_until(
            lambda: bool(limiter._entries["a"].retired.snapshot().nodes)
        )
        limiter.try_acquire("b")
        limiter.try_acquire("c")  # over budget: sweep must skip busy "a"
        assert "a" in limiter.keys()
        # Free the waiter by force-rolling far in the future.
        limiter.roll("a", now=time.monotonic() + 120.0)
        join_all([waiter])
        assert got == [True]

    def test_close_releases_everything(self):
        limiter = RateLimiter(2, 1.0)
        limiter.try_acquire("a")
        limiter.try_acquire("b")
        limiter.close()
        assert limiter.keys() == []


class TestBackendSurface:
    def test_local_backend_rolls(self):
        assert LocalBackend.rolls is True

    def test_exact_admitted_reads_under_batching(self):
        # The local admitted counter is sharded+batched; admitted_value
        # must drain pending so decisions see their own admits.
        backend = LocalBackend()
        counter = backend.admitted("t:x:admitted")
        backend.bump(counter, None)
        backend.bump(counter, None)
        assert backend.admitted_value(counter) == 2
