"""The benchmark substrate's shape guarantees (E3/E4/E5/E6 preconditions).

These tests pin the *qualitative* results the paper's evaluation asserts;
the benchmark harness then reports the quantitative tables.
"""

from __future__ import annotations

import pytest

from repro.apps.sim_models import (
    sim_broadcast,
    sim_floyd_warshall,
    sim_heat,
    sim_ordered_accumulate,
)


class TestFloydWarshallModel:
    def test_balanced_load_all_variants_equal(self):
        makespans = {
            variant: sim_floyd_warshall(32, 4, variant, imbalance=0.0).makespan
            for variant in ("barrier", "events", "counter")
        }
        assert makespans["barrier"] == makespans["events"] == makespans["counter"]

    def test_counter_equals_events_always(self):
        """§4.5: the counter version has the same synchronization structure
        as the event-array version — identical virtual-time behaviour."""
        for imbalance in (0.0, 0.3, 0.7):
            events = sim_floyd_warshall(48, 6, "events", imbalance=imbalance, seed=5)
            counter = sim_floyd_warshall(48, 6, "counter", imbalance=imbalance, seed=5)
            assert events.makespan == counter.makespan

    def test_ragged_beats_barrier_under_imbalance(self):
        barrier = sim_floyd_warshall(64, 8, "barrier", imbalance=0.6, seed=1)
        counter = sim_floyd_warshall(64, 8, "counter", imbalance=0.6, seed=1)
        assert counter.makespan < barrier.makespan

    def test_gap_grows_with_imbalance(self):
        gaps = []
        for imbalance in (0.2, 0.5, 0.8):
            barrier = sim_floyd_warshall(64, 8, "barrier", imbalance=imbalance, seed=2)
            counter = sim_floyd_warshall(64, 8, "counter", imbalance=imbalance, seed=2)
            gaps.append(barrier.makespan - counter.makespan)
        assert gaps[0] < gaps[1] < gaps[2]

    def test_counter_wait_time_not_higher_than_barrier(self):
        barrier = sim_floyd_warshall(48, 6, "barrier", imbalance=0.5, seed=3)
        counter = sim_floyd_warshall(48, 6, "counter", imbalance=0.5, seed=3)
        assert counter.total_wait <= barrier.total_wait

    def test_single_thread_no_synchronization_wait(self):
        result = sim_floyd_warshall(16, 1, "counter")
        assert result.total_wait == 0.0

    def test_variant_validation(self):
        with pytest.raises(ValueError):
            sim_floyd_warshall(8, 2, "mutex")

    def test_identical_workload_across_variants(self):
        """Same seed -> same total compute for every variant (the costs
        are pre-drawn; only coordination differs)."""
        totals = {
            variant: sim_floyd_warshall(32, 4, variant, imbalance=0.5, seed=9).total_compute
            for variant in ("barrier", "events", "counter")
        }
        assert len(set(totals.values())) == 1


class TestHeatModel:
    def test_balanced_equal(self):
        barrier = sim_heat(8, 50, "barrier", imbalance=0.0)
        ragged = sim_heat(8, 50, "ragged", imbalance=0.0)
        assert barrier.makespan == ragged.makespan

    def test_ragged_beats_barrier_under_imbalance(self):
        barrier = sim_heat(16, 100, "barrier", imbalance=0.7, seed=4)
        ragged = sim_heat(16, 100, "ragged", imbalance=0.7, seed=4)
        assert ragged.makespan < barrier.makespan

    def test_barrier_makespan_is_sum_of_maxima(self):
        """With a full barrier every step costs the per-step maximum; the
        model must reproduce that analytic form exactly."""
        import random

        seed, threads, steps = 11, 4, 20
        result = sim_heat(threads, steps, "barrier", imbalance=0.5, seed=seed, read_cost=0.0)
        rng = random.Random(seed)
        costs = [[1.0 * rng.uniform(0.5, 1.5) for _ in range(steps)] for _ in range(threads)]
        expected = sum(max(costs[p][t] for p in range(threads)) for t in range(steps))
        assert result.makespan == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            sim_heat(4, 10, "loose")
        with pytest.raises(ValueError):
            sim_heat(0, 10, "ragged")


class TestBroadcastModel:
    def test_block_size_sweet_spot(self):
        """Per-op overhead: block 1 is slower than a moderate block."""
        fine = sim_broadcast(1024, 4, writer_block=1, reader_block=1, op_cost=0.5)
        mid = sim_broadcast(1024, 4, writer_block=32, reader_block=32, op_cost=0.5)
        assert mid.makespan < fine.makespan

    def test_huge_block_loses_pipelining(self):
        mid = sim_broadcast(1024, 4, writer_block=32, reader_block=32, op_cost=0.5)
        coarse = sim_broadcast(1024, 4, writer_block=1024, reader_block=1024, op_cost=0.5)
        assert mid.makespan < coarse.makespan

    def test_readers_with_different_granularities(self):
        result = sim_broadcast(256, 3, writer_block=8, reader_block=4)
        assert len(result.tasks) == 4  # writer + 3 readers

    def test_zero_items(self):
        assert sim_broadcast(0, 2).makespan == 0.0

    def test_free_sync_makes_block_size_irrelevant_for_writer(self):
        a = sim_broadcast(512, 1, writer_block=1, reader_block=1, op_cost=0.0)
        b = sim_broadcast(512, 1, writer_block=64, reader_block=1, op_cost=0.0)
        assert a.tasks["writer"].compute_time == b.tasks["writer"].compute_time

    def test_validation(self):
        with pytest.raises(ValueError):
            sim_broadcast(10, 0)
        with pytest.raises(ValueError):
            sim_broadcast(10, 1, writer_block=0)


class TestOrderedAccumulateModel:
    def test_counter_trades_concurrency_for_order(self):
        """§5.2's cost: the ordered version can never beat the lock
        version in makespan, and generally loses under imbalance."""
        lock = sim_ordered_accumulate(16, "lock", imbalance=0.8, seed=6)
        counter = sim_ordered_accumulate(16, "counter", imbalance=0.8, seed=6)
        assert counter.makespan >= lock.makespan

    def test_balanced_load_nearly_equal(self):
        lock = sim_ordered_accumulate(8, "lock", imbalance=0.0)
        counter = sim_ordered_accumulate(8, "counter", imbalance=0.0)
        assert counter.makespan == lock.makespan

    def test_lock_order_varies_with_seed_counter_does_not(self):
        """The observable §6 point at the model level: lock completion
        order depends on the random policy; counter order never does."""
        def finish_order(variant, seed):
            result = sim_ordered_accumulate(
                12, variant, imbalance=0.9, seed=seed, policy="random"
            )
            return tuple(
                name for name, _ in sorted(
                    result.tasks.items(), key=lambda kv: kv[1].finish_time
                )
            )

        counter_orders = {finish_order("counter", seed) for seed in range(6)}
        assert len(counter_orders) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            sim_ordered_accumulate(4, "futex")
        with pytest.raises(ValueError):
            sim_ordered_accumulate(0, "lock")
