"""Smoke tests for the counter-ops bench harness (quick sizes)."""

from __future__ import annotations

import json

import pytest

from repro.bench.counter_ops import FACTORIES, main, run_counter_ops


@pytest.fixture(scope="module")
def doc():
    """One shared quick run (the harness itself is what's under test)."""
    return run_counter_ops(quick=True)


class TestRunCounterOps:
    def test_quick_run_produces_all_series(self, doc):
        assert doc["bench"] == "counter_ops"
        assert doc["quick"] is True
        assert set(doc["series"]) == {
            "immediate_check",
            "uncontended_increment",
            "contended_increment",
            "fan_in_wakeup",
        }
        for series in ("immediate_check", "uncontended_increment"):
            assert set(doc["series"][series]) == set(FACTORIES)
            for entry in doc["series"][series].values():
                assert entry["ops_per_sec"] > 0
                assert entry["mean_s"] > 0
        assert doc["derived"]["immediate_check_fast_path_speedup"] > 0

    def test_fan_in_covers_blocking_implementations(self, doc):
        assert set(doc["series"]["fan_in_wakeup"]) == {
            "linked",
            "heap",
            "broadcast",
            "sharded",
        }


class TestMain:
    def test_main_writes_json_log(self, tmp_path, capsys):
        out = tmp_path / "BENCH_counter_ops.json"
        assert main(["--quick", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == 1
        assert "immediate_check" in doc["series"]
        printed = capsys.readouterr().out
        assert "fast path vs locked seed path" in printed
