"""Smoke tests for the counter-ops bench harness (quick sizes)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.counter_ops import (
    FACTORIES,
    FAN_IN,
    GATED_SERIES,
    HANDOFF,
    append_history,
    compare,
    main,
    run_counter_ops,
)


@pytest.fixture(scope="module")
def doc():
    """One shared quick run (the harness itself is what's under test)."""
    return run_counter_ops(quick=True)


class TestRunCounterOps:
    def test_quick_run_produces_all_series(self, doc):
        assert doc["bench"] == "counter_ops"
        assert doc["quick"] is True
        assert set(doc["series"]) == {
            "immediate_check",
            "uncontended_increment",
            "contended_increment",
            "fan_in_wakeup",
            "handoff_pingpong",
            "multiwait_join",
            "obs_overhead",
        }
        for series in ("immediate_check", "uncontended_increment"):
            assert set(doc["series"][series]) == set(FACTORIES)
            for entry in doc["series"][series].values():
                assert entry["ops_per_sec"] > 0
                assert entry["mean_s"] > 0
        assert doc["derived"]["immediate_check_fast_path_speedup"] > 0
        assert doc["derived"]["handoff_spin_vs_default"] > 0
        assert doc["derived"]["multiwait_subscription_vs_sequential"] > 0

    def test_fan_in_covers_blocking_implementations(self, doc):
        assert set(doc["series"]["fan_in_wakeup"]) == set(FAN_IN)
        assert "linked_spin" in FAN_IN  # default vs forced-spin is comparable

    def test_handoff_compares_wait_policies(self, doc):
        assert set(doc["series"]["handoff_pingpong"]) == set(HANDOFF)

    def test_multiwait_compares_strategies(self, doc):
        assert set(doc["series"]["multiwait_join"]) == {"subscription", "sequential"}
        for entry in doc["series"]["multiwait_join"].values():
            assert entry["ops_per_sec"] > 0

    def test_obs_overhead_measures_both_states(self, doc):
        assert set(doc["series"]["obs_overhead"]) == {
            "immediate_disabled",
            "immediate_enabled",
            "handoff_disabled",
            "handoff_enabled",
        }
        for entry in doc["series"]["obs_overhead"].values():
            assert entry["ops_per_sec"] > 0
        assert doc["derived"]["obs_immediate_enabled_vs_disabled"] > 0
        assert doc["derived"]["obs_handoff_enabled_vs_disabled"] > 0

    def test_obs_overhead_run_leaves_observability_off(self, doc):
        import repro.obs as obs

        assert obs.current() is None


class TestHistory:
    def test_append_history_accumulates_jsonl(self, doc, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(doc, str(path), label="first")
        append_history(doc, str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["label"] == "first"
        assert "label" not in second
        for entry in (first, second):
            assert "sha" in entry and "dirty" in entry
            assert entry["series"]["fan_in_wakeup"]["linked"]["ops_per_sec"] > 0


class TestCompare:
    def test_identical_docs_pass(self, doc):
        assert compare(doc, copy.deepcopy(doc)) == []

    def test_regression_detected(self, doc):
        baseline = copy.deepcopy(doc)
        entry = baseline["series"]["fan_in_wakeup"]["linked"]
        entry["ops_per_sec"] = entry["ops_per_sec"] * 10
        failures = compare(doc, baseline, tolerance=0.3)
        assert len(failures) == 1
        assert "fan_in_wakeup/linked" in failures[0]

    def test_improvement_and_small_noise_pass(self, doc):
        baseline = copy.deepcopy(doc)
        for series in ("fan_in_wakeup", "immediate_check"):
            for entry in baseline["series"][series].values():
                entry["ops_per_sec"] *= 1.2  # new run is ~17% slower: within 30%
        assert compare(doc, baseline, tolerance=0.3) == []

    def test_mismatched_configs_refused(self, doc):
        baseline = copy.deepcopy(doc)
        baseline["config"] = dict(baseline["config"], fan_in_waiters=9999)
        with pytest.raises(ValueError, match="not comparable"):
            compare(doc, baseline)

    def test_bad_tolerance_rejected(self, doc):
        with pytest.raises(ValueError, match="tolerance"):
            compare(doc, copy.deepcopy(doc), tolerance=1.5)


class TestMain:
    def test_main_writes_json_log_and_history(self, tmp_path, capsys):
        out = tmp_path / "BENCH_counter_ops.json"
        history = tmp_path / "history.jsonl"
        assert (
            main(
                [
                    "--quick",
                    "--out",
                    str(out),
                    "--history",
                    str(history),
                    "--timestamp",
                    "2026-01-01T00:00:00+0000",
                ]
            )
            == 0
        )
        doc = json.loads(out.read_text())
        assert doc["schema"] == 2
        assert doc["timestamp"] == "2026-01-01T00:00:00+0000"
        assert "immediate_check" in doc["series"]
        entry = json.loads(history.read_text().strip())
        assert entry["timestamp"] == "2026-01-01T00:00:00+0000"
        printed = capsys.readouterr().out
        assert "fast path vs locked seed path" in printed

    def test_main_compare_gate(self, tmp_path, capsys):
        out = tmp_path / "out.json"
        assert main(["--quick", "--out", str(out), "--no-history"]) == 0
        capsys.readouterr()
        # A deflated baseline passes deterministically; an inflated one
        # fails deterministically (quick-run noise cannot span 1000x).
        # Every gated series is doctored — one left at its real (noisy)
        # value could flake the deflated half on a loaded runner.
        for factor, name, expected in ((0.001, "deflated", 0), (1000, "inflated", 1)):
            doctored = json.loads(out.read_text())
            for series in GATED_SERIES:
                for entry in doctored["series"][series].values():
                    entry["ops_per_sec"] *= factor
            path = tmp_path / f"{name}.json"
            path.write_text(json.dumps(doctored))
            assert (
                main(
                    [
                        "--quick",
                        "--out",
                        str(out),
                        "--no-history",
                        "--compare-to",
                        str(path),
                    ]
                )
                == expected
            )
            captured = capsys.readouterr()
            if expected:
                assert "REGRESSION" in captured.err
