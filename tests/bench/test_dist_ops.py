"""Smoke tests for the dist-ops bench harness (quick sizes)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.dist_ops import GATED_SERIES, compare, main, run_dist_ops


@pytest.fixture(scope="module")
def doc():
    """One shared quick run (the harness itself is what's under test)."""
    return run_dist_ops(quick=True)


class TestRunDistOps:
    def test_quick_run_produces_all_series(self, doc):
        assert doc["bench"] == "dist_ops"
        assert doc["quick"] is True
        assert set(doc["series"]) == {
            "shm_readonly_check",
            "shm_increment_scaling",
            "service_pipeline",
            "dist_obs_disabled",
            "dist_obs_enabled",
        }
        for entries in doc["series"].values():
            for entry in entries.values():
                assert entry["ops_per_sec"] > 0
                assert entry["mean_s"] > 0

    def test_host_metadata_carries_effective_policy(self, doc):
        policy = doc["effective_policy"]
        assert policy["default"] in ("PARK_ONLY", "SPIN_THEN_PARK")
        assert isinstance(policy["serial_degraded_to_park"], bool)
        assert policy["effective_spin"] >= 0
        assert doc["cpu_count"] >= 1
        assert isinstance(doc["serial_host"], bool)

    def test_derived_ratios_present(self, doc):
        derived = doc["derived"]
        assert derived["shm_check_vs_manager_proxy"] > 0
        assert derived["pipelined_vs_rpc"] > 0
        assert set(derived["scaling_efficiency"]) == set(
            doc["series"]["shm_increment_scaling"]
        )

    def test_acceptance_ratios_hold_even_quick(self, doc):
        """The ROADMAP acceptance bars (10x / 5x) are same-run ratios
        and hold with margin even at smoke sizes."""
        assert doc["derived"]["shm_check_vs_manager_proxy"] >= 10
        assert doc["derived"]["pipelined_vs_rpc"] >= 5

    def test_obs_series_are_paired_and_tax_is_derived(self, doc):
        disabled = doc["series"]["dist_obs_disabled"]
        enabled = doc["series"]["dist_obs_enabled"]
        assert set(disabled) == set(enabled) == {"shm_check", "pipelined_inc"}
        for impl in disabled:
            # Paired sampling: repeat i's off/on samples ran back-to-back,
            # so the two series must have the same shape.
            assert len(disabled[impl]["samples"]) == len(enabled[impl]["samples"])
        tax = doc["derived"]["obs_enabled_tax"]
        assert set(tax) == {"shm_check", "pipelined_inc"}
        for value in tax.values():
            assert value > 0

    def test_only_the_disabled_obs_series_is_gated(self):
        assert "dist_obs_disabled" in GATED_SERIES
        assert "dist_obs_enabled" not in GATED_SERIES

    def test_document_is_json_serializable(self, doc):
        json.dumps(doc)


class TestCompare:
    def test_identical_documents_pass(self, doc):
        assert compare(doc, copy.deepcopy(doc)) == []

    def test_regression_detected_in_gated_series(self, doc):
        slower = copy.deepcopy(doc)
        series = GATED_SERIES[0]
        impl = next(iter(slower["series"][series]))
        slower["series"][series][impl]["ops_per_sec"] *= 0.5
        failures = compare(slower, doc, tolerance=0.3)
        assert len(failures) == 1
        assert series in failures[0]

    def test_scaling_series_not_gated(self, doc):
        slower = copy.deepcopy(doc)
        for entry in slower["series"]["shm_increment_scaling"].values():
            entry["ops_per_sec"] *= 0.01
        assert compare(slower, doc) == []

    def test_incomparable_documents_rejected(self, doc):
        other = copy.deepcopy(doc)
        other["quick"] = False
        with pytest.raises(ValueError, match="not comparable"):
            compare(doc, other)

    def test_override_tightens_one_series(self, doc):
        slower = copy.deepcopy(doc)
        series = GATED_SERIES[0]
        for entry in slower["series"][series].values():
            entry["ops_per_sec"] *= 0.9
        assert compare(slower, doc, tolerance=0.3) == []
        failures = compare(
            slower, doc, tolerance=0.3, overrides={series: 0.02}
        )
        assert failures


class TestMain:
    def test_cli_quick_writes_doc(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        history = tmp_path / "bench.history.jsonl"
        assert main([
            "--quick", "--out", str(out), "--history", str(history),
            "--label", "smoke",
        ]) == 0
        doc = json.loads(out.read_text())
        assert doc["bench"] == "dist_ops"
        entry = json.loads(history.read_text().splitlines()[0])
        assert entry["label"] == "smoke"
        assert "sha" in entry
        assert "acceptance floor" in capsys.readouterr().out
