"""Tests for the benchmark harness utilities (tables, timing, workloads)."""

from __future__ import annotations

import pytest

from repro.bench import SpreadResult, Table, Timing, measure, spread_waiters
from repro.core import BroadcastCounter, MonotonicCounter


class TestTable:
    def test_render_contains_title_and_cells(self):
        table = Table("demo", ["a", "b"], caption="cap")
        table.add_row(1, 2.5)
        text = table.render()
        assert "demo" in text and "cap" in text
        assert "2.500" in text  # float formatting
        assert "1" in text

    def test_bool_formatting(self):
        table = Table("t", ["x"])
        table.add_row(True)
        table.add_row(False)
        assert "yes" in table.render() and "no" in table.render()

    def test_row_arity_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table("t", [])

    def test_csv_output(self):
        table = Table("t", ["a", "b"])
        table.add_row(1, "x")
        assert table.to_csv() == "a,b\n1,x\n"

    def test_alignment_padding(self):
        table = Table("t", ["col"])
        table.add_row("longer-cell")
        lines = table.render().splitlines()
        header_line = next(line for line in lines if "col" in line)
        assert len(header_line) >= len("longer-cell")

    def test_len(self):
        table = Table("t", ["a"])
        assert len(table) == 0
        table.add_row(1)
        assert len(table) == 1


class TestTiming:
    def test_measure_collects_samples(self):
        timing = measure(lambda: sum(range(100)), repeats=4)
        assert len(timing.samples) == 4
        assert timing.mean > 0
        assert timing.minimum <= timing.mean

    def test_repeats_validated(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)

    def test_single_sample_ci_degenerate(self):
        timing = Timing(samples=(0.5,))
        assert timing.confidence_interval() == (0.5, 0.5)
        assert timing.stdev == 0.0

    def test_ci_brackets_mean(self):
        timing = Timing(samples=(1.0, 2.0, 3.0, 2.0, 2.0))
        low, high = timing.confidence_interval()
        assert low <= timing.mean <= high
        assert low < high

    def test_str_has_units(self):
        assert "ms" in str(measure(lambda: None, repeats=2))


class TestSpreadWaiters:
    def test_levels_spread_and_release(self):
        result = spread_waiters(MonotonicCounter(stats=True), waiters=12, levels=4)
        assert isinstance(result, SpreadResult)
        assert result.max_live_levels == 4
        assert result.max_live_waiters == 12

    def test_stepped_release(self):
        counter = MonotonicCounter(stats=True)
        spread_waiters(counter, waiters=8, levels=8, increment_steps=8)
        assert counter.value == 8
        assert counter.stats.threads_woken == 8  # each woken exactly once

    def test_broadcast_counter_supported(self):
        result = spread_waiters(BroadcastCounter(stats=True), waiters=6, levels=3)
        assert result.max_live_waiters == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            spread_waiters(MonotonicCounter(), waiters=2, levels=5)
        with pytest.raises(ValueError):
            spread_waiters(MonotonicCounter(), waiters=0, levels=0)
        with pytest.raises(ValueError):
            spread_waiters(MonotonicCounter(), waiters=4, levels=2, increment_steps=0)
