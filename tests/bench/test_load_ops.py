"""Smoke tests for the load-ops bench harness (quick sizes)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.load_ops import GATED_SERIES, compare, main, run_load_ops


@pytest.fixture(scope="module")
def doc():
    """One shared quick run (the harness itself is what's under test)."""
    return run_load_ops(quick=True)


class TestRunLoadOps:
    def test_quick_run_produces_all_series(self, doc):
        assert doc["bench"] == "load_ops"
        assert doc["quick"] is True
        assert set(doc["series"]) == {
            "ratelimit_admit",
            "ratelimit_admit_obs",
            "capacity",
        }
        for series in ("ratelimit_admit", "ratelimit_admit_obs"):
            entry = doc["series"][series]["local"]
            assert entry["ops_per_sec"] > 0
            assert entry["mean_s"] > 0

    def test_capacity_steps_cover_every_offered_rate(self, doc):
        steps = doc["series"]["capacity"]
        assert [s["offered"] for s in steps] == doc["config"]["capacity_rates"]
        for step in steps:
            assert step["achieved"] >= 0
            assert 0.0 <= step["admit_rate"] <= 1.0
            assert step["p50"] <= step["p99"] <= step["p999"]

    def test_derived_ratios(self, doc):
        tax = doc["derived"]["admit_obs_enabled_vs_disabled"]
        assert tax > 0
        knee = doc["derived"]["capacity_knee"]
        assert knee is None or knee in doc["config"]["capacity_rates"]

    def test_document_is_json_serializable(self, doc):
        json.dumps(doc)


class TestCompare:
    def test_identical_documents_pass(self, doc):
        assert compare(doc, copy.deepcopy(doc)) == []

    def test_gated_series_regression_is_reported(self, doc):
        slow = copy.deepcopy(doc)
        for series in GATED_SERIES:
            for entry in slow["series"][series].values():
                entry["ops_per_sec"] *= 0.5
        failures = compare(slow, doc, tolerance=0.3)
        assert failures and all("ratelimit_admit" in f for f in failures)

    def test_capacity_is_trajectory_not_gate(self, doc):
        worse = copy.deepcopy(doc)
        for step in worse["series"]["capacity"]:
            step["achieved"] = 0.0
        assert compare(worse, doc) == []

    def test_override_tightens_one_series(self, doc):
        slightly_slow = copy.deepcopy(doc)
        entry = slightly_slow["series"]["ratelimit_admit"]["local"]
        entry["ops_per_sec"] *= 0.95  # inside 30%, outside 2%
        assert compare(slightly_slow, doc) == []
        failures = compare(
            slightly_slow, doc, overrides={"ratelimit_admit": 0.02}
        )
        assert len(failures) == 1

    def test_incomparable_documents_raise(self, doc):
        other = copy.deepcopy(doc)
        other["quick"] = False
        with pytest.raises(ValueError):
            compare(other, doc)

    def test_tolerance_validation(self, doc):
        with pytest.raises(ValueError):
            compare(doc, doc, tolerance=1.5)
        with pytest.raises(ValueError):
            compare(doc, doc, overrides={"ratelimit_admit": -0.1})


class TestMain:
    def test_writes_snapshot_history_and_gates(self, tmp_path):
        out = tmp_path / "BENCH_load_ops.json"
        history = tmp_path / "hist.jsonl"
        assert main([
            "--quick", "--out", str(out), "--history", str(history),
            "--label", "unit",
        ]) == 0
        doc = json.loads(out.read_text())
        assert doc["bench"] == "load_ops"
        lines = history.read_text().splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["label"] == "unit"
        assert "sha" in entry
        # Same-machine rerun against its own snapshot passes the gate.
        assert main([
            "--quick", "--out", str(tmp_path / "second.json"), "--no-history",
            "--compare-to", str(out), "--gate", "ratelimit_admit=0.9",
        ]) == 0

    def test_incomparable_baseline_skips_the_gate(self, tmp_path, capsys):
        out = tmp_path / "quick.json"
        assert main(["--quick", "--out", str(out), "--no-history"]) == 0
        baseline = json.loads(out.read_text())
        baseline["quick"] = False
        full = tmp_path / "full.json"
        full.write_text(json.dumps(baseline))
        assert main([
            "--quick", "--out", str(tmp_path / "again.json"), "--no-history",
            "--compare-to", str(full),
        ]) == 0
        assert "regression gate skipped" in capsys.readouterr().err

    def test_bad_gate_spec_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--quick", "--gate", "nonsense"])
