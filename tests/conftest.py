"""Suite-wide fixtures: every counter implementation, parametrized.

Most counter tests run against all three implementations —
``MonotonicCounter(strategy="linked")`` (the paper's §7 algorithm),
``MonotonicCounter(strategy="heap")``, and the naive
``BroadcastCounter`` — because they promise identical semantics and the
differential coverage is nearly free.
"""

from __future__ import annotations

import pytest

from repro.core import BroadcastCounter, MonotonicCounter

COUNTER_FACTORIES = {
    "linked": lambda **kw: MonotonicCounter(strategy="linked", **kw),
    "heap": lambda **kw: MonotonicCounter(strategy="heap", **kw),
    "broadcast": lambda **kw: BroadcastCounter(**kw),
}


@pytest.fixture(params=sorted(COUNTER_FACTORIES))
def counter_factory(request):
    """A zero-state counter factory, parametrized over implementations."""
    return COUNTER_FACTORIES[request.param]


@pytest.fixture(params=sorted(COUNTER_FACTORIES))
def counter(request):
    """A fresh counter instance, parametrized over implementations."""
    return COUNTER_FACTORIES[request.param]()


@pytest.fixture(params=["linked", "heap"])
def paper_counter(request):
    """Only the per-level-queue implementations (snapshot-accurate).

    Constructed with ``stats=True`` (stats are off by default) so tests
    can assert on the §7 observables.
    """
    return MonotonicCounter(strategy=request.param, stats=True)
