"""Single-threaded behaviour of every counter implementation (paper §2)."""

from __future__ import annotations

import pytest

from repro.core import (
    BroadcastCounter,
    Counter,
    CounterOverflowError,
    CounterValueError,
    MonotonicCounter,
)


class TestConstruction:
    def test_initial_value_is_zero(self, counter):
        assert counter.value == 0

    def test_counter_alias_is_the_paper_class(self):
        assert Counter is MonotonicCounter

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            MonotonicCounter(strategy="btree")

    def test_negative_max_value_rejected(self):
        with pytest.raises(ValueError, match="max_value"):
            MonotonicCounter(max_value=-1)

    def test_named_counter_repr(self):
        c = MonotonicCounter(name="kCount")
        assert "kCount" in repr(c)
        assert "value=0" in repr(c)

    def test_broadcast_counter_repr(self):
        c = BroadcastCounter(name="naive")
        assert "naive" in repr(c)


class TestIncrement:
    def test_increment_default_amount_is_one(self, counter):
        assert counter.increment() == 1
        assert counter.value == 1

    def test_increment_accumulates(self, counter):
        counter.increment(3)
        counter.increment(4)
        assert counter.value == 7

    def test_increment_returns_new_value(self, counter):
        assert counter.increment(5) == 5
        assert counter.increment(2) == 7

    def test_increment_zero_is_legal_noop(self, counter):
        counter.increment(5)
        assert counter.increment(0) == 5
        assert counter.value == 5

    def test_increment_negative_rejected(self, counter):
        with pytest.raises(CounterValueError, match=">= 0"):
            counter.increment(-1)
        assert counter.value == 0

    def test_increment_non_int_rejected(self, counter):
        for bad in (1.5, "2", None, [1]):
            with pytest.raises(CounterValueError, match="int"):
                counter.increment(bad)

    def test_increment_bool_rejected(self, counter):
        # bool is an int subclass but almost certainly a bug at a call site.
        with pytest.raises(CounterValueError, match="int"):
            counter.increment(True)

    def test_large_increments(self, counter):
        counter.increment(10**18)
        assert counter.value == 10**18


class TestCheckImmediate:
    def test_check_zero_always_passes(self, counter):
        counter.check(0)  # value 0 >= level 0

    def test_check_at_or_below_value_returns(self, counter):
        counter.increment(10)
        counter.check(10)
        counter.check(3)
        assert counter.value == 10

    def test_check_negative_level_rejected(self, counter):
        with pytest.raises(CounterValueError, match=">= 0"):
            counter.check(-2)

    def test_check_non_int_level_rejected(self, counter):
        for bad in (0.5, "1", None):
            with pytest.raises(CounterValueError, match="int"):
                counter.check(bad)

    def test_check_bool_level_rejected(self, counter):
        with pytest.raises(CounterValueError, match="int"):
            counter.check(False)

    def test_check_invalid_timeout_rejected(self, counter):
        with pytest.raises(CounterValueError, match="timeout"):
            counter.check(0, timeout="soon")
        with pytest.raises(CounterValueError, match="timeout"):
            counter.check(0, timeout=-1)


class TestOverflowBound:
    def test_overflow_raises_and_preserves_value(self, counter_factory):
        c = counter_factory(max_value=10)
        c.increment(10)
        with pytest.raises(CounterOverflowError):
            c.increment(1)
        assert c.value == 10

    def test_increment_to_exactly_max_is_fine(self, counter_factory):
        c = counter_factory(max_value=5)
        assert c.increment(5) == 5


class TestNoForbiddenOperations:
    """§2: no Decrement, no Probe — the interface race-proofing."""

    def test_no_decrement_operation(self, counter):
        assert not hasattr(counter, "decrement")

    def test_no_probe_or_try_check(self, counter):
        assert not hasattr(counter, "probe")
        assert not hasattr(counter, "try_check")
