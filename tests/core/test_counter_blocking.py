"""Multithreaded blocking behaviour of the counters (paper §2, §7)."""

from __future__ import annotations

import threading

import pytest

from repro.core import CheckTimeout, ResetConcurrencyError
from tests.helpers import join_all, spawn, wait_until


class TestSuspension:
    def test_check_suspends_until_level_reached(self, counter):
        passed = threading.Event()

        def waiter():
            counter.check(5)
            passed.set()

        thread = spawn(waiter)
        counter.increment(4)
        assert not passed.wait(0.05), "check(5) returned at value 4"
        counter.increment(1)
        assert passed.wait(5), "check(5) did not return at value 5"
        join_all([thread])

    def test_one_increment_wakes_all_satisfied_levels(self, counter):
        reached = []
        lock = threading.Lock()

        def waiter(level):
            counter.check(level)
            with lock:
                reached.append(level)

        threads = [spawn(waiter, level) for level in (1, 2, 3, 4, 5)]
        wait_until(lambda: _waiting(counter) == 5)
        counter.increment(3)
        wait_until(lambda: sorted(reached) == [1, 2, 3])
        counter.increment(2)
        join_all(threads)
        assert sorted(reached) == [1, 2, 3, 4, 5]

    def test_many_threads_same_level(self, counter):
        done = threading.Semaphore(0)

        def waiter():
            counter.check(7)
            done.release()

        threads = [spawn(waiter) for _ in range(16)]
        wait_until(lambda: _waiting(counter) == 16)
        counter.increment(7)
        for _ in range(16):
            assert done.acquire(timeout=5)
        join_all(threads)

    def test_overshooting_increment_wakes_waiter(self, counter):
        passed = threading.Event()

        def waiter():
            counter.check(10)
            passed.set()

        thread = spawn(waiter)
        wait_until(lambda: _waiting(counter) == 1)
        counter.increment(1000)  # far past the level
        assert passed.wait(5)
        join_all([thread])

    def test_waiters_released_in_any_interleaving_of_increments(self, counter):
        """Incrementing in many small steps releases each level exactly when
        first reached — no waiter is ever missed (monotonicity §6)."""
        released_at: dict[int, int] = {}
        lock = threading.Lock()

        def waiter(level):
            counter.check(level)
            with lock:
                released_at[level] = counter.value

        threads = [spawn(waiter, level) for level in range(1, 21)]
        wait_until(lambda: _waiting(counter) == 20)
        for _ in range(20):
            counter.increment(1)
        join_all(threads)
        assert set(released_at) == set(range(1, 21))
        for level, seen_value in released_at.items():
            assert seen_value >= level


class TestTimeout:
    def test_check_timeout_raises(self, counter):
        with pytest.raises(CheckTimeout):
            counter.check(1, timeout=0.01)

    def test_check_timeout_zero(self, counter):
        with pytest.raises(CheckTimeout):
            counter.check(1, timeout=0)

    def test_timeout_does_not_perturb_state(self, counter):
        with pytest.raises(CheckTimeout):
            counter.check(5, timeout=0.01)
        assert counter.value == 0
        counter.increment(5)
        counter.check(5)  # still works

    def test_timeout_cleanup_removes_empty_level(self, paper_counter):
        with pytest.raises(CheckTimeout):
            paper_counter.check(5, timeout=0.01)
        assert paper_counter.snapshot().nodes == ()

    def test_timeout_cleanup_keeps_level_with_other_waiters(self, paper_counter):
        passed = threading.Event()

        def patient():
            paper_counter.check(5)
            passed.set()

        thread = spawn(patient)
        wait_until(lambda: _waiting(paper_counter) == 1)
        with pytest.raises(CheckTimeout):
            paper_counter.check(5, timeout=0.01)
        snapshot = paper_counter.snapshot()
        assert snapshot.waiting_levels == (5,)
        assert snapshot.total_waiters == 1
        paper_counter.increment(5)
        assert passed.wait(5)
        join_all([thread])

    def test_check_satisfied_before_timeout(self, counter):
        def bump():
            counter.increment(3)

        thread = spawn(bump)
        counter.check(3, timeout=10)  # must return well before the timeout
        join_all([thread])


class TestReset:
    def test_reset_returns_value_to_zero(self, counter):
        counter.increment(9)
        counter.reset()
        assert counter.value == 0

    def test_reset_with_waiters_refused(self, counter):
        thread = spawn(lambda: counter.check(5, timeout=10))
        wait_until(lambda: _waiting(counter) == 1)
        with pytest.raises(ResetConcurrencyError):
            counter.reset()
        counter.increment(5)
        join_all([thread])

    def test_counter_reusable_after_reset(self, counter):
        counter.increment(4)
        counter.reset()
        passed = threading.Event()

        def waiter():
            counter.check(2)
            passed.set()

        thread = spawn(waiter)
        counter.increment(2)
        assert passed.wait(5)
        join_all([thread])


class TestConcurrentIncrements:
    def test_parallel_increments_all_counted(self, counter):
        threads = [spawn(lambda: [counter.increment(1) for _ in range(500)]) for _ in range(8)]
        join_all(threads)
        assert counter.value == 4000

    def test_incrementers_and_checkers_stress(self, counter):
        total = 2000
        done = threading.Semaphore(0)

        def checker():
            for level in range(0, total + 1, 50):
                counter.check(level)
            done.release()

        checkers = [spawn(checker) for _ in range(4)]

        def incrementer():
            for _ in range(total // 4):
                counter.increment(1)

        incrementers = [spawn(incrementer) for _ in range(4)]
        join_all(incrementers)
        for _ in range(4):
            assert done.acquire(timeout=20)
        join_all(checkers)
        assert counter.value == total


def _waiting(counter) -> int:
    snapshot = getattr(counter, "snapshot", None)
    if snapshot is None:  # pragma: no cover
        return 0
    return snapshot().total_waiters
