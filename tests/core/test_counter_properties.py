"""Property-based tests over counter semantics (hypothesis).

Core invariants:

* monotonicity — the observed value never decreases;
* linearizable value — value equals the sum of increments;
* differential equivalence — linked, heap, and naive-broadcast
  implementations agree on every observable for any operation sequence;
* check-never-misses — a check for any level at or below the final value
  always completes (no lost wakeups), for any partition of the increments
  and any assignment of waiters to levels.
"""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BroadcastCounter, MonotonicCounter
from tests.helpers import join_all, spawn, wait_until

amounts = st.lists(st.integers(min_value=0, max_value=50), min_size=0, max_size=30)


@given(amounts)
def test_value_is_sum_of_increments(increments):
    c = MonotonicCounter()
    observed = []
    for amount in increments:
        observed.append(c.increment(amount))
    assert c.value == sum(increments)
    assert observed == [sum(increments[: i + 1]) for i in range(len(increments))]


@given(amounts)
def test_value_monotonically_nondecreasing(increments):
    c = MonotonicCounter(strategy="heap")
    last = 0
    for amount in increments:
        value = c.increment(amount)
        assert value >= last
        last = value


@given(
    amounts,
    st.lists(st.integers(min_value=0, max_value=200), min_size=0, max_size=20),
)
def test_implementations_agree_on_immediate_checks(increments, probe_levels):
    """For any increments and any immediate check levels, all three
    implementations report identical values and identical blocking
    decisions (a check blocks iff level > current value)."""
    implementations = [
        MonotonicCounter(strategy="linked"),
        MonotonicCounter(strategy="heap"),
        BroadcastCounter(),
    ]
    for amount in increments:
        values = {c.increment(amount) for c in implementations}
        assert len(values) == 1
    for level in probe_levels:
        decisions = set()
        for c in implementations:
            if level <= c.value:
                c.check(level)  # must not block
                decisions.add("immediate")
            else:
                decisions.add("would-block")
        assert len(decisions) == 1


@settings(deadline=None, max_examples=25)
@given(
    st.integers(min_value=1, max_value=8),   # waiter count
    st.integers(min_value=1, max_value=30),  # final value
    st.data(),
)
def test_check_never_misses_an_increment(n_waiters, final_value, data):
    """Any waiter on a level <= the eventual value is always released,
    however the increments are chopped up — the §2 no-race property."""
    levels = [
        data.draw(st.integers(min_value=0, max_value=final_value), label=f"level{i}")
        for i in range(n_waiters)
    ]
    # Random partition of final_value into increment chunks.
    chunks = []
    remaining = final_value
    while remaining:
        chunk = data.draw(st.integers(min_value=1, max_value=remaining), label="chunk")
        chunks.append(chunk)
        remaining -= chunk
    c = MonotonicCounter()
    released = threading.Semaphore(0)

    def waiter(level):
        c.check(level, timeout=30)
        released.release()

    threads = [spawn(waiter, level) for level in levels]
    for chunk in chunks:
        c.increment(chunk)
    for _ in range(n_waiters):
        assert released.acquire(timeout=30)
    join_all(threads)
    assert c.value == final_value


@settings(deadline=None, max_examples=25)
@given(st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=8))
def test_snapshot_levels_sorted_and_above_value(levels):
    """Live wait nodes are strictly above the value and sorted ascending
    (the §7 list invariant), for any set of waiting levels."""
    c = MonotonicCounter()
    threads = [spawn(lambda lv=level: c.check(lv, timeout=30)) for level in levels]
    expected_distinct = len(set(levels))
    # Time-based, not iteration-based: spin-then-park means a waiter may
    # take a few scheduler quanta to appear in the wait list.
    wait_until(lambda: c.snapshot().total_waiters == len(levels))
    snapshot = c.snapshot()
    assert snapshot.total_waiters == len(levels)
    observed_levels = snapshot.waiting_levels
    assert list(observed_levels) == sorted(set(levels))
    assert len(observed_levels) == expected_distinct
    assert all(level > c.value for level in observed_levels)
    c.increment(max(levels))
    join_all(threads)
    assert c.snapshot().nodes == ()


@given(amounts, st.integers(min_value=0, max_value=100))
def test_sequential_check_increment_interleaving(increments, level):
    """Single-threaded: check(level) after the prefix-sum first reaches
    level must return instantly; the hypothesis engine explores the
    boundary alignment."""
    c = MonotonicCounter()
    total = 0
    for amount in increments:
        total = c.increment(amount)
        if total >= level:
            c.check(level)  # must not block single-threaded
            return
    # Level never reached: checking anything <= total still passes.
    c.check(min(level, total))
