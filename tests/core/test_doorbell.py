"""Unit tests for the engine's Doorbell: idempotent many-ringer wakeup.

A :class:`~repro.core.engine.Doorbell` is the one-waiter/many-ringer
primitive the shared-memory fabric parks its watcher on.  Its contract
refines the ParkingSlot's: any number of concurrent ``ring()`` calls
collapse to exactly one outstanding set (the slot's loud double-set
crash can never fire), a ring is never lost, and a timed-out wait may
observe a banked ring on its *next* wait as a harmless spurious wake —
never as a crash, never as a hang.
"""

from __future__ import annotations

import threading

from repro.core.engine import Doorbell
from tests.helpers import join_all, spawn, wait_until


class TestDoorbell:
    def test_ring_then_wait_consumes(self):
        bell = Doorbell()
        assert bell.ring() is True
        assert bell.wait(timeout=0.0) is True

    def test_duplicate_rings_collapse(self):
        bell = Doorbell()
        assert bell.ring() is True
        for _ in range(100):
            assert bell.ring() is False  # token already claimed
        assert bell.wait(timeout=0.0) is True   # exactly one set delivered
        assert bell.wait(timeout=0.0) is False  # and no more

    def test_rearm_after_consume(self):
        bell = Doorbell()
        for _ in range(5):  # ring/wait cycles keep working
            assert bell.ring() is True
            assert bell.wait(timeout=0.0) is True

    def test_wait_blocks_until_rung(self):
        bell = Doorbell()
        woke = []
        waiter = spawn(lambda: woke.append(bell.wait(timeout=10.0)))
        wait_until(lambda: waiter.is_alive())
        assert not woke
        bell.ring()
        join_all([waiter])
        assert woke == [True]

    def test_timeout_banks_late_ring_for_next_wait(self):
        bell = Doorbell()
        assert bell.wait(timeout=0.0) is False  # timed out, token NOT re-armed
        assert bell.ring() is True              # the "late" ring still lands
        assert bell.ring() is False
        assert bell.wait(timeout=0.0) is True   # consumed as a spurious wake
        assert bell.ring() is True              # and the protocol continues

    def test_concurrent_ringers_exactly_one_set(self):
        """The double-set hazard: N threads ringing an armed bell must
        produce exactly one claimed token and exactly one slot set (a
        second set would crash the ParkingSlot loudly)."""
        for _ in range(50):
            bell = Doorbell()
            start = threading.Barrier(8)
            claims = []

            def ringer():
                start.wait()
                claims.append(bell.ring())

            threads = [spawn(ringer) for _ in range(8)]
            join_all(threads)
            assert claims.count(True) == 1
            assert bell.wait(timeout=1.0) is True
            assert bell.wait(timeout=0.0) is False

    def test_ring_wait_pingpong_across_threads(self):
        bell = Doorbell()
        rounds = 200
        seen = []

        def waiter():
            for _ in range(rounds):
                if not bell.wait(timeout=10.0):
                    return
                seen.append(True)

        thread = spawn(waiter)
        for _ in range(rounds):
            while not bell.ring():  # previous ring not yet consumed
                if not thread.is_alive():
                    raise AssertionError("waiter died early")
        join_all([thread])
        assert len(seen) == rounds
