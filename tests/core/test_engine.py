"""Unit tests for the unified wakeup engine.

The engine's contract is small and sharp:

* a :class:`ParkingSlot` delivers exactly the sets it was handed —
  set-before-wait is banked, double set crashes loudly, and a wait
  round always re-arms the slot for the thread's next park;
* a :class:`WheelEntry`'s claim has exactly one winner under any
  contention, so a slot can never see two sets for one park round;
* the :class:`TimerWheel` fires what is due, forgets what is cancelled,
  and its single sweeper sleeps/exits/respawns instead of accumulating.

Higher-level protocol races (release vs timeout through the counter)
live in ``test_timeout_races.py``; schedule-driven wheel races live in
``tests/testkit/test_engine_interleave.py``.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core.engine import ParkingSlot, TimerWheel, WheelEntry, current_slot, wheel
from tests.helpers import join_all, spawn, wait_until


class TestParkingSlot:
    def test_born_armed(self):
        assert ParkingSlot().armed

    def test_set_before_wait_is_banked(self):
        slot = ParkingSlot()
        slot.set()
        assert not slot.armed  # set pending
        assert slot.wait(timeout=0.0) is True  # consumed without blocking
        assert slot.armed  # re-armed by the acquire

    def test_wait_timeout_leaves_slot_armed(self):
        slot = ParkingSlot()
        assert slot.wait(timeout=0.01) is False
        assert slot.armed

    def test_double_set_is_loud(self):
        slot = ParkingSlot()
        slot.set()
        with pytest.raises(RuntimeError):
            slot.set()

    def test_reuse_across_rounds(self):
        slot = ParkingSlot()
        for _ in range(100):
            slot.set()
            assert slot.wait(timeout=1.0) is True
        assert slot.armed

    def test_release_wake_is_set(self):
        slot = ParkingSlot()
        slot.release_wake()  # the polymorphic spelling the release pass uses
        assert slot.wait(timeout=0.0) is True

    def test_cross_thread_handoff(self):
        slot = ParkingSlot()
        woken = []
        waiter = spawn(lambda: (slot.wait(), woken.append(True)))
        wait_until(lambda: waiter.is_alive())
        slot.set()
        join_all([waiter])
        assert woken == [True]
        assert slot.armed


class TestCurrentSlot:
    def test_stable_within_a_thread(self):
        assert current_slot() is current_slot()

    def test_distinct_across_threads(self):
        slots = []
        threads = [spawn(lambda: slots.append(current_slot())) for _ in range(4)]
        join_all(threads)
        mine = current_slot()
        assert len({id(slot) for slot in slots + [mine]}) == 5


class TestWheelEntryClaim:
    def test_first_claim_wins_and_records_why(self):
        entry = WheelEntry(ParkingSlot(), 0.0)
        assert entry.claim("timeout") is True
        assert entry.why == "timeout"
        assert entry.claim("release") is False
        assert entry.why == "timeout"  # loser never overwrites
        assert entry.claimed

    def test_release_wake_loses_to_fired_timeout(self):
        slot = ParkingSlot()
        entry = WheelEntry(slot, 0.0)
        entry.fire_timeout()
        entry.release_wake()  # must not double-set (would raise)
        assert entry.why == "timeout"
        assert slot.wait(timeout=0.0) is True  # exactly one set delivered

    def test_exactly_one_winner_under_contention(self):
        """Many threads race both wake paths of one entry; the slot must
        receive exactly one set — a second would crash the setter."""
        rounds = 50
        racers = 6
        for _ in range(rounds):
            slot = ParkingSlot()
            entry = WheelEntry(slot, 0.0)
            barrier = threading.Barrier(racers)
            errors = []

            def race(i):
                barrier.wait()
                try:
                    if i % 2:
                        entry.fire_timeout()
                    else:
                        entry.release_wake()
                except BaseException as exc:  # pragma: no cover - the failure
                    errors.append(exc)

            threads = [spawn(race, i) for i in range(racers)]
            join_all(threads)
            assert not errors, f"double set leaked through the claim: {errors}"
            assert entry.why in ("release", "timeout")
            assert slot.wait(timeout=1.0) is True   # the single set
            assert slot.wait(timeout=0.0) is False  # and no second one
            assert slot.armed


class _FastIdleWheel(TimerWheel):
    IDLE_LINGER = 0.05


class TestTimerWheel:
    def test_due_entry_fires(self):
        wheel_ = TimerWheel()
        slot = ParkingSlot()
        entry = WheelEntry(slot, time.monotonic() + 0.01)
        wheel_.add(entry)
        assert slot.wait(timeout=5.0) is True
        assert entry.why == "timeout"
        assert wheel_.armed_count() == 0

    def test_sub_span_deadline_fires_promptly(self):
        """A deadline inside the current tick must not wait a wheel lap."""
        wheel_ = TimerWheel()
        slot = ParkingSlot()
        start = time.monotonic()
        wheel_.add(WheelEntry(slot, start + wheel_.SPAN / 4))
        assert slot.wait(timeout=5.0) is True
        assert time.monotonic() - start < 1.0

    def test_cancel_leaves_no_armed_deadline(self):
        wheel_ = TimerWheel()
        entry = WheelEntry(ParkingSlot(), time.monotonic() + 30.0)
        wheel_.add(entry)
        assert wheel_.armed_count() == 1
        wheel_.cancel(entry)
        assert wheel_.armed_count() == 0
        wheel_.cancel(entry)  # idempotent
        assert wheel_.armed_count() == 0
        assert entry.why is None  # never fired
        assert list(wheel_.entries()) == []

    def test_earlier_add_cuts_the_sleep_short(self):
        """The sweeper may be asleep toward a far deadline; an earlier
        add must wake it, not wait out the far sleep."""
        wheel_ = TimerWheel()
        far = WheelEntry(ParkingSlot(), time.monotonic() + 30.0)
        wheel_.add(far)
        time.sleep(0.02)  # let the sweeper reach its long sleep
        near_slot = ParkingSlot()
        start = time.monotonic()
        wheel_.add(WheelEntry(near_slot, start + 0.01))
        assert near_slot.wait(timeout=5.0) is True
        assert time.monotonic() - start < 5.0
        wheel_.cancel(far)

    def test_mass_timeouts_all_fire(self):
        wheel_ = TimerWheel()
        rng = random.Random(0xF1E5)
        now = time.monotonic()
        pairs = []
        for _ in range(64):
            slot = ParkingSlot()
            entry = WheelEntry(slot, now + rng.random() * 0.05)
            pairs.append((slot, entry))
            wheel_.add(entry)
        for slot, entry in pairs:
            assert slot.wait(timeout=5.0) is True
            assert entry.why == "timeout"
        assert wheel_.armed_count() == 0

    def test_sweeper_idles_out_and_respawns(self):
        wheel_ = _FastIdleWheel()
        slot = ParkingSlot()
        wheel_.add(WheelEntry(slot, time.monotonic() + 0.005))
        assert slot.wait(timeout=5.0) is True
        # Empty wheel: the sweeper lingers briefly, then exits.
        wait_until(lambda: not wheel_.sweeping, timeout=5.0)
        # A fresh add spawns a fresh sweeper and still fires.
        slot2 = ParkingSlot()
        wheel_.add(WheelEntry(slot2, time.monotonic() + 0.005))
        assert wheel_.sweeping
        assert slot2.wait(timeout=5.0) is True

    def test_shared_wheel_accessor_is_a_singleton(self):
        assert wheel() is wheel()

    def test_validation(self):
        with pytest.raises(ValueError):
            TimerWheel(span=0.0)
        with pytest.raises(ValueError):
            TimerWheel(buckets=0)


class TestSlotReuseHammer:
    """The satellite hammer: one slot, hundreds of park rounds, both
    wake paths racing — a double set anywhere crashes ``slot.set`` and
    fails the round; a leaked (unconsumed) set breaks the next round's
    arming assertion."""

    def test_slots_never_double_set_across_reuse(self):
        wheel_ = TimerWheel()
        rng = random.Random(0xBEEF)
        rounds = 150
        outcomes = []
        pending = []
        done = threading.Event()
        errors = []

        def waiter():
            try:
                slot = current_slot()
                for _ in range(rounds):
                    assert slot.armed, "stray set leaked into a fresh round"
                    entry = WheelEntry(slot, time.monotonic() + rng.random() * 0.003)
                    wheel_.add(entry)
                    pending.append(entry)
                    slot.wait()
                    while entry.why is None:
                        slot.wait()
                    if entry.why == "release":
                        wheel_.cancel(entry)
                    outcomes.append(entry.why)
            except BaseException as exc:  # pragma: no cover - the failure
                errors.append(exc)
            finally:
                done.set()

        def releaser():
            try:
                while not done.is_set() or pending:
                    try:
                        entry = pending.pop()
                    except IndexError:
                        time.sleep(0.0005)
                        continue
                    entry.release_wake()
            except BaseException as exc:  # pragma: no cover - the failure
                errors.append(exc)

        threads = [spawn(waiter, name="hammer-waiter"),
                   spawn(releaser, name="hammer-releaser")]
        join_all(threads)
        assert not errors, errors
        assert len(outcomes) == rounds
        # Both wake paths should actually have been exercised.
        assert "release" in outcomes
        assert wheel_.armed_count() == 0
