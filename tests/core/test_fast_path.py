"""Hammer tests for the lock-free fast paths and the stats null object.

The fast path returns from an *unsynchronized* read of the value.  Its
soundness argument (stability: a stale ``value >= level`` can never be
wrong later) is exactly the kind of claim that needs adversarial
schedules, so these tests race many checkers against incrementers and
assert the two failure modes the argument rules out:

* no stale-read unsoundness — ``check(level)`` never returns while the
  value is below ``level``;
* no lost wakeups — every suspended checker is eventually woken by the
  increment that reaches its level.

All runs are seeded and bounded (generous timeouts fail the test instead
of hanging the suite).
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core import MonotonicCounter
from repro.core.stats import NOOP_STATS, CounterStats, NoopStats
from tests.helpers import join_all, spawn, wait_until


@pytest.fixture(params=["linked", "heap"])
def strategy(request):
    return request.param


class TestFastPathSoundness:
    def test_check_never_returns_early(self, strategy):
        """Many checkers racing one incrementer: after check(level)
        returns, value >= level must hold — forever, by stability."""
        c = MonotonicCounter(strategy=strategy)
        top = 200
        violations = []

        def checker(seed: int) -> None:
            rng = random.Random(seed)
            levels = sorted(rng.randrange(1, top + 1) for _ in range(20))
            for level in levels:
                c.check(level, timeout=30)
                observed = c.value
                if observed < level:
                    violations.append((level, observed))

        def incrementer() -> None:
            for _ in range(top):
                c.increment(1)

        threads = [spawn(checker, seed) for seed in range(8)]
        threads.append(spawn(incrementer))
        join_all(threads)
        assert violations == []
        assert c.value == top

    def test_no_lost_wakeups_under_churn(self, strategy):
        """Every checker of every level 1..top completes: the fast path
        must never swallow a wakeup the slow path owed someone."""
        c = MonotonicCounter(strategy=strategy)
        top = 100
        done = threading.Semaphore(0)

        def checker(level: int) -> None:
            c.check(level, timeout=30)
            done.release()

        threads = [spawn(checker, (i % top) + 1) for i in range(3 * top)]
        threads.append(spawn(lambda: [c.increment(1) for _ in range(top)]))
        for _ in range(3 * top):
            assert done.acquire(timeout=30)
        join_all(threads)
        # Everything released: only reclaimable state may remain.
        assert c.snapshot().nodes == ()

    def test_fast_and_locked_paths_agree(self, strategy):
        """Differential: the same seeded scenario through fast_path=True
        and fast_path=False ends in the same state."""
        rng = random.Random(1234)
        amounts = [rng.randrange(0, 4) for _ in range(200)]
        total = sum(amounts)
        level_script = sorted(rng.randrange(0, total + 1) for _ in range(50))
        finals = []
        for fast_path in (True, False):
            c = MonotonicCounter(strategy=strategy, fast_path=fast_path, stats=True)
            threads = [
                spawn(lambda: [c.check(lv, timeout=30) for lv in level_script])
                for _ in range(4)
            ]
            for amount in amounts:
                c.increment(amount)
            join_all(threads)
            finals.append((c.value, c.snapshot().nodes))
        assert finals[0] == finals[1]

    def test_immediate_checks_do_not_touch_the_lock(self):
        """With the value already reached, check() must complete even while
        another thread holds the counter lock (the point of the fast path)."""
        c = MonotonicCounter()
        c.increment(5)
        with c._lock:  # an eternally-held lock would deadlock the seed path
            c.check(3)
            c.check(5)

    def test_locked_mode_still_blocks_on_lock(self):
        c = MonotonicCounter(fast_path=False)
        c.increment(5)
        acquired = c._lock.acquire()
        try:
            t = spawn(lambda: c.check(1))
            t.join(timeout=0.2)
            assert t.is_alive()  # parked on the lock: no fast path
        finally:
            assert acquired
            c._lock.release()
            t.join(timeout=10)
            assert not t.is_alive()


class TestIncrementFastPath:
    def test_waiterless_increment_skips_release_machinery(self, strategy):
        c = MonotonicCounter(strategy=strategy, stats=True)
        for _ in range(100):
            c.increment(1)
        assert c.stats.nodes_released == 0
        assert c._live_levels == 0
        assert c._draining == {}

    def test_live_counts_track_suspend_release_cycles(self, strategy):
        c = MonotonicCounter(strategy=strategy, stats=True)
        done = threading.Semaphore(0)
        threads = [
            spawn(lambda lv=(i % 4) + 1: (c.check(lv, timeout=30), done.release()))
            for i in range(12)
        ]
        # Wait until all 12 are registered in the incremental tallies.
        wait_until(lambda: c._live_waiters == 12)
        assert c._live_levels == 4
        assert c.stats.max_live_levels == 4
        assert c.stats.max_live_waiters == 12
        c.increment(4)
        for _ in range(12):
            assert done.acquire(timeout=30)
        join_all(threads)
        assert c._live_levels == 0
        assert c._live_waiters == 0

    def test_timeout_rolls_back_live_counts(self, strategy):
        from repro.core import CheckTimeout

        c = MonotonicCounter(strategy=strategy, stats=True)
        for _ in range(5):
            with pytest.raises(CheckTimeout):
                c.check(99, timeout=0.01)
        assert c._live_levels == 0
        assert c._live_waiters == 0
        assert c.snapshot().nodes == ()


class TestStatsOptIn:
    def test_default_counter_carries_the_shared_null_object(self):
        c = MonotonicCounter()
        assert c.stats is NOOP_STATS
        assert isinstance(c.stats, NoopStats)
        assert not c.stats.enabled
        c.increment(3)
        c.check(1)
        assert c.stats.increments == 0
        assert c.stats.checks == 0
        assert c.stats.snapshot() == CounterStats()

    def test_opt_in_counter_records(self):
        c = MonotonicCounter(stats=True)
        assert c.stats.enabled
        c.increment(3)
        c.check(1)
        assert c.stats.increments == 1
        assert c.stats.immediate_checks == 1

    def test_null_object_is_immutable(self):
        with pytest.raises(AttributeError):
            NOOP_STATS.increments = 1
