"""Reproduction of the paper's Figure 2 — experiment E2.

Figure 2 traces the internal structure of a counter ``c`` through:

  (a) construction                       -> value 0, no nodes
  (b) ``c.Check(5)`` by thread T1        -> value 0, [5: 1, not set]
  (c) ``c.Check(9)`` by thread T2        -> value 0, [5: 1, ns] -> [9: 1, ns]
  (d) ``c.Check(5)`` by thread T3        -> value 0, [5: 2, ns] -> [9: 1, ns]
  (e) ``c.Increment(7)`` by thread T0    -> value 7, [5: 2, set] -> [9: 1, ns]
  (f) T1 resumes                         -> value 7, [5: 1, set] -> [9: 1, ns]
  (g) T3 resumes                         -> value 7, [9: 1, ns]

Two reproductions: an exact white-box trace at the wait-list level (fully
deterministic), and an observational trace with real threads where every
snapshot seen must be one of the figure's states (wake order between T1
and T3 is the scheduler's choice, but both orders pass through the same
(f) state, as the figure itself notes).
"""

from __future__ import annotations

from repro.core import CounterSnapshot, MonotonicCounter, WaitNodeSnapshot
from repro.core.waitlist import LinkedWaitList
from tests.helpers import join_all, spawn, wait_until

STATE_A = CounterSnapshot(value=0, nodes=())
STATE_B = CounterSnapshot(value=0, nodes=(WaitNodeSnapshot(5, 1, False),))
STATE_C = CounterSnapshot(
    value=0, nodes=(WaitNodeSnapshot(5, 1, False), WaitNodeSnapshot(9, 1, False))
)
STATE_D = CounterSnapshot(
    value=0, nodes=(WaitNodeSnapshot(5, 2, False), WaitNodeSnapshot(9, 1, False))
)
STATE_E = CounterSnapshot(
    value=7, nodes=(WaitNodeSnapshot(5, 2, True), WaitNodeSnapshot(9, 1, False))
)
STATE_F = CounterSnapshot(
    value=7, nodes=(WaitNodeSnapshot(5, 1, True), WaitNodeSnapshot(9, 1, False))
)
STATE_G = CounterSnapshot(value=7, nodes=(WaitNodeSnapshot(9, 1, False),))


class TestFigure2WhiteBox:
    """Deterministic node-for-node trace over the §7 data structure."""

    def test_full_trace(self):
        waitlist = LinkedWaitList()
        value = 0

        def snap() -> CounterSnapshot:
            return CounterSnapshot(value=value, nodes=tuple(n.snapshot() for n in waitlist))

        # (a) construction
        assert snap() == STATE_A
        # (b) Check(5) by T1
        node5 = waitlist.find_or_insert(5)
        node5.count += 1
        assert snap() == STATE_B
        # (c) Check(9) by T2
        node9 = waitlist.find_or_insert(9)
        node9.count += 1
        assert snap() == STATE_C
        # (d) Check(5) by T3 reuses the level-5 node
        assert waitlist.find_or_insert(5) is node5
        node5.count += 1
        assert snap() == STATE_D
        # (e) Increment(7): value reaches 7, level-5 node released and set
        value += 7
        released = waitlist.release_through(value)
        assert released == [node5]
        node5.released = True  # set under the counter lock in increment()
        node5.signal()  # the coalesced wake pass, outside the counter lock
        observed = CounterSnapshot(
            value=value, nodes=(node5.snapshot(),) + tuple(n.snapshot() for n in waitlist)
        )
        assert observed == STATE_E
        # (f) T1 resumes: decrements the count
        node5.count -= 1
        observed = CounterSnapshot(
            value=value, nodes=(node5.snapshot(),) + tuple(n.snapshot() for n in waitlist)
        )
        assert observed == STATE_F
        # (g) T3 resumes: count hits zero, node deallocated
        node5.count -= 1
        assert node5.count == 0
        assert snap() == STATE_G


class TestFigure2Observational:
    """The same trace with real threads and the public API."""

    def test_states_a_through_d_exact(self):
        c = MonotonicCounter()
        assert c.snapshot() == STATE_A

        t1 = spawn(lambda: c.check(5), name="T1")
        wait_until(lambda: c.snapshot() == STATE_B)

        t2 = spawn(lambda: c.check(9), name="T2")
        wait_until(lambda: c.snapshot() == STATE_C)

        t3 = spawn(lambda: c.check(5), name="T3")
        wait_until(lambda: c.snapshot() == STATE_D)

        c.increment(7)  # (e): releases T1 and T3
        # After the dust settles only T2's node remains: state (g).
        wait_until(lambda: c.snapshot() == STATE_G)
        c.increment(2)  # release T2 so the threads join
        join_all([t1, t2, t3])

    def test_every_observed_state_is_a_figure_state(self):
        """Between (e) and (g) the only possible structures are the
        figure's: [5 set 2], [5 set 1], then [9] alone."""
        c = MonotonicCounter()
        threads = [
            spawn(lambda: c.check(5), name="T1"),
            spawn(lambda: c.check(9), name="T2"),
            spawn(lambda: c.check(5), name="T3"),
        ]
        wait_until(lambda: c.snapshot() == STATE_D)
        c.increment(7)
        seen = set()
        while True:
            snapshot = c.snapshot()
            assert snapshot in (STATE_E, STATE_F, STATE_G), f"non-figure state {snapshot}"
            seen.add(snapshot.nodes)
            if snapshot == STATE_G:
                break
        c.increment(2)
        join_all(threads)

    def test_wake_order_does_not_matter(self):
        """Run the trace many times; the end state is always (g) —
        monotonicity makes the release deterministic regardless of which
        of T1/T3 the OS wakes first."""
        for _ in range(20):
            c = MonotonicCounter()
            threads = [
                spawn(lambda: c.check(5)),
                spawn(lambda: c.check(9)),
                spawn(lambda: c.check(5)),
            ]
            wait_until(lambda: c.snapshot() == STATE_D)
            c.increment(7)
            wait_until(lambda: c.snapshot() == STATE_G)
            c.increment(2)
            join_all(threads)
