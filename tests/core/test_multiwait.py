"""Tests for multi-counter waits (check_all / checkpoint / barrier_levels)."""

from __future__ import annotations

import pytest

from repro.core import (
    CheckTimeout,
    CounterValueError,
    MonotonicCounter,
    barrier_levels,
    check_all,
    checkpoint,
)
from tests.helpers import join_all, spawn


class TestCheckAll:
    def test_all_satisfied_returns_immediately(self):
        a, b = MonotonicCounter(), MonotonicCounter()
        a.increment(2)
        b.increment(3)
        check_all([(a, 2), (b, 3), (a, 0)])

    def test_empty_conditions(self):
        check_all([])

    def test_waits_for_every_condition(self):
        a, b = MonotonicCounter(), MonotonicCounter()
        done = []
        thread = spawn(lambda: (check_all([(a, 1), (b, 1)]), done.append(True)))
        a.increment(1)
        thread.join(0.05)
        assert not done, "check_all returned with one condition unmet"
        b.increment(1)
        join_all([thread])
        assert done == [True]

    def test_order_independence(self):
        """Stability: conditions satisfied in the 'wrong' order still pass
        — a satisfied condition cannot unsatisfy."""
        a, b = MonotonicCounter(), MonotonicCounter()
        done = []
        thread = spawn(lambda: (check_all([(a, 1), (b, 1)]), done.append(True)))
        b.increment(1)  # second condition first
        a.increment(1)
        join_all([thread])
        assert done == [True]

    def test_shared_timeout_budget(self):
        a, b = MonotonicCounter(), MonotonicCounter()
        a.increment(1)
        with pytest.raises(CheckTimeout):
            check_all([(a, 1), (b, 1)], timeout=0.02)

    def test_timeout_zero_passes_iff_all_satisfied(self):
        a = MonotonicCounter()
        a.increment(5)
        check_all([(a, 5)], timeout=0)
        with pytest.raises(CheckTimeout):
            check_all([(a, 6)], timeout=0)

    def test_validation(self):
        a = MonotonicCounter()
        with pytest.raises(CounterValueError):
            check_all([(a, -1)])
        with pytest.raises(TypeError):
            check_all([("not a counter", 1)])
        with pytest.raises(CounterValueError):
            check_all([(a, 0)], timeout=-1)

    def test_mixed_implementations(self):
        from repro.core import BroadcastCounter

        a = MonotonicCounter(strategy="heap")
        b = BroadcastCounter()
        a.increment(1)
        b.increment(1)
        check_all([(a, 1), (b, 1)])


class TestCheckpoint:
    def test_waits_for_common_level(self):
        counters = [MonotonicCounter() for _ in range(4)]
        done = []
        thread = spawn(lambda: (checkpoint(counters, 2), done.append(True)))
        for counter in counters:
            counter.increment(1)
        thread.join(0.05)
        assert not done
        for counter in counters:
            counter.increment(1)
        join_all([thread])
        assert done == [True]

    def test_pipeline_join_use_case(self):
        """N producer stages each announce steps on their own counter; a
        consumer joins on 'everyone finished step k'."""
        from repro.structured import ThreadScope

        counters = [MonotonicCounter(name=f"stage{i}") for i in range(3)]
        joined_at = []

        def producer(i):
            for _ in range(5):
                counters[i].increment(1)

        def consumer():
            for step in range(1, 6):
                checkpoint(counters, step, timeout=10)
                joined_at.append(step)

        with ThreadScope() as scope:
            scope.spawn(consumer)
            for i in range(3):
                scope.spawn(producer, i)
        assert joined_at == [1, 2, 3, 4, 5]


class TestBarrierLevels:
    def test_formula(self):
        assert barrier_levels(0, 4) == 4
        assert barrier_levels(2, 4) == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            barrier_levels(-1, 4)
        with pytest.raises(ValueError):
            barrier_levels(0, 0)

    def test_matches_counter_barrier_behaviour(self):
        from repro.structured import multithreaded_for
        from repro.sync import CounterBarrier

        barrier = CounterBarrier(3)

        def party(_):
            for _ in range(4):
                barrier.pass_()

        multithreaded_for(party, range(3))
        assert barrier.counter.value == barrier_levels(3, 3)
