"""Tests for multi-counter waits (MultiWait / check_all / checkpoint)."""

from __future__ import annotations

import pytest

from repro.core import (
    BroadcastCounter,
    CheckTimeout,
    CounterValueError,
    MonotonicCounter,
    MultiWait,
    ShardedCounter,
    barrier_levels,
    check_all,
    checkpoint,
)
from tests.helpers import join_all, spawn, wait_until


def _no_wait_nodes(counter) -> bool:
    """True when the counter has reclaimed every wait node."""
    return counter.snapshot().waiting_levels == ()


class TestCheckAll:
    def test_all_satisfied_returns_immediately(self):
        a, b = MonotonicCounter(), MonotonicCounter()
        a.increment(2)
        b.increment(3)
        check_all([(a, 2), (b, 3), (a, 0)])

    def test_empty_conditions(self):
        check_all([])

    def test_waits_for_every_condition(self):
        a, b = MonotonicCounter(), MonotonicCounter()
        done = []
        thread = spawn(lambda: (check_all([(a, 1), (b, 1)]), done.append(True)))
        a.increment(1)
        thread.join(0.05)
        assert not done, "check_all returned with one condition unmet"
        b.increment(1)
        join_all([thread])
        assert done == [True]

    def test_order_independence(self):
        """Stability: conditions satisfied in the 'wrong' order still pass
        — a satisfied condition cannot unsatisfy."""
        a, b = MonotonicCounter(), MonotonicCounter()
        done = []
        thread = spawn(lambda: (check_all([(a, 1), (b, 1)]), done.append(True)))
        b.increment(1)  # second condition first
        a.increment(1)
        join_all([thread])
        assert done == [True]

    def test_shared_timeout_budget(self):
        a, b = MonotonicCounter(), MonotonicCounter()
        a.increment(1)
        with pytest.raises(CheckTimeout):
            check_all([(a, 1), (b, 1)], timeout=0.02)

    def test_timeout_zero_passes_iff_all_satisfied(self):
        a = MonotonicCounter()
        a.increment(5)
        check_all([(a, 5)], timeout=0)
        with pytest.raises(CheckTimeout):
            check_all([(a, 6)], timeout=0)

    def test_validation(self):
        a = MonotonicCounter()
        with pytest.raises(CounterValueError):
            check_all([(a, -1)])
        with pytest.raises(TypeError):
            check_all([("not a counter", 1)])
        with pytest.raises(CounterValueError):
            check_all([(a, 0)], timeout=-1)

    def test_mixed_implementations(self):
        from repro.core import BroadcastCounter

        a = MonotonicCounter(strategy="heap")
        b = BroadcastCounter()
        a.increment(1)
        b.increment(1)
        check_all([(a, 1), (b, 1)])


class TestCheckpoint:
    def test_waits_for_common_level(self):
        counters = [MonotonicCounter() for _ in range(4)]
        done = []
        thread = spawn(lambda: (checkpoint(counters, 2), done.append(True)))
        for counter in counters:
            counter.increment(1)
        thread.join(0.05)
        assert not done
        for counter in counters:
            counter.increment(1)
        join_all([thread])
        assert done == [True]

    def test_pipeline_join_use_case(self):
        """N producer stages each announce steps on their own counter; a
        consumer joins on 'everyone finished step k'."""
        from repro.structured import ThreadScope

        counters = [MonotonicCounter(name=f"stage{i}") for i in range(3)]
        joined_at = []

        def producer(i):
            for _ in range(5):
                counters[i].increment(1)

        def consumer():
            for step in range(1, 6):
                checkpoint(counters, step, timeout=10)
                joined_at.append(step)

        with ThreadScope() as scope:
            scope.spawn(consumer)
            for i in range(3):
                scope.spawn(producer, i)
        assert joined_at == [1, 2, 3, 4, 5]


class TestBarrierLevels:
    def test_formula(self):
        assert barrier_levels(0, 4) == 4
        assert barrier_levels(2, 4) == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            barrier_levels(-1, 4)
        with pytest.raises(ValueError):
            barrier_levels(0, 0)

    def test_matches_counter_barrier_behaviour(self):
        from repro.structured import multithreaded_for
        from repro.sync import CounterBarrier

        barrier = CounterBarrier(3)

        def party(_):
            for _ in range(4):
                barrier.pass_()

        multithreaded_for(party, range(3))
        assert barrier.counter.value == barrier_levels(3, 3)


def _implementations():
    return [
        pytest.param(lambda: MonotonicCounter(strategy="linked"), id="linked"),
        pytest.param(lambda: MonotonicCounter(strategy="heap"), id="heap"),
        pytest.param(BroadcastCounter, id="broadcast"),
        pytest.param(ShardedCounter, id="sharded"),
    ]


class TestMultiWait:
    def test_already_satisfied_recorded_at_construction(self):
        a, b = MonotonicCounter(), MonotonicCounter()
        a.increment(3)
        with MultiWait([(a, 2), (b, 1), (a, 3)]) as mw:
            assert mw.satisfied == {0, 2}
            assert len(mw) == 3

    def test_wait_all_blocks_until_every_condition(self):
        a, b = MonotonicCounter(), MonotonicCounter()
        done = []
        with MultiWait([(a, 1), (b, 2)]) as mw:
            thread = spawn(lambda: (mw.wait_all(), done.append(True)))
            a.increment(1)
            b.increment(1)
            thread.join(0.05)
            assert not done, "wait_all returned with one condition unmet"
            b.increment(1)
            join_all([thread])
        assert done == [True]
        assert _no_wait_nodes(a) and _no_wait_nodes(b)

    def test_wait_any_returns_satisfied_indices(self):
        a, b = MonotonicCounter(), MonotonicCounter()
        with MultiWait([(a, 1), (b, 1)]) as mw:
            thread = spawn(b.increment, 1)
            got = mw.wait_any(timeout=10)
            join_all([thread])
            assert 1 in got
            assert got <= {0, 1}

    def test_waiter_parks_once_for_many_conditions(self):
        """The point of the subscription strategy: one park, not k parks."""
        counters = [MonotonicCounter() for _ in range(8)]
        with MultiWait([(c, 1) for c in counters]) as mw:
            done = []
            thread = spawn(lambda: (mw.wait_all(), done.append(True)))
            for c in counters:
                c.increment(1)
            join_all([thread])
            assert done == [True]
        # No counter ever saw a suspended checker: satisfaction was
        # delivered purely through subscription callbacks.
        for c in counters:
            assert c.stats.suspended_checks == 0

    def test_timeout_raises_check_timeout(self):
        a = MonotonicCounter()
        with MultiWait([(a, 1)]) as mw:
            with pytest.raises(CheckTimeout):
                mw.wait_all(timeout=0.02)
            with pytest.raises(CheckTimeout):
                mw.wait_any(timeout=0.02)
        assert _no_wait_nodes(a)

    def test_close_reclaims_wait_nodes(self):
        a, b = MonotonicCounter(), MonotonicCounter()
        mw = MultiWait([(a, 5), (b, 7)])
        assert a.snapshot().waiting_levels == (5,)
        assert b.snapshot().waiting_levels == (7,)
        mw.close()
        assert _no_wait_nodes(a) and _no_wait_nodes(b)
        # Idempotent, and waiting after close is refused.
        mw.close()
        with pytest.raises(RuntimeError):
            mw.wait_all(timeout=0)

    def test_subscription_shares_node_with_checker(self):
        """A subscription at a level where a thread is parked must not
        add a second wait node (storage stays O(distinct levels))."""
        a = MonotonicCounter()
        thread = spawn(a.check, 4)
        wait_until(lambda: a.snapshot().total_waiters == 1)
        with MultiWait([(a, 4)]) as mw:
            assert a.snapshot().waiting_levels == (4,)
            a.increment(4)
            mw.wait_all(timeout=10)
            join_all([thread])
        assert _no_wait_nodes(a)

    def test_non_subscribable_counter_rejected(self):
        from repro.determinism import TraceContext, TracedCounter

        traced = TracedCounter(TraceContext())
        with pytest.raises(TypeError, match="subscribe"):
            MultiWait([(traced, 1)])

    def test_validation(self):
        a = MonotonicCounter()
        with pytest.raises(CounterValueError):
            MultiWait([(a, -1)])
        with pytest.raises(TypeError):
            MultiWait([("not a counter", 1)])

    @pytest.mark.parametrize("factory", _implementations())
    def test_every_implementation_supports_subscription_waits(self, factory):
        a, b = factory(), factory()
        done = []
        with MultiWait([(a, 2), (b, 1)]) as mw:
            thread = spawn(lambda: (mw.wait_all(timeout=10), done.append(True)))
            a.increment(1)
            b.increment(1)
            a.increment(1)
            join_all([thread])
        assert done == [True]

    def test_mixed_implementations(self):
        a = MonotonicCounter(strategy="heap")
        b = BroadcastCounter()
        c = ShardedCounter()
        with MultiWait([(a, 1), (b, 1), (c, 1)]) as mw:
            threads = [spawn(x.increment, 1) for x in (a, b, c)]
            mw.wait_all(timeout=10)
            join_all(threads)
            assert mw.satisfied == {0, 1, 2}

    def test_check_all_works_without_subscribe(self):
        """check_all is sequential, so counters without ``subscribe``
        (traced counters record each ``check`` literally for the
        determinism harness) work unchanged."""
        from repro.determinism import TraceContext, TracedCounter

        context = TraceContext()
        a, b = TracedCounter(context), TracedCounter(context)
        assert not callable(getattr(a, "subscribe", None))
        a.increment(1)
        b.increment(1)
        check_all([(a, 1), (b, 1)])
        check_all([(a, 1), (b, 1)], timeout=1)
