"""Hypothesis properties: MultiWait agrees with the sequential strategy.

``MultiWait`` (subscriptions + one park) and ``check_all`` (sequential
checks, correct by stability) implement the same predicate: *all of
these ``(counter, level)`` conditions hold*.  For any levels and any
counter values, the two strategies — and the raw per-condition
comparison — must agree exactly on which conditions are satisfied and
on whether the conjunction/disjunction holds.  Deliveries here are
synchronous (callbacks run in the incrementing thread), so the
properties are deterministic; the raciness of deliveries is the
province of ``tests/testkit/test_multiwait_interleave.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import MonotonicCounter
from repro.core.errors import CheckTimeout
from repro.core.multiwait import MultiWait, check_all

# A scenario: n counters with target values, m conditions referencing them.
scenarios = st.integers(1, 4).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 8), min_size=n, max_size=n),  # final values
        st.lists(  # conditions: (counter index, level)
            st.tuples(st.integers(0, n - 1), st.integers(0, 10)),
            min_size=1,
            max_size=6,
        ),
    )
)


def _expected(values, conditions):
    return frozenset(
        index
        for index, (counter_index, level) in enumerate(conditions)
        if values[counter_index] >= level
    )


@given(scenario=scenarios)
def test_satisfied_set_matches_direct_comparison(scenario):
    """Counters already at their final values: registration alone must
    classify every condition exactly."""
    values, conditions = scenario
    counters = [MonotonicCounter() for _ in values]
    for counter, value in zip(counters, values):
        counter.increment(value)
    pairs = [(counters[ci], level) for ci, level in conditions]
    expected = _expected(values, conditions)

    with MultiWait(pairs) as mw:
        assert mw.satisfied == expected
        # wait_all succeeds instantly iff the conjunction holds.
        if len(expected) == len(conditions):
            mw.wait_all(timeout=0)
        else:
            with pytest.raises(CheckTimeout):
                mw.wait_all(timeout=0)
        # wait_any succeeds instantly iff the disjunction holds, and
        # reports the full satisfied set, not an arbitrary winner.
        if expected:
            assert mw.wait_any(timeout=0) == expected
        else:
            with pytest.raises(CheckTimeout):
                mw.wait_any(timeout=0)

    # The sequential strategy must reach the same verdict on the
    # conjunction.
    if len(expected) == len(conditions):
        check_all(pairs, timeout=0)
    else:
        with pytest.raises(CheckTimeout):
            check_all(pairs, timeout=0)


@given(scenario=scenarios)
def test_incremental_deliveries_accumulate_to_the_same_set(scenario):
    """Register first, increment after: synchronous callback delivery
    must grow the satisfied set to exactly the direct comparison, one
    increment at a time, and never shrink it (stability)."""
    values, conditions = scenario
    counters = [MonotonicCounter() for _ in values]
    pairs = [(counters[ci], level) for ci, level in conditions]

    with MultiWait(pairs) as mw:
        reached = [0] * len(values)
        previous = mw.satisfied
        for counter_index, value in enumerate(values):
            for _ in range(value):
                counters[counter_index].increment(1)
                reached[counter_index] += 1
                now = mw.satisfied
                assert now >= previous  # stability: only ever grows
                assert now == _expected(reached, conditions)
                previous = now
        assert mw.satisfied == _expected(values, conditions)
        if len(mw.satisfied) == len(conditions):
            mw.wait_all(timeout=0)

    # Close cancelled the unfired subscriptions: every counter is left
    # reusable with no waiter residue.
    for counter in counters:
        counter.reset()
