"""Every counter in the repo satisfies the one §2 contract.

Conformance matrix over: the three thread counters, the traced counter,
the asyncio counter (via a sync adapter), and the simulator counter (via
a micro-simulation adapter).  Each must expose ``value``/``increment``/
``check`` with identical observable semantics on a shared scenario.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import BroadcastCounter, CounterProtocol, MonotonicCounter, ShardedCounter
from repro.determinism import DeterminismChecker


def make_async_adapter():
    """Run an AsyncCounter under a private loop, synchronously."""
    from repro.aio import AsyncCounter

    class Adapter:
        def __init__(self):
            self._inner = AsyncCounter()

        @property
        def value(self):
            return self._inner.value

        def increment(self, amount=1):
            return self._inner.increment(amount)

        def check(self, level, timeout=None):
            async def go():
                await self._inner.check(level, timeout=timeout)

            asyncio.run(go())

    return Adapter()


IMPLEMENTATIONS = {
    "linked": lambda: MonotonicCounter(strategy="linked"),
    "linked-locked": lambda: MonotonicCounter(strategy="linked", fast_path=False),
    "heap": lambda: MonotonicCounter(strategy="heap"),
    "broadcast": BroadcastCounter,
    # batch=1 publishes every increment: exact, fully synchronous semantics.
    "sharded": lambda: ShardedCounter(batch=1),
    "traced": lambda: DeterminismChecker().counter("c"),
    "async-adapter": make_async_adapter,
}


@pytest.fixture(params=sorted(IMPLEMENTATIONS))
def impl(request):
    return IMPLEMENTATIONS[request.param]()


class TestConformance:
    def test_satisfies_protocol(self, impl):
        assert isinstance(impl, CounterProtocol)

    def test_shared_scenario(self, impl):
        """The same op script must observe the same values everywhere."""
        assert impl.value == 0
        assert impl.increment(0) == 0
        assert impl.increment(2) == 2
        assert impl.increment() == 3
        impl.check(0)
        impl.check(3)
        assert impl.value == 3

    def test_rejects_bad_operands(self, impl):
        from repro.core import CounterValueError

        with pytest.raises(CounterValueError):
            impl.increment(-1)
        with pytest.raises(CounterValueError):
            impl.check(-1)

    def test_timeout_semantics(self, impl):
        from repro.core import CheckTimeout

        impl.increment(1)
        impl.check(1, timeout=5)  # satisfied: no exception
        with pytest.raises(CheckTimeout):
            impl.check(99, timeout=0.01)

    def test_value_never_decreases_over_script(self, impl):
        last = impl.value
        for amount in (3, 0, 1, 5, 0, 2):
            value = impl.increment(amount)
            assert value >= last
            last = value


class TestSimCounterConformance:
    """SimCounter lives in virtual time, so its conformance scenario runs
    inside a micro-simulation."""

    def test_shared_scenario(self):
        from repro.simthread import Simulation

        sim = Simulation()
        counter = sim.counter("c")
        observed = []

        def script():
            yield counter.increment(0)
            yield counter.increment(2)
            yield counter.increment(1)
            yield counter.check(0)
            yield counter.check(3)
            observed.append(counter.value)

        sim.spawn(script())
        sim.run()
        assert observed == [3]

    def test_blocking_semantics(self):
        from repro.simthread import Compute, Simulation

        sim = Simulation()
        counter = sim.counter("c")
        wake = []

        def producer():
            yield Compute(5.0)
            yield counter.increment(3)

        def consumer():
            yield counter.check(3)
            wake.append(sim.now)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert wake == [5.0]
