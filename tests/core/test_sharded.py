"""ShardedCounter: batching semantics, reconciliation, and differentials.

The sharded counter trades exact per-increment publication for striped,
batched increments.  What must survive the trade:

* ``check`` blocks and wakes exactly like the plain counter (reconciling
  drain + eager flush while checkers are present — no lost wakeups);
* ``value``/``flush`` always produce the exact global total;
* randomized op sequences land every implementation on the same value.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core import (
    BroadcastCounter,
    CheckTimeout,
    CounterValueError,
    MonotonicCounter,
    ShardedCounter,
)
from tests.helpers import join_all, spawn, wait_until


class TestBatching:
    def test_increments_stay_pending_below_batch(self):
        c = ShardedCounter(batch=8, shards=2)
        for _ in range(5):
            c.increment(1)
        assert c.published == 0
        assert c.pending == 5
        assert c.value == 5          # reconciling read drains
        assert c.pending == 0
        assert c.published == 5

    def test_batch_threshold_publishes(self):
        c = ShardedCounter(batch=4, shards=1)
        assert c.increment(3) == 0   # lower bound: still pending
        assert c.increment(1) == 4   # batch reached: exact value back
        assert c.published == 4

    def test_batch_one_is_exact_and_synchronous(self):
        c = ShardedCounter(batch=1, shards=4)
        assert c.increment(2) == 2
        assert c.increment() == 3
        assert c.published == 3

    def test_flush_returns_exact_total(self):
        c = ShardedCounter(batch=100)
        c.increment(7)
        assert c.flush() == 7
        assert c.flush() == 7        # idempotent when nothing is pending

    def test_large_amount_flushes_immediately(self):
        c = ShardedCounter(batch=16)
        assert c.increment(50) == 50

    def test_increment_zero_is_a_noop(self):
        c = ShardedCounter(batch=1)
        assert c.increment(0) == 0
        assert c.value == 0


class TestCheckSemantics:
    def test_check_sees_unflushed_increments(self):
        c = ShardedCounter(batch=1_000)
        c.increment(5)
        c.check(5, timeout=5)        # must reconcile, not time out
        assert c.published == 5

    def test_suspended_check_woken_despite_batching(self):
        """The lost-wakeup scenario: a parked checker, producers whose
        increments never reach the batch threshold."""
        c = ShardedCounter(batch=1_000_000, shards=2)
        done = threading.Semaphore(0)
        t = spawn(lambda: (c.check(10, timeout=30), done.release()))
        wait_until(lambda: c.snapshot().total_waiters == 1)
        producers = [spawn(lambda: [c.increment(1) for _ in range(5)]) for _ in range(2)]
        assert done.acquire(timeout=30)
        join_all(producers + [t])
        assert c.value == 10

    def test_immediate_check_after_publication(self):
        c = ShardedCounter(batch=1)
        c.increment(3)
        c.check(3)
        c.check(0)

    def test_check_timeout(self):
        c = ShardedCounter(batch=1)
        c.increment(1)
        with pytest.raises(CheckTimeout):
            c.check(99, timeout=0.01)

    def test_reset_and_reuse(self):
        c = ShardedCounter(batch=4)
        c.increment(3)
        c.reset()
        assert c.value == 0
        c.increment(2)
        assert c.value == 2


class TestValidation:
    def test_operands_validated(self):
        c = ShardedCounter()
        with pytest.raises(CounterValueError):
            c.increment(-1)
        with pytest.raises(CounterValueError):
            c.check(-1)
        with pytest.raises(CounterValueError):
            c.check(0, timeout="soon")

    def test_constructor_validated(self):
        with pytest.raises(ValueError):
            ShardedCounter(shards=0)
        with pytest.raises(ValueError):
            ShardedCounter(batch=0)
        with pytest.raises(ValueError):
            ShardedCounter(shards=True)

    def test_repr_shows_shape(self):
        c = ShardedCounter(shards=3, batch=7, name="fanin")
        assert "fanin" in repr(c)
        assert "shards=3" in repr(c)
        assert "batch=7" in repr(c)


class TestDifferential:
    """Randomized op sequences: every implementation, same final state."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sequential_op_sequences_agree(self, seed):
        rng = random.Random(seed)
        amounts = [rng.randrange(0, 5) for _ in range(300)]
        total = sum(amounts)
        check_levels = [rng.randrange(0, total + 1) for _ in range(40)]

        implementations = {
            "linked": MonotonicCounter(strategy="linked"),
            "heap": MonotonicCounter(strategy="heap"),
            "broadcast": BroadcastCounter(),
            "sharded-1": ShardedCounter(batch=1),
            "sharded-16": ShardedCounter(batch=16, shards=3),
            "sharded-big": ShardedCounter(batch=10_000),
        }
        finals = {}
        for name, impl in implementations.items():
            running = 0
            for amount in amounts:
                impl.increment(amount)
                running += amount
                # Reconciling read must match the exact running total.
                assert impl.value == running, name
            for level in check_levels:
                impl.check(level, timeout=5)  # all satisfied: no timeout
            finals[name] = impl.value
        assert set(finals.values()) == {total}

    @pytest.mark.parametrize("batch", [1, 8, 1_000])
    def test_threaded_producers_agree_with_plain_counter(self, batch):
        """P producers × N increments, C checkers on the final total: the
        sharded counter must land on the same value and wake everyone."""
        producers, per_producer = 4, 250
        total = producers * per_producer
        reference = MonotonicCounter()
        sharded = ShardedCounter(batch=batch, shards=4)
        for impl in (reference, sharded):
            done = threading.Semaphore(0)
            checkers = [
                spawn(lambda lv=lv: (impl.check(lv, timeout=30), done.release()))
                for lv in (1, total // 2, total)
            ]
            threads = [
                spawn(lambda: [impl.increment(1) for _ in range(per_producer)])
                for _ in range(producers)
            ]
            for _ in range(3):
                assert done.acquire(timeout=30)
            join_all(threads + checkers)
            assert impl.value == total

    def test_stats_delegation(self):
        c = ShardedCounter(batch=1, stats=True)
        c.increment(2)
        c.check(1)
        assert c.stats.enabled
        assert c.stats.increments == 1   # publications, not calls
        assert c.stats.immediate_checks >= 1
        assert ShardedCounter().stats.enabled is False
