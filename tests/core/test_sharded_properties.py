"""Hypothesis properties for the sharded counter's deferral contract.

The sharded counter's one semantic liberty is *deferral*: an increment
may park its amount in a shard instead of publishing it.  Everything
else is contractual and property-testable:

* **no under-reporting** — ``increment``'s return and ``published`` are
  lower bounds on the true total; ``value``/``flush`` (the reconciling
  reads) report it exactly, for every shard/batch geometry;
* **eager flush** — while any checker or live subscription is
  registered, deferral switches off: nothing stays pending;
* **batch=1** — restores exact synchronous semantics increment by
  increment.

Single-threaded on purpose: Hypothesis shrinks deterministic sequences
beautifully and these invariants don't need real contention to bind —
the adversarial-interleaving side lives in
``tests/testkit/test_sharded_interleave.py``.
"""

from __future__ import annotations

import threading

from hypothesis import given, settings, strategies as st

from repro.core.sharded import ShardedCounter

amounts_lists = st.lists(st.integers(min_value=0, max_value=20), max_size=30)
geometries = st.tuples(st.integers(1, 4), st.integers(1, 8))  # (shards, batch)


@given(geometry=geometries, amounts=amounts_lists)
def test_reconciling_reads_never_under_report(geometry, amounts):
    shards, batch = geometry
    counter = ShardedCounter(shards=shards, batch=batch)
    total = 0
    for amount in amounts:
        returned = counter.increment(amount)
        total += amount
        # The return and the lock-free published view are lower bounds...
        assert 0 <= returned <= total
        assert counter.published <= total
        # ...and deferral is bounded by the batch: a shard never keeps a
        # tally at or above the threshold past an increment.
        assert counter.pending <= (batch - 1) * shards
    # The reconciling read is exact, and reconciling is idempotent.
    assert counter.value == total
    assert counter.value == total
    assert counter.pending == 0
    assert counter.flush() == total


@given(geometry=geometries, amounts=amounts_lists)
def test_batch_one_is_exact_every_step(geometry, amounts):
    shards, _ = geometry
    counter = ShardedCounter(shards=shards, batch=1)
    total = 0
    for amount in amounts:
        total += amount
        assert counter.increment(amount) == total
        assert counter.published == total
        assert counter.pending == 0


@given(geometry=geometries, amounts=amounts_lists)
def test_live_subscription_forces_eager_flush(geometry, amounts):
    """With a checker registered, batching must switch off: every single
    increment publishes, so nothing is ever pending and the subscription
    fires on exactly the increment that reaches its level."""
    shards, batch = geometry
    counter = ShardedCounter(shards=shards, batch=batch)
    target = sum(amounts) + 1  # unreachable: subscription stays live
    fired = []
    subscription = counter.subscribe(target, lambda: fired.append(True))
    assert subscription is not None
    try:
        total = 0
        for amount in amounts:
            total += amount
            # Eager mode: the return value is exact, nothing parked.
            assert counter.increment(amount) == total
            assert counter.pending == 0
        assert not fired
    finally:
        subscription.cancel()
    with counter._checkers_lock:
        assert counter._checkers == 0
    # With the last checker gone, deferral is allowed again.
    counter.increment(1)
    assert counter.value == sum(amounts) + 1


@given(
    geometry=geometries,
    per_thread=st.lists(
        st.lists(st.integers(0, 10), max_size=10), min_size=1, max_size=4
    ),
)
@settings(max_examples=25, deadline=None)
def test_threaded_totals_are_exact_after_reconcile(geometry, per_thread):
    """Real threads, arbitrary amount splits: the reconciling read equals
    the grand total regardless of which shard each thread landed on."""
    shards, batch = geometry
    counter = ShardedCounter(shards=shards, batch=batch)

    def worker(mine):
        for amount in mine:
            counter.increment(amount)

    threads = [
        threading.Thread(target=worker, args=(mine,)) for mine in per_thread
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == sum(sum(mine) for mine in per_thread)
    assert counter.pending == 0
