"""Counter statistics and snapshot accounting (§7 complexity observables)."""

from __future__ import annotations

import threading

import pytest

from repro.core import CounterSnapshot, MonotonicCounter, WaitNodeSnapshot
from repro.core.stats import CounterStats
from tests.helpers import join_all, spawn, wait_until


class TestCounterStats:
    def test_increment_and_immediate_check_tallies(self):
        c = MonotonicCounter(stats=True)
        c.increment(5)
        c.increment(2)
        c.check(3)
        c.check(7)
        assert c.stats.increments == 2
        assert c.stats.immediate_checks == 2
        assert c.stats.suspended_checks == 0
        assert c.stats.checks == 2

    def test_suspended_check_and_node_tallies(self):
        c = MonotonicCounter(stats=True)
        threads = [spawn(lambda: c.check(5)) for _ in range(3)]
        threads.append(spawn(lambda: c.check(9)))
        wait_until(lambda: c.snapshot().total_waiters == 4)
        c.increment(9)
        join_all(threads)
        assert c.stats.suspended_checks == 4
        assert c.stats.nodes_created == 2       # two distinct levels
        assert c.stats.nodes_released == 2
        assert c.stats.threads_woken == 4
        assert c.stats.max_live_levels == 2     # L, not W
        assert c.stats.max_live_waiters == 4

    def test_timeout_tally(self):
        from repro.core import CheckTimeout

        c = MonotonicCounter(stats=True)
        with pytest.raises(CheckTimeout):
            c.check(1, timeout=0.01)
        assert c.stats.timeouts == 1

    def test_stats_snapshot_is_detached(self):
        c = MonotonicCounter(stats=True)
        c.increment(1)
        frozen = c.stats.snapshot()
        c.increment(1)
        assert frozen.increments == 1
        assert c.stats.increments == 2

    def test_note_levels_keeps_high_water(self):
        stats = CounterStats()
        stats.note_levels(3, 10)
        stats.note_levels(2, 20)
        stats.note_levels(5, 5)
        assert stats.max_live_levels == 5
        assert stats.max_live_waiters == 20


class TestSnapshot:
    def test_empty_snapshot(self):
        c = MonotonicCounter()
        snapshot = c.snapshot()
        assert snapshot == CounterSnapshot(value=0, nodes=())
        assert snapshot.waiting_levels == ()
        assert snapshot.total_waiters == 0

    def test_snapshot_is_immutable(self):
        snapshot = CounterSnapshot(value=1, nodes=(WaitNodeSnapshot(2, 1),))
        with pytest.raises(AttributeError):
            snapshot.value = 5
        with pytest.raises(AttributeError):
            snapshot.nodes[0].count = 9

    def test_snapshot_str_renders_chain(self):
        snapshot = CounterSnapshot(
            value=7, nodes=(WaitNodeSnapshot(9, 2, False), WaitNodeSnapshot(12, 1, True))
        )
        text = str(snapshot)
        assert "value=7" in text
        assert "level=9" in text and "count=2" in text and "not set" in text
        assert "level=12" in text and "set" in text

    def test_heap_strategy_snapshot_matches_linked(self):
        """Both §7-style implementations expose the same structure."""
        snapshots = []
        for strategy in ("linked", "heap"):
            c = MonotonicCounter(strategy=strategy)
            threads = [spawn(lambda lv=level: c.check(lv)) for level in (8, 3, 8, 5)]
            wait_until(lambda: c.snapshot().total_waiters == 4)
            snapshots.append(c.snapshot())
            c.increment(8)
            join_all(threads)
        assert snapshots[0] == snapshots[1]
        assert snapshots[0].waiting_levels == (3, 5, 8)

    def test_storage_proportional_to_levels_not_waiters(self):
        """E8's storage claim in miniature: 32 waiters on 4 levels -> 4 nodes."""
        c = MonotonicCounter()
        threads = [spawn(lambda lv=(w % 4) + 1: c.check(lv)) for w in range(32)]
        wait_until(lambda: c.snapshot().total_waiters == 32)
        assert len(c.snapshot().nodes) == 4
        c.increment(4)
        join_all(threads)


class TestWaitingLevelsProperty:
    def test_waiting_levels_shortcut(self):
        c = MonotonicCounter()
        threads = [spawn(lambda lv=level: c.check(lv)) for level in (4, 2)]
        wait_until(lambda: c.snapshot().total_waiters == 2)
        assert c.waiting_levels == (2, 4)
        c.increment(4)
        join_all(threads)
