"""Tests for the subscribe() notification hook on every counter flavor."""

from __future__ import annotations

import threading

import pytest

from repro.core import BroadcastCounter, MonotonicCounter, ShardedCounter
from tests.helpers import join_all, spawn, wait_until

IMPLEMENTATIONS = [
    pytest.param(lambda: MonotonicCounter(strategy="linked"), id="linked"),
    pytest.param(lambda: MonotonicCounter(strategy="heap"), id="heap"),
    pytest.param(BroadcastCounter, id="broadcast"),
    pytest.param(ShardedCounter, id="sharded"),
]


@pytest.mark.parametrize("factory", IMPLEMENTATIONS)
class TestSubscribeContract:
    """Behavior every implementation must share."""

    def test_satisfied_level_returns_none_without_firing(self, factory):
        counter = factory()
        counter.increment(3)
        fired = []
        assert counter.subscribe(3, lambda: fired.append(True)) is None
        assert counter.subscribe(0, lambda: fired.append(True)) is None
        assert fired == []

    def test_callback_fires_exactly_once(self, factory):
        counter = factory()
        fired = []
        subscription = counter.subscribe(2, lambda: fired.append(True))
        assert subscription is not None
        counter.increment(1)
        assert fired == []
        counter.increment(1)
        assert fired == [True]
        counter.increment(5)  # long past the level: no refire
        assert fired == [True]

    def test_cancel_before_fire_suppresses_callback(self, factory):
        counter = factory()
        fired = []
        subscription = counter.subscribe(1, lambda: fired.append(True))
        subscription.cancel()
        subscription.cancel()  # idempotent
        counter.increment(1)
        assert fired == []

    def test_cancel_after_fire_is_noop(self, factory):
        counter = factory()
        fired = []
        subscription = counter.subscribe(1, lambda: fired.append(True))
        counter.increment(1)
        subscription.cancel()
        assert fired == [True]

    def test_multiple_subscribers_one_level(self, factory):
        counter = factory()
        fired = []
        subs = [counter.subscribe(1, lambda i=i: fired.append(i)) for i in range(3)]
        assert all(subs)
        subs[1].cancel()
        counter.increment(1)
        assert sorted(fired) == [0, 2]

    def test_one_increment_fires_multiple_levels(self, factory):
        """The coalesced release delivers every satisfied level's
        callbacks from the single increment."""
        counter = factory()
        fired = []
        for level in (1, 2, 3):
            counter.subscribe(level, lambda level=level: fired.append(level))
        counter.increment(3)
        assert sorted(fired) == [1, 2, 3]

    def test_callback_runs_outside_counter_locks(self, factory):
        """Reading counter state from inside a callback must not
        deadlock — callbacks fire after all counter locks are dropped."""
        counter = factory()
        seen = []
        counter.subscribe(2, lambda: seen.append(counter.value))
        counter.increment(2)
        assert seen == [2]

    def test_validation(self, factory):
        counter = factory()
        with pytest.raises(Exception):
            counter.subscribe(-1, lambda: None)
        with pytest.raises(TypeError):
            counter.subscribe(1, "not callable")


class TestMonotonicNodeSharing:
    """White-box checks of how subscriptions ride the §7 wait nodes."""

    def test_subscription_only_node_is_reclaimed_on_cancel(self):
        counter = MonotonicCounter(stats=True)
        subscription = counter.subscribe(4, lambda: None)
        assert counter.stats.nodes_created == 1
        assert len(counter._waiters) == 1
        subscription.cancel()
        assert len(counter._waiters) == 0
        assert counter._live_levels == 0
        counter.reset()  # refuses if anything leaked

    def test_cancel_keeps_node_with_parked_checker(self):
        counter = MonotonicCounter()
        checker = spawn(counter.check, 4)
        wait_until(lambda: counter.snapshot().total_waiters == 1)
        subscription = counter.subscribe(4, lambda: None)
        assert len(counter._waiters) == 1  # shared node, not a second one
        subscription.cancel()
        assert len(counter._waiters) == 1  # the checker still needs it
        counter.increment(4)
        join_all([checker])
        assert counter.snapshot().waiting_levels == ()

    def test_checker_leaving_keeps_subscription_node(self):
        """A timed-out checker at a level with a live subscription must
        not discard the node out from under the subscriber."""
        from repro.core import CheckTimeout

        counter = MonotonicCounter()
        fired = []
        counter.subscribe(2, lambda: fired.append(True))
        with pytest.raises(CheckTimeout):
            counter.check(2, timeout=0.01)
        assert len(counter._waiters) == 1
        counter.increment(2)
        assert fired == [True]
        assert len(counter._waiters) == 0

    def test_subscriber_fires_from_incrementing_thread(self):
        counter = MonotonicCounter()
        fired_in = []
        counter.subscribe(1, lambda: fired_in.append(threading.current_thread()))
        incrementer = spawn(counter.increment, 1)
        join_all([incrementer])
        assert fired_in == [incrementer]


class TestShardedEagerFlush:
    def test_subscription_forces_eager_publication(self):
        """While a subscription is outstanding the sharded counter must
        publish every increment immediately (no stalling in a shard), so
        the callback arrives from the increment that reaches the level."""
        counter = ShardedCounter()
        fired = []
        counter.subscribe(3, lambda: fired.append(True))
        for _ in range(3):
            counter.increment(1)
        assert fired == [True]

    def test_checker_slot_released_after_fire_and_cancel(self):
        counter = ShardedCounter()
        done = counter.subscribe(1, lambda: None)
        kept = counter.subscribe(5, lambda: None)
        counter.increment(1)  # fires `done`, which releases its slot
        kept.cancel()
        assert counter._checkers == 0
