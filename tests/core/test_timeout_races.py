"""The timeout-vs-increment race, pinned down three ways.

The satellite requirement: a ``check(level, timeout=...)`` whose timeout
expires *concurrently* with the increment that satisfies it must never
lose the wakeup (report a timeout for a satisfied condition) and must
never leak its wait node.  The two-lock protocol makes the adjudication
explicit — ``released`` under the counter lock, ``signaled`` under the
node's private lock — and these tests drive every ordering of that
window:

* **Scripted interleavings** — a stand-in condition variable whose
  ``wait`` returns a scripted verdict lets each ordering of {condvar
  timeout, release, adjudication} be forced deterministically, one test
  per ordering, no sleeps, no luck.
* **Hammer** — many real threads with tiny real timeouts racing real
  increments; every generously-budgeted waiter must succeed and the
  counter must come back quiescent every round.
* **Model** — the schedule explorer exhaustively interleaves the §7
  semantics of a coalesced multi-level release, certifying that *no*
  schedule strands a checker.

Since the test kit landed there is a fourth way: schedule injection over
the real primitives' sync points.  ``tests/testkit/test_scripted_regressions.py``
re-expresses the trapping-``_drain_lock`` preemption below as a pure
schedule (no monkeypatched attributes) and additionally replays it
against a re-introduced pre-fix ``increment`` to show the leak it guards
against.  This file's versions are kept: they test the same windows with
zero harness machinery in the loop.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core import CheckTimeout, MonotonicCounter, PARK_ONLY, WaitPolicy
from repro.simthread import SimCounter
from repro.verify import ExplorerProgram, explore
from tests.helpers import join_all, spawn, wait_until


class ScriptedCondition:
    """Stands in for a wait node's private condition variable.

    The tests choreograph exactly which thread runs when, so no real
    mutual exclusion is needed: ``wait`` delegates to a script (its
    return value is the condvar verdict — ``False`` means "timed out"),
    and leaving the ``with`` block runs a one-shot hook, which is the
    only way to inject work into the gap *between* the condvar verdict
    and the counter-lock adjudication in ``_park``.
    """

    def __init__(self, on_wait=None, on_exit=None):
        self.on_wait = on_wait
        self.on_exit = on_exit
        self.wait_calls = 0
        self._exit_fired = False

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        if self.on_exit is not None and not self._exit_fired:
            self._exit_fired = True
            self.on_exit()
        return False

    def wait(self, timeout=None):
        self.wait_calls += 1
        return self.on_wait() if self.on_wait is not None else False

    def notify_all(self):
        pass


class ScriptedParkCounter(MonotonicCounter):
    """A counter whose parked waiters use scripted condition variables.

    ``condition_factory(node)`` picks the condition for each park; return
    ``node.condition`` to keep the real one.  ``PARK_ONLY`` keeps the
    spin phase out of the way so the scripted park is reached directly.
    """

    def __init__(self, condition_factory, **kwargs):
        super().__init__(policy=PARK_ONLY, stats=True, **kwargs)
        self._condition_factory = condition_factory

    def _park(self, node, level, timeout, deadline, t_parked=None):
        node.condition = self._condition_factory(node)
        return super()._park(node, level, timeout, deadline, t_parked)


def _quiescent(counter) -> None:
    """The counter must be fully reclaimed: no nodes, no draining set."""
    assert counter.snapshot().waiting_levels == ()
    assert not counter._draining
    counter.reset()  # refuses (raises) if any waiter or drainer leaked
    assert counter.value == 0


class TestScriptedInterleavings:
    def test_release_lands_during_condvar_wait(self):
        """Order A: the satisfying increment runs while the waiter is in
        ``Condition.wait`` and the wait *still* reports a timeout (the
        classic spurious-timeout window).  The re-test of ``signaled``
        right after the verdict must turn it into a success."""
        counter = ScriptedParkCounter(
            lambda node: ScriptedCondition(on_wait=lambda: (counter.increment(1), False)[1])
        )
        counter.check(1, timeout=5.0)  # must NOT raise
        assert counter.value == 1
        assert counter.stats.suspended_checks == 1
        assert counter.stats.timeouts == 0
        _quiescent(counter)

    def test_release_lands_between_verdict_and_adjudication(self):
        """Order B: the condvar verdict is a genuine timeout (``signaled``
        still unset), but the increment sneaks in before the waiter
        reaches the counter lock.  Adjudication must see ``released``
        and report success — this is the no-lost-wakeup window."""
        scripted = []

        def factory(node):
            cond = ScriptedCondition(on_exit=lambda: counter.increment(1))
            scripted.append(cond)
            return cond

        counter = ScriptedParkCounter(factory)
        counter.check(1, timeout=5.0)  # must NOT raise
        assert counter.value == 1
        assert counter.stats.timeouts == 0
        assert scripted[0].wait_calls == 1
        _quiescent(counter)

    def test_genuine_timeout_deregisters_cleanly(self):
        """Order C: no increment anywhere.  The timeout must be reported,
        the node reclaimed, and the counter left fully usable."""
        counter = ScriptedParkCounter(lambda node: ScriptedCondition())
        with pytest.raises(CheckTimeout):
            counter.check(3, timeout=5.0)
        assert counter.stats.timeouts == 1
        _quiescent(counter)
        # The counter is not poisoned: normal operation still works.
        counter.increment(3)
        counter.check(3, timeout=0)

    def test_coalesced_release_with_concurrent_timeout_at_one_level(self):
        """One increment releases levels 1 and 2 in a single pass while
        the level-2 waiter is concurrently timing out.  Both waiters must
        succeed and the whole batch must drain."""
        b_parked = threading.Event()
        go = threading.Event()

        def scripted_wait():
            b_parked.set()
            assert go.wait(10)
            return False  # condvar says "timed out" — after the release

        def factory(node):
            if node.level == 2:
                return ScriptedCondition(on_wait=scripted_wait)
            return node.condition  # level 1 keeps its real condition

        counter = ScriptedParkCounter(factory)
        outcomes = []
        a = spawn(lambda: (counter.check(1, timeout=10), outcomes.append("a")))
        b = spawn(lambda: (counter.check(2, timeout=10), outcomes.append("b")))
        assert b_parked.wait(10)
        counter.increment(2)  # one coalesced release pass for both nodes
        go.set()
        join_all([a, b])
        assert sorted(outcomes) == ["a", "b"]
        assert counter.stats.nodes_released == 2
        assert counter.stats.threads_woken == 2
        assert counter.stats.timeouts == 0
        _quiescent(counter)


class _TrapDrainLock:
    """Drop-in for the counter's ``_drain_lock`` trapping its first taker.

    ``increment`` acquires ``_drain_lock`` exactly once, *inside* its
    critical section, to insert the drained nodes — so trapping the
    first acquisition suspends the increment at the most delicate point
    of the release: node unlinked and ``released`` marked, but the
    draining insert (and everything after it) not yet performed.  Later
    acquisitions (the last-leaver pop, snapshot, reset) pass through.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.arrived = threading.Event()
        self.proceed = threading.Event()
        self._trapped = False

    def __enter__(self):
        if not self._trapped:
            self._trapped = True
            self.arrived.set()
            assert self.proceed.wait(10)
        return self._lock.__enter__()

    def __exit__(self, *exc_info):
        return self._lock.__exit__(*exc_info)


class TestIncrementPreemptedMidCriticalSection:
    """Preempt ``increment`` *inside* its critical section.

    A parked waiter reads the node's ``signaled`` flag under only the
    node's private lock, so nothing the increment publishes before its
    critical section is finished may be observable through that flag.
    If ``signaled`` were set early (as it once was), a waiter could wake,
    decrement the node's count to zero, and run the last-leaver
    ``_draining.pop`` *before* the increment's insert — leaking the
    entry forever (``reset()`` poisoned) and leaving ``_live_waiters``
    permanently inflated.  The scripted tests above never preempt
    ``increment`` mid-section; this one does, deterministically.
    """

    def test_release_is_unobservable_until_the_critical_section_ends(self):
        counter = MonotonicCounter(policy=PARK_ONLY, stats=True)
        outcomes = []
        waiter = spawn(lambda: (counter.check(1, timeout=30), outcomes.append("ok")))
        wait_until(lambda: counter.snapshot().waiting_levels == (1,))
        node = next(iter(counter._waiters))
        trap = _TrapDrainLock()
        counter._drain_lock = trap
        incrementer = spawn(counter.increment, 1)
        assert trap.arrived.wait(10)
        # The increment is now suspended mid-critical-section: the node is
        # unlinked and marked released, the draining insert still pending.
        assert node.released
        # The set flag must NOT be observable yet — it is what parked
        # threads synchronize on, under only the node lock.
        assert not node.signaled
        # And indeed no waiter has resumed through the half-done release.
        assert outcomes == []
        assert waiter.is_alive()
        trap.proceed.set()
        join_all([waiter, incrementer])
        assert outcomes == ["ok"]
        assert counter.stats.timeouts == 0
        _quiescent(counter)


class TestTimeoutHammer:
    """Real threads, real (tiny) timeouts, real increments, many rounds."""

    @pytest.mark.parametrize(
        "policy",
        [
            pytest.param(None, id="default-spin"),
            pytest.param(PARK_ONLY, id="park-only"),
            pytest.param(WaitPolicy(spin=8, spin_min=1, spin_max=8), id="tiny-spin"),
        ],
    )
    @pytest.mark.parametrize("strategy", ["linked", "heap"])
    def test_no_lost_wakeups_and_no_leaks(self, strategy, policy):
        rng = random.Random(0xC0FFEE)
        rounds, waiters = 25, 8
        for _ in range(rounds):
            counter = MonotonicCounter(strategy=strategy, policy=policy, stats=True)
            outcomes = [None] * waiters

            def wait(w):
                # Even waiters have a generous budget and MUST succeed;
                # odd waiters race a ~1ms timeout against the increments.
                timeout = 30.0 if w % 2 == 0 else rng.random() * 0.002
                try:
                    counter.check((w % 4) + 1, timeout=timeout)
                    outcomes[w] = "ok"
                except CheckTimeout:
                    outcomes[w] = "timeout"

            threads = [spawn(wait, w) for w in range(waiters)]
            incrementers = [spawn(counter.increment, 2) for _ in range(2)]
            join_all(threads + incrementers)

            assert counter.value == 4
            for w in range(0, waiters, 2):
                assert outcomes[w] == "ok", f"lost wakeup for waiter {w}: {outcomes}"
            assert all(outcome in ("ok", "timeout") for outcome in outcomes)
            assert counter.stats.timeouts == outcomes.count("timeout")
            # Quiescence: every node reclaimed, nothing stuck draining.
            assert counter.snapshot().waiting_levels == ()
            assert not counter._draining
            counter.reset()


class TestModelNoLostWakeups:
    """The schedule explorer certifies the §7 semantics: over *every*
    interleaving, a release covering several levels wakes all of them."""

    def test_coalesced_release_wakes_every_level_in_all_schedules(self):
        def program():
            counter = SimCounter()
            woken = []

            def checker(level):
                yield counter.check(level)
                woken.append(level)

            def incrementer():
                yield counter.increment(3)

            return ExplorerProgram(
                tasks=[checker(1), checker(2), checker(3), incrementer()],
                observe=lambda: tuple(sorted(woken)),
            )

        report = explore(program)
        assert report.deadlocks == 0
        assert report.states == {(1, 2, 3)}
        assert report.deterministic

    def test_split_increments_release_across_schedules(self):
        def program():
            counter = SimCounter()
            woken = []

            def checker(level):
                yield counter.check(level)
                woken.append(level)

            def incrementer(amount):
                yield counter.increment(amount)

            return ExplorerProgram(
                tasks=[checker(1), checker(3), incrementer(2), incrementer(1)],
                observe=lambda: tuple(sorted(woken)),
            )

        report = explore(program)
        assert report.deadlocks == 0
        assert report.states == {(1, 3)}
