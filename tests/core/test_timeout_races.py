"""The timeout-vs-increment race, pinned down three ways.

The satellite requirement: a ``check(level, timeout=...)`` whose timeout
expires *concurrently* with the increment that satisfies it must never
lose the wakeup (report a timeout for a satisfied condition) and must
never leak its wait node.  The engine makes the arbitration explicit —
a timed wait first parks on its raw slot for a bounded grace (where the
release pass is the only possible setter), escalates onto the wheel if
it lingers, and there the entry's one-shot *claim* decides which waker
(release pass or timer sweeper) delivers the slot set; every timeout
verdict, grace expiry or timer claim alike, is only *provisional* until
adjudicated against ``released`` under the counter lock — and these
tests drive every ordering of that window:

* **Scripted interleavings** — deterministic hooks on the counter's
  park seams (after registration / after the timer's provisional
  verdict) let each ordering of {timer claim, release, adjudication}
  be forced, one test per ordering, no luck.
* **Hammer** — many real threads with tiny real timeouts racing real
  increments; every generously-budgeted waiter must succeed and the
  counter must come back quiescent every round.
* **Model** — the schedule explorer exhaustively interleaves the §7
  semantics of a coalesced multi-level release, certifying that *no*
  schedule strands a checker.

Since the test kit landed there is a fourth way: schedule injection over
the real primitives' sync points.  ``tests/testkit/test_scripted_regressions.py``
re-expresses the trapping-``_drain_lock`` preemption below as a pure
schedule (no monkeypatched attributes) and additionally replays it
against a re-introduced pre-fix ``increment`` to show the leak it guards
against.  This file's versions are kept: they test the same windows with
zero harness machinery in the loop.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core import CheckTimeout, MonotonicCounter, PARK_ONLY, WaitPolicy
from repro.core import counter as counter_mod
from repro.core.engine import WheelEntry
from repro.simthread import SimCounter
from repro.verify import ExplorerProgram, explore
from tests.helpers import join_all, spawn, wait_until


class ScriptedParkCounter(MonotonicCounter):
    """A counter with deterministic hooks on the engine's park seams.

    ``on_park(level)`` runs after the wait node (and its engine handle)
    is registered under the counter lock but *before* the thread parks —
    the window where a release can deliver a slot set that the park must
    consume rather than lose.  ``on_verdict(level)`` runs after the
    timer wheel has claimed the entry (the provisional timeout verdict)
    but *before* the counter-lock adjudication — the no-lost-wakeup
    window.  ``PARK_ONLY`` keeps the spin phase out of the way so the
    park is reached directly.
    """

    def __init__(self, on_park=None, on_verdict=None, **kwargs):
        super().__init__(policy=PARK_ONLY, stats=True, **kwargs)
        self._on_park = on_park
        self._on_verdict = on_verdict

    def _park(self, node, waiter, level, timeout, deadline, t_parked=None):
        if self._on_park is not None:
            self._on_park(level)
        return super()._park(node, waiter, level, timeout, deadline, t_parked)

    def _adjudicate_timeout(self, node, entry, level, timeout, t_parked=None):
        if self._on_verdict is not None:
            self._on_verdict(level)
        return super()._adjudicate_timeout(node, entry, level, timeout, t_parked)


def _quiescent(counter) -> None:
    """The counter must be fully reclaimed: no nodes, no draining set."""
    assert counter.snapshot().waiting_levels == ()
    assert not counter._draining
    counter.reset()  # refuses (raises) if any waiter or drainer leaked
    assert counter.value == 0


class TestScriptedInterleavings:
    def test_release_lands_between_verdict_and_adjudication(self):
        """Order A: the timer wheel genuinely fires first and claims the
        entry (provisional timeout verdict), but the increment sneaks in
        before the waiter reaches the counter lock.  Adjudication must
        see ``released`` and report success — this is the no-lost-wakeup
        window.  The release pass meanwhile loses the claim and must
        no-op (nobody double-sets the slot)."""
        counter = ScriptedParkCounter(on_verdict=lambda level: counter.increment(1))
        counter.check(1, timeout=0.005)  # must NOT raise
        assert counter.value == 1
        assert counter.stats.suspended_checks == 1
        assert counter.stats.timeouts == 0
        _quiescent(counter)

    def test_release_lands_before_the_park_consumes_the_pending_set(self):
        """Order B: the increment runs in the registration→park gap, so
        the slot set is delivered *before* ``slot.wait()`` begins.
        Semaphore semantics must bank it: the park consumes the pending
        set and returns success immediately."""
        counter = ScriptedParkCounter(on_park=lambda level: counter.increment(1))
        counter.check(1, timeout=10.0)  # must NOT raise, and not wait 10s
        assert counter.value == 1
        assert counter.stats.timeouts == 0
        _quiescent(counter)

    def test_release_beats_the_instant_probe_claim(self):
        """Order B', instant-probe variant: ``timeout=0`` never arms the
        wheel — the parker goes straight to adjudication under the
        counter lock.  A release that already landed in the registration
        gap means our slot's set is banked (or in flight); the probe
        must consume it (keeping the slot armed for the thread's next
        park) and report success."""
        counter = ScriptedParkCounter(on_park=lambda level: counter.increment(1))
        counter.check(1, timeout=0)  # must NOT raise
        assert counter.value == 1
        assert counter.stats.timeouts == 0
        _quiescent(counter)

    def test_genuine_timeout_deregisters_cleanly(self):
        """Order C: no increment anywhere.  The timeout must be reported,
        the node reclaimed, and the counter left fully usable."""
        counter = ScriptedParkCounter()
        with pytest.raises(CheckTimeout):
            counter.check(3, timeout=0.005)
        assert counter.stats.timeouts == 1
        _quiescent(counter)
        # The counter is not poisoned: normal operation still works.
        counter.increment(3)
        counter.check(3, timeout=0)

    def test_coalesced_release_with_concurrent_timeout_at_one_level(self):
        """One increment releases levels 1 and 2 in a single pass while
        the level-2 waiter's timer has already claimed its entry (it is
        gated between verdict and adjudication).  Both waiters must
        succeed and the whole batch must drain."""
        verdict_reached = threading.Event()
        go = threading.Event()

        def on_verdict(level):
            assert level == 2
            verdict_reached.set()
            assert go.wait(10)

        counter = ScriptedParkCounter(on_verdict=on_verdict)
        outcomes = []
        a = spawn(lambda: (counter.check(1, timeout=10), outcomes.append("a")))
        b = spawn(lambda: (counter.check(2, timeout=0.005), outcomes.append("b")))
        assert verdict_reached.wait(10)
        wait_until(lambda: 1 in counter.snapshot().waiting_levels)
        counter.increment(2)  # one coalesced release pass for both nodes
        go.set()
        join_all([a, b])
        assert sorted(outcomes) == ["a", "b"]
        assert counter.stats.nodes_released == 2
        assert counter.stats.threads_woken == 2
        assert counter.stats.timeouts == 0
        _quiescent(counter)


def _registered_handles(counter):
    """Every engine handle currently registered on the counter's nodes."""
    handles = []
    node = counter._waiters._head
    while node is not None:
        handles.extend(node.waiters)
        node = node.next
    return handles


class TestWheelEscalation:
    """Staged parking's stage two: a timed wait that outlives the
    slot-mode grace must swap its registered slot for a claim-guarded
    wheel entry and behave exactly like the pre-grace design from there
    — release wins via the claim, timeouts fire no earlier than the
    requested deadline."""

    def test_lingering_wait_escalates_and_release_wakes_through_the_claim(
        self, monkeypatch
    ):
        monkeypatch.setattr(counter_mod, "_TIMER_GRACE", 0.001)
        counter = MonotonicCounter(policy=PARK_ONLY, stats=True)
        done = []
        worker = spawn(lambda: (counter.check(1, timeout=30.0), done.append(True)))
        # The handle swap under the counter lock is the observable
        # escalation: the registered ParkingSlot becomes a WheelEntry.
        wait_until(
            lambda: any(
                type(h) is WheelEntry for h in _registered_handles(counter)
            )
        )
        counter.increment(1)
        join_all([worker])
        assert done == [True]
        assert counter.stats.timeouts == 0
        assert counter.stats.threads_woken == 1
        _quiescent(counter)

    def test_lingering_wait_escalates_then_times_out(self, monkeypatch):
        monkeypatch.setattr(counter_mod, "_TIMER_GRACE", 0.001)
        counter = MonotonicCounter(policy=PARK_ONLY, stats=True)
        start = time.monotonic()
        with pytest.raises(CheckTimeout):
            counter.check(1, timeout=0.01)
        # Escalation re-anchors the deadline at grace expiry, so the
        # timeout may land late but never early.
        assert time.monotonic() - start >= 0.009
        assert counter.stats.timeouts == 1
        _quiescent(counter)
        counter.increment(1)
        counter.check(1, timeout=0)


class _TrapDrainLock:
    """Drop-in for the counter's ``_drain_lock`` trapping its first taker.

    ``increment`` acquires ``_drain_lock`` exactly once, *inside* its
    critical section, to insert the drained nodes — so trapping the
    first acquisition suspends the increment at the most delicate point
    of the release: node unlinked and ``released`` marked, but the
    draining insert (and everything after it) not yet performed.  Later
    acquisitions (the last-leaver pop, snapshot, reset) pass through.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.arrived = threading.Event()
        self.proceed = threading.Event()
        self._trapped = False

    def __enter__(self):
        if not self._trapped:
            self._trapped = True
            self.arrived.set()
            assert self.proceed.wait(10)
        return self._lock.__enter__()

    def __exit__(self, *exc_info):
        return self._lock.__exit__(*exc_info)


class TestIncrementPreemptedMidCriticalSection:
    """Preempt ``increment`` *inside* its critical section.

    A parked waiter wakes only through its engine slot, set by the
    out-of-lock signal pass, so nothing the increment publishes before
    its critical section is finished may be observable to it.  If the
    wakeup were delivered early (as ``signaled`` once was), a waiter
    could resume, pop the node's countdown to zero, and run the
    last-leaver ``_draining.pop`` *before* the increment's insert —
    leaking the entry forever (``reset()`` poisoned) and leaving
    ``_live_waiters`` permanently inflated.  The scripted tests above
    never preempt ``increment`` mid-section; this one does,
    deterministically.
    """

    def test_release_is_unobservable_until_the_critical_section_ends(self):
        counter = MonotonicCounter(policy=PARK_ONLY, stats=True)
        outcomes = []
        waiter = spawn(lambda: (counter.check(1, timeout=30), outcomes.append("ok")))
        wait_until(lambda: counter.snapshot().waiting_levels == (1,))
        node = next(iter(counter._waiters))
        trap = _TrapDrainLock()
        counter._drain_lock = trap
        incrementer = spawn(counter.increment, 1)
        assert trap.arrived.wait(10)
        # The increment is now suspended mid-critical-section: the node is
        # unlinked and marked released, the draining insert still pending.
        assert node.released
        # The set flag must NOT be observable yet — it is what parked
        # threads synchronize on, under only the node lock.
        assert not node.signaled
        # And indeed no waiter has resumed through the half-done release.
        assert outcomes == []
        assert waiter.is_alive()
        trap.proceed.set()
        join_all([waiter, incrementer])
        assert outcomes == ["ok"]
        assert counter.stats.timeouts == 0
        _quiescent(counter)


class TestTimeoutHammer:
    """Real threads, real (tiny) timeouts, real increments, many rounds."""

    @pytest.mark.parametrize(
        "policy",
        [
            pytest.param(None, id="default-spin"),
            pytest.param(PARK_ONLY, id="park-only"),
            pytest.param(WaitPolicy(spin=8, spin_min=1, spin_max=8), id="tiny-spin"),
        ],
    )
    @pytest.mark.parametrize("strategy", ["linked", "heap"])
    def test_no_lost_wakeups_and_no_leaks(self, strategy, policy):
        rng = random.Random(0xC0FFEE)
        rounds, waiters = 25, 8
        for _ in range(rounds):
            counter = MonotonicCounter(strategy=strategy, policy=policy, stats=True)
            outcomes = [None] * waiters

            def wait(w):
                # Even waiters have a generous budget and MUST succeed;
                # odd waiters race a ~1ms timeout against the increments.
                timeout = 30.0 if w % 2 == 0 else rng.random() * 0.002
                try:
                    counter.check((w % 4) + 1, timeout=timeout)
                    outcomes[w] = "ok"
                except CheckTimeout:
                    outcomes[w] = "timeout"

            threads = [spawn(wait, w) for w in range(waiters)]
            incrementers = [spawn(counter.increment, 2) for _ in range(2)]
            join_all(threads + incrementers)

            assert counter.value == 4
            for w in range(0, waiters, 2):
                assert outcomes[w] == "ok", f"lost wakeup for waiter {w}: {outcomes}"
            assert all(outcome in ("ok", "timeout") for outcome in outcomes)
            assert counter.stats.timeouts == outcomes.count("timeout")
            # Quiescence: every node reclaimed, nothing stuck draining.
            assert counter.snapshot().waiting_levels == ()
            assert not counter._draining
            counter.reset()


class TestModelNoLostWakeups:
    """The schedule explorer certifies the §7 semantics: over *every*
    interleaving, a release covering several levels wakes all of them."""

    def test_coalesced_release_wakes_every_level_in_all_schedules(self):
        def program():
            counter = SimCounter()
            woken = []

            def checker(level):
                yield counter.check(level)
                woken.append(level)

            def incrementer():
                yield counter.increment(3)

            return ExplorerProgram(
                tasks=[checker(1), checker(2), checker(3), incrementer()],
                observe=lambda: tuple(sorted(woken)),
            )

        report = explore(program)
        assert report.deadlocks == 0
        assert report.states == {(1, 2, 3)}
        assert report.deterministic

    def test_split_increments_release_across_schedules(self):
        def program():
            counter = SimCounter()
            woken = []

            def checker(level):
                yield counter.check(level)
                woken.append(level)

            def incrementer(amount):
                yield counter.increment(amount)

            return ExplorerProgram(
                tasks=[checker(1), checker(3), incrementer(2), incrementer(1)],
                observe=lambda: tuple(sorted(woken)),
            )

        report = explore(program)
        assert report.deadlocks == 0
        assert report.states == {(1, 3)}
