"""Tests for the tunable spin-then-park wait policy."""

from __future__ import annotations

import dataclasses
import sys

import pytest

from repro.core import (
    CheckTimeout,
    DEFAULT_WAIT_POLICY,
    MonotonicCounter,
    PARK_ONLY,
    SPIN_THEN_PARK,
    WaitPolicy,
)
from tests.helpers import join_all, spawn, wait_until


class TestWaitPolicyDataclass:
    def test_default_matches_the_build(self):
        """Spin only pays when the incrementer can run concurrently, so
        the default is park-only under the GIL."""
        gil = getattr(sys, "_is_gil_enabled", lambda: True)()
        assert DEFAULT_WAIT_POLICY is (PARK_ONLY if gil else SPIN_THEN_PARK)

    def test_spin_then_park_is_consistent(self):
        policy = SPIN_THEN_PARK
        assert policy.spin_min <= policy.spin <= policy.spin_max
        assert policy.spin > 0
        assert policy.adaptive
        assert policy.yield_every > 0

    def test_park_only_never_spins(self):
        assert PARK_ONLY.spin == PARK_ONLY.spin_min == PARK_ONLY.spin_max == 0

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SPIN_THEN_PARK.spin = 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"spin": -1},
            {"spin_min": -1},
            {"yield_every": -1},
            {"spin": True},
            {"spin": 1.5},
            {"spin_min": 10, "spin_max": 5, "spin": 10},
            {"spin": 2000},  # above the default spin_max
            {"spin": 1, "spin_min": 2},  # below spin_min
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WaitPolicy(**kwargs)

    def test_counter_rejects_non_policy(self):
        with pytest.raises(TypeError, match="WaitPolicy"):
            MonotonicCounter(policy=42)

    def test_counter_exposes_policy(self):
        policy = WaitPolicy(spin=8, spin_min=2, spin_max=16)
        assert MonotonicCounter(policy=policy).policy is policy
        assert MonotonicCounter().policy is DEFAULT_WAIT_POLICY


class TestAdaptiveBudget:
    """The budget doubles on a spin hit and halves on a futile spin,
    clamped to [spin_min, spin_max].  Driven through ``_spin_wait``
    directly so each outcome is deterministic."""

    def _counter(self, **overrides):
        kwargs = dict(spin=8, spin_min=2, spin_max=16)
        kwargs.update(overrides)
        return MonotonicCounter(policy=WaitPolicy(**kwargs), stats=True)

    def test_hit_doubles_budget_up_to_cap(self):
        counter = self._counter()
        counter.increment(1)
        assert counter._spin_wait(1, counter._spin) is True
        assert counter._spin == 16
        assert counter._spin_wait(1, counter._spin) is True
        assert counter._spin == 16  # capped at spin_max
        assert counter.stats.spin_checks == 2

    def test_miss_halves_budget_down_to_floor(self):
        counter = self._counter()
        assert counter._spin_wait(1, counter._spin) is False
        assert counter._spin == 4
        counter._spin_wait(1, counter._spin)
        counter._spin_wait(1, counter._spin)
        assert counter._spin == 2  # floored at spin_min
        assert counter.stats.spin_checks == 0

    def test_non_adaptive_budget_is_pinned(self):
        counter = self._counter(adaptive=False)
        counter._spin_wait(1, counter._spin)
        assert counter._spin == 8
        counter.increment(1)
        counter._spin_wait(1, counter._spin)
        assert counter._spin == 8

    def test_spin_satisfaction_leaves_no_wait_node(self):
        """A check satisfied during the spin phase never touches the wait
        list — forced deterministically by satisfying the level between
        the missed fast path and the spin (a satisfied first re-read)."""

        class SpinProbeCounter(MonotonicCounter):
            def _spin_wait(self, level, budget):
                self.increment(1)  # the "concurrent" producer
                return super()._spin_wait(level, budget)

            def _park(self, node, waiter, level, timeout, deadline, t_parked=None):  # pragma: no cover
                raise AssertionError("parked despite satisfied spin")

        counter = SpinProbeCounter(
            policy=WaitPolicy(spin=8, spin_min=2, spin_max=16), stats=True
        )
        counter.check(1)
        assert counter.stats.spin_checks == 1
        assert counter.stats.suspended_checks == 0
        assert counter.snapshot().waiting_levels == ()


class TestSerialHostDegradation:
    """Policies that opt in (``park_on_serial_hosts``) zero a counter's
    *effective* spin budget on hosts where the incrementer cannot run
    concurrently with the spinner — the declared policy values are never
    mutated."""

    def test_serial_host_matches_build_and_cpu_count(self):
        import os

        from repro.core.waitlist import SERIAL_HOST, _gil_enabled

        assert SERIAL_HOST == (_gil_enabled() or (os.cpu_count() or 1) <= 1)

    def test_spin_then_park_degrades_to_park_only_on_serial_hosts(self, monkeypatch):
        import repro.core.counter as counter_mod

        monkeypatch.setattr(counter_mod, "SERIAL_HOST", True)
        counter = MonotonicCounter(policy=SPIN_THEN_PARK)
        assert counter._spin == 0
        # The shared policy object is untouched — only this counter's
        # effective budget degraded.
        assert SPIN_THEN_PARK.spin > 0
        assert counter.policy is SPIN_THEN_PARK

    def test_spin_survives_on_parallel_hosts(self, monkeypatch):
        import repro.core.counter as counter_mod

        monkeypatch.setattr(counter_mod, "SERIAL_HOST", False)
        counter = MonotonicCounter(policy=SPIN_THEN_PARK)
        assert counter._spin == SPIN_THEN_PARK.spin

    def test_policies_without_the_opt_in_keep_their_budget(self, monkeypatch):
        """Explicit spin values are an operator's choice: only policies
        carrying ``park_on_serial_hosts=True`` degrade."""
        import repro.core.counter as counter_mod

        monkeypatch.setattr(counter_mod, "SERIAL_HOST", True)
        policy = WaitPolicy(spin=8, spin_min=2, spin_max=16)
        counter = MonotonicCounter(policy=policy)
        assert counter._spin == 8


class TestPolicyIntegration:
    def test_park_only_always_suspends(self):
        counter = MonotonicCounter(policy=PARK_ONLY, stats=True)
        waiter = spawn(counter.check, 1)
        wait_until(lambda: counter.snapshot().total_waiters == 1)
        counter.increment(1)
        join_all([waiter])
        assert counter.stats.suspended_checks == 1
        assert counter.stats.spin_checks == 0

    def test_timeout_zero_skips_the_spin_phase(self):
        """check(level, timeout=0) is an instant probe: no spinning, no
        budget mutation, straight to the locked re-test."""
        counter = MonotonicCounter(
            policy=WaitPolicy(spin=1024, spin_min=1024, spin_max=1024), stats=True
        )
        with pytest.raises(CheckTimeout):
            counter.check(1, timeout=0)
        assert counter._spin == 1024  # an attempted spin would have shrunk it
        assert counter.stats.spin_checks == 0

    def test_no_fast_path_means_no_spin(self):
        """fast_path=False opts out of unsynchronized reads wholesale;
        the spin phase is one, so it must be disabled too."""
        counter = MonotonicCounter(fast_path=False, policy=SPIN_THEN_PARK, stats=True)
        waiter = spawn(counter.check, 1)
        wait_until(lambda: counter.snapshot().total_waiters == 1)
        counter.increment(1)
        join_all([waiter])
        assert counter.stats.spin_checks == 0
        assert counter.stats.suspended_checks == 1

    def test_spinning_chase_completes_and_tallies_consistently(self):
        """A consumer chasing a producer level-by-level: every check is
        satisfied somewhere (fast path, spin, or park) and the stats
        decomposition must account for all of them."""
        counter = MonotonicCounter(policy=SPIN_THEN_PARK, stats=True)
        levels = 400

        def producer():
            for _ in range(levels):
                counter.increment(1)

        def consumer():
            for level in range(1, levels + 1):
                counter.check(level, timeout=30)

        threads = [spawn(consumer), spawn(producer)]
        join_all(threads)
        stats = counter.stats
        assert stats.checks >= levels  # racy immediate tallies may undercount
        assert stats.checks == (
            stats.immediate_checks + stats.spin_checks + stats.suspended_checks
        )
