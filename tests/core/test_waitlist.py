"""Unit tests for the wait-list strategies (paper §7 data structure)."""

from __future__ import annotations

import pytest

from repro.core.waitlist import HeapWaitList, LinkedWaitList


@pytest.fixture(params=[LinkedWaitList, HeapWaitList])
def waitlist(request):
    return request.param()


class TestFindOrInsert:
    def test_insert_keeps_level_order(self, waitlist):
        for level in (7, 3, 9, 1, 5):
            waitlist.find_or_insert(level)
        assert [node.level for node in waitlist] == [1, 3, 5, 7, 9]

    def test_find_returns_existing_node(self, waitlist):
        first = waitlist.find_or_insert(4)
        second = waitlist.find_or_insert(4)
        assert first is second
        assert len(waitlist) == 1

    def test_new_node_starts_unset_with_zero_count(self, waitlist):
        node = waitlist.find_or_insert(2)
        assert node.count == 0
        assert not node.signaled

    def test_insert_at_head_and_tail(self, waitlist):
        waitlist.find_or_insert(5)
        waitlist.find_or_insert(1)   # head
        waitlist.find_or_insert(10)  # tail
        assert [node.level for node in waitlist] == [1, 5, 10]

    def test_len_counts_distinct_levels(self, waitlist):
        for level in (1, 2, 2, 3, 3, 3):
            waitlist.find_or_insert(level)
        assert len(waitlist) == 3


class TestReleaseThrough:
    def test_release_prefix_only(self, waitlist):
        for level in (2, 4, 6, 8):
            waitlist.find_or_insert(level)
        released = waitlist.release_through(5)
        assert [node.level for node in released] == [2, 4]
        assert [node.level for node in waitlist] == [6, 8]

    def test_release_nothing_below_all_levels(self, waitlist):
        waitlist.find_or_insert(10)
        assert waitlist.release_through(9) == []
        assert len(waitlist) == 1

    def test_release_everything(self, waitlist):
        for level in (1, 2, 3):
            waitlist.find_or_insert(level)
        released = waitlist.release_through(100)
        assert [node.level for node in released] == [1, 2, 3]
        assert len(waitlist) == 0

    def test_release_boundary_inclusive(self, waitlist):
        waitlist.find_or_insert(5)
        released = waitlist.release_through(5)
        assert [node.level for node in released] == [5]

    def test_release_from_empty_list(self, waitlist):
        assert waitlist.release_through(100) == []

    def test_release_then_reinsert_same_level(self, waitlist):
        waitlist.find_or_insert(3)
        waitlist.release_through(3)
        node = waitlist.find_or_insert(3)
        assert node.count == 0
        assert [n.level for n in waitlist] == [3]


class TestDiscardIfEmpty:
    def test_discard_empty_node(self, waitlist):
        node = waitlist.find_or_insert(4)
        assert waitlist.discard_if_empty(node)
        assert len(waitlist) == 0

    def test_discard_refused_with_waiters(self, waitlist):
        node = waitlist.find_or_insert(4)
        node.count = 1
        assert not waitlist.discard_if_empty(node)
        assert len(waitlist) == 1

    def test_discard_middle_node_keeps_order(self, waitlist):
        for level in (1, 2, 3):
            waitlist.find_or_insert(level)
        middle = waitlist.find_or_insert(2)
        assert waitlist.discard_if_empty(middle)
        assert [node.level for node in waitlist] == [1, 3]

    def test_discard_already_released_node_is_noop(self, waitlist):
        node = waitlist.find_or_insert(4)
        waitlist.release_through(10)
        assert not waitlist.discard_if_empty(node)

    def test_heap_release_skips_discarded_levels(self):
        heap = HeapWaitList()
        node = heap.find_or_insert(3)
        heap.find_or_insert(5)
        heap.discard_if_empty(node)  # leaves a lazy heap entry behind
        released = heap.release_through(10)
        assert [n.level for n in released] == [5]


class TestLenIsMaintainedIncrementally:
    """``len()`` is O(1) (a maintained count); it must stay consistent
    with the walked structure through arbitrary churn."""

    def test_len_consistent_through_churn(self, waitlist):
        import random

        rng = random.Random(42)
        live = {}
        for _ in range(500):
            op = rng.randrange(3)
            if op == 0:
                level = rng.randrange(1, 40)
                node = waitlist.find_or_insert(level)
                live[level] = node
            elif op == 1 and live:
                value = rng.randrange(1, 40)
                for node in waitlist.release_through(value):
                    del live[node.level]
            elif op == 2 and live:
                level = rng.choice(sorted(live))
                if waitlist.discard_if_empty(live[level]):
                    del live[level]
            assert len(waitlist) == len(live)
            assert len(waitlist) == sum(1 for _ in waitlist)

    def test_find_existing_does_not_grow_len(self, waitlist):
        waitlist.find_or_insert(5)
        waitlist.find_or_insert(5)
        waitlist.find_or_insert(5)
        assert len(waitlist) == 1

    def test_failed_discard_does_not_shrink_len(self, waitlist):
        node = waitlist.find_or_insert(5)
        node.count = 1
        waitlist.discard_if_empty(node)
        waitlist.release_through(10)
        assert len(waitlist) == 0
