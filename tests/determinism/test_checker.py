"""Tests for the §6 determinacy checker: traced counters + shared variables."""

from __future__ import annotations

import pytest

from repro.determinism import DeterminismChecker, RaceError
from repro.structured import multithreaded, multithreaded_for, sequential_execution
from tests.helpers import join_all, spawn, wait_until


class TestSection6Examples:
    """The paper's three two-thread programs, verdicts per §6."""

    def test_ordered_counter_program_race_free(self):
        checker = DeterminismChecker()
        x = checker.shared(0, "x")
        c = checker.counter("xCount")

        def add_one():
            c.check(0)
            x.modify(lambda v: v + 1)
            c.increment(1)

        def double():
            c.check(1)
            x.modify(lambda v: v * 2)
            c.increment(1)

        multithreaded(add_one, double)
        assert checker.report().race_free
        assert x.peek() == 2  # (0 + 1) * 2, always

    def test_racy_counter_program_detected(self):
        checker = DeterminismChecker()
        x = checker.shared(0, "x")
        c = checker.counter("xCount")

        def add_one():
            c.check(0)
            x.modify(lambda v: v + 1)
            c.increment(1)

        def double():
            c.check(0)  # same level: no ordering between the two bodies
            x.modify(lambda v: v * 2)
            c.increment(1)

        multithreaded(add_one, double)
        report = checker.report()
        assert not report.race_free
        assert report.variables == {"x"}

    def test_racy_verdict_is_schedule_independent(self):
        """Even under sequential execution — where the accesses happen to
        be serialized — the discipline violation is still reported.  This
        is the paper's 'one execution certifies all executions' property."""
        checker = DeterminismChecker()
        x = checker.shared(0, "x")
        c = checker.counter("xCount")

        def add_one():
            c.check(0)
            x.modify(lambda v: v + 1)
            c.increment(1)

        def double():
            c.check(0)
            x.modify(lambda v: v * 2)
            c.increment(1)

        with sequential_execution():
            multithreaded(add_one, double)
        assert not checker.report().race_free

    def test_ordered_verdict_is_schedule_independent(self):
        checker = DeterminismChecker()
        x = checker.shared(0, "x")
        c = checker.counter("xCount")

        def add_one():
            c.check(0)
            x.modify(lambda v: v + 1)
            c.increment(1)

        def double():
            c.check(1)
            x.modify(lambda v: v * 2)
            c.increment(1)

        with sequential_execution():
            multithreaded(add_one, double)
        assert checker.report().race_free


class TestSharedVariable:
    def test_unsynchronized_write_write_detected(self):
        checker = DeterminismChecker()
        x = checker.shared(0, "x")
        multithreaded(lambda: x.write(1), lambda: x.write(2))
        assert not checker.report().race_free

    def test_unsynchronized_read_write_detected(self):
        checker = DeterminismChecker()
        x = checker.shared(0, "x")
        multithreaded(lambda: x.read(), lambda: x.write(1))
        assert not checker.report().race_free

    def test_concurrent_reads_are_not_a_race(self):
        checker = DeterminismChecker()
        x = checker.shared(42, "x")
        values = multithreaded(x.read, x.read, x.read)
        assert values == [42, 42, 42]
        assert checker.report().race_free

    def test_counter_chain_orders_accesses(self):
        checker = DeterminismChecker()
        x = checker.shared(0, "x")
        c = checker.counter("c")

        def writer():
            x.write(7)
            c.increment(1)

        def reader():
            c.check(1)
            assert x.read() == 7

        multithreaded(writer, reader)
        assert checker.report().race_free

    def test_transitive_chain_through_third_thread(self):
        """§6: ordering via a *transitive* chain of counter operations."""
        checker = DeterminismChecker()
        x = checker.shared(0, "x")
        a = checker.counter("a")
        b = checker.counter("b")

        def first():
            x.write(1)
            a.increment(1)

        def middle():
            a.check(1)
            b.increment(1)

        def last():
            b.check(1)
            assert x.read() == 1

        multithreaded(first, middle, last)
        assert checker.report().race_free

    def test_wrong_level_does_not_order(self):
        """Checking a level the write's increment did not reach creates no
        happens-before edge — the race is reported."""
        checker = DeterminismChecker()
        x = checker.shared(0, "x")
        c = checker.counter("c")
        c.increment(1)  # pre-bump so check(1) passes immediately

        def writer():
            x.write(1)
            c.increment(1)  # value -> 2

        def reader():
            c.check(1)  # satisfied by the PRE-bump, not the writer
            x.read()

        multithreaded(writer, reader)
        assert not checker.report().race_free

    def test_assert_race_free_raises(self):
        checker = DeterminismChecker()
        x = checker.shared(0, "x")
        multithreaded(lambda: x.write(1), lambda: x.write(2))
        with pytest.raises(RaceError, match="race"):
            checker.assert_race_free()

    def test_peek_does_not_record(self):
        checker = DeterminismChecker()
        x = checker.shared(5, "x")
        multithreaded(lambda: x.peek(), lambda: x.write(1))
        assert checker.report().race_free  # peek is unrecorded by contract


class TestTracedCounter:
    def test_behaves_like_a_counter(self):
        checker = DeterminismChecker()
        c = checker.counter("c")
        assert c.increment(3) == 3
        c.check(2)
        assert c.value == 3

    def test_blocking_check(self):
        checker = DeterminismChecker()
        c = checker.counter("c")
        released = []
        thread = spawn(lambda: (c.check(5), released.append(True)))
        wait_until(lambda: c.snapshot().total_waiters == 1)
        c.increment(5)
        join_all([thread])
        assert released == [True]

    def test_reset_clears_history(self):
        checker = DeterminismChecker()
        c = checker.counter("c")
        x = checker.shared(0, "x")
        c.increment(4)
        c.reset()
        # After reset, a check(1) cannot acquire pre-reset increments.
        def writer():
            x.write(1)
            c.increment(1)

        def reader():
            c.check(1)
            x.read()

        multithreaded(writer, reader)
        assert checker.report().race_free

    def test_pipeline_application_race_free(self):
        """An end-to-end §4.5-style pipeline through the checker."""
        checker = DeterminismChecker()
        n = 8
        data = [checker.shared(None, f"data[{i}]") for i in range(n)]
        c = checker.counter("dataCount")

        def writer():
            for i in range(n):
                data[i].write(i * i)
                c.increment(1)

        def reader():
            out = []
            for i in range(n):
                c.check(i + 1)
                out.append(data[i].read())
            assert out == [i * i for i in range(n)]

        multithreaded(writer, reader, reader)
        checker.assert_race_free()


class TestMultithreadedForIntegration:
    def test_ordered_region_discipline_scales(self):
        checker = DeterminismChecker()
        total = checker.shared(0, "total")
        c = checker.counter("order")

        def worker(i):
            c.check(i)
            total.modify(lambda v: v + i)
            c.increment(1)

        multithreaded_for(worker, range(12))
        checker.assert_race_free()
        assert total.peek() == sum(range(12))
