"""Tests for determinacy-over-runs and sequential equivalence (§6)."""

from __future__ import annotations

import pytest

from repro.core import MonotonicCounter
from repro.determinism import (
    check_sequential_equivalence,
    collect_results,
    is_deterministic,
    scheduling_jitter,
)
from repro.structured import multithreaded


def ordered_counter_program():
    """The paper's deterministic program; fresh state per call."""
    c = MonotonicCounter()
    x = [0]

    def add_one():
        c.check(0)
        scheduling_jitter(0.0005)
        x[0] += 1
        c.increment(1)

    def double():
        c.check(1)
        scheduling_jitter(0.0005)
        x[0] *= 2
        c.increment(1)

    multithreaded(add_one, double)
    return x[0]


def lock_order_program():
    """Lock-style nondeterminism surrogate: first-come ordering."""
    import threading

    lock = threading.Lock()
    x = [0]

    def add_one():
        scheduling_jitter(0.002)
        with lock:
            x[0] += 1

    def double():
        scheduling_jitter(0.002)
        with lock:
            x[0] *= 2

    multithreaded(add_one, double)
    return x[0]


class TestDeterminacy:
    def test_counter_program_is_deterministic(self):
        assert is_deterministic(ordered_counter_program, runs=15)

    def test_counter_program_results_all_equal_two(self):
        assert set(collect_results(ordered_counter_program, runs=15)) == {2}

    def test_lock_program_can_produce_both_results(self):
        """Not asserted as *must* differ in any bounded sample (that would
        be flaky); instead: every observed result is one of the two legal
        lock outcomes, and over many runs we usually see both."""
        results = set(collect_results(lock_order_program, runs=40))
        assert results <= {1, 2}

    def test_collect_results_validates_runs(self):
        with pytest.raises(ValueError):
            collect_results(ordered_counter_program, runs=0)


class TestSequentialEquivalence:
    def test_counter_program_sequentially_equivalent(self):
        verdict = check_sequential_equivalence(ordered_counter_program, runs=10)
        assert verdict.equivalent
        assert verdict.sequential_result == 2
        assert verdict.distinct_threaded == 1

    def test_verdict_string(self):
        verdict = check_sequential_equivalence(ordered_counter_program, runs=3)
        assert "EQUIVALENT" in str(verdict)

    def test_non_equivalent_program_detected(self):
        """A program whose threaded result differs from sequential: thread
        order reversed relative to counter levels (sequential runs first
        statement first; threaded forces second-first via levels)."""

        def reversed_levels():
            c = MonotonicCounter()
            x = [0]

            def double():  # textually FIRST, but waits for level 1
                c.check(1)
                x[0] *= 2
                c.increment(1)

            def add_one():  # textually second, but runs first when threaded
                c.check(0)
                x[0] += 1
                c.increment(1)

            multithreaded(double, add_one)
            return x[0]

        # Sequential execution deadlocks -> the §6 precondition fails.  We
        # avoid the deadlock by checking threaded determinism only.
        assert is_deterministic(reversed_levels, runs=5)
        assert set(collect_results(reversed_levels, runs=5)) == {2}

    def test_floyd_warshall_is_deterministic_but_not_sequentially_executable(self):
        """§6 is precise about which programs get which guarantee: the
        counter FW program (§4.5) is *deterministic*, but its sequential
        execution deadlocks (thread 0's iteration 1 needs a row produced
        by thread 1), so the paper does NOT claim sequential equivalence
        for it — only for §5.2 and §5.3.  We verify both halves."""
        from repro.apps.floyd_warshall import figure1_edge, shortest_paths_counter
        from repro.core import CheckTimeout, MonotonicCounter
        from repro.structured import sequential_execution

        def program():
            return shortest_paths_counter(figure1_edge(), num_threads=3)

        # Half 1: threaded determinacy.
        assert is_deterministic(program, runs=5, key=lambda m: m.tobytes())

        # Half 2: sequential execution deadlocks.  A counter whose checks
        # time out turns the would-be infinite suspension into an error.
        class ImpatientCounter(MonotonicCounter):
            def check(self, level, timeout=None):  # noqa: D102
                super().check(level, timeout=0.05)

        from repro.structured import MultithreadedBlockError

        with sequential_execution():
            with pytest.raises(MultithreadedBlockError) as excinfo:
                shortest_paths_counter(
                    figure1_edge(), num_threads=3, counter=ImpatientCounter()
                )
        assert any(
            isinstance(e, CheckTimeout) for e in excinfo.value.exceptions
        )

    def test_jitter_bounds(self):
        # Smoke only: returns quickly and never raises for sane args.
        scheduling_jitter(0.0)
        scheduling_jitter(0.0001)
