"""Edge-case unit tests for Shared variables and the trace registry."""

from __future__ import annotations

import threading

from repro.determinism import DeterminismChecker, TraceContext
from repro.structured import ThreadScope, multithreaded
from tests.helpers import join_all, spawn


class TestSharedSameThread:
    def test_same_thread_sequences_never_race(self):
        checker = DeterminismChecker()
        x = checker.shared(0, "x")
        x.write(1)
        assert x.read() == 1
        x.modify(lambda v: v + 1)
        x.write(5)
        assert x.read() == 5
        assert checker.report().race_free

    def test_modify_returns_new_value(self):
        checker = DeterminismChecker()
        x = checker.shared(10, "x")
        assert x.modify(lambda v: v * 3) == 30
        assert x.peek() == 30

    def test_read_after_foreign_write_without_sync_races(self):
        checker = DeterminismChecker()
        x = checker.shared(0, "x")

        def writer():
            x.write(1)

        def reader():
            x.read()

        multithreaded(writer, reader)
        assert not checker.report().race_free

    def test_race_report_contents(self):
        checker = DeterminismChecker()
        x = checker.shared(0, "balance")
        multithreaded(lambda: x.write(1), lambda: x.write(2))
        report = checker.report()
        assert report.variables == {"balance"}
        race = report.races[0]
        assert race.first.variable == "balance"
        assert {race.first.tid, race.second.tid} <= {0, 1, 2}
        assert "balance" in str(race)
        assert "race" in str(report)

    def test_race_free_report_str(self):
        checker = DeterminismChecker()
        checker.shared(0, "x")
        assert "race-free" in str(checker.report())

    def test_reads_cleared_by_ordered_write(self):
        """A properly-ordered write clears the read set: later unordered
        reads race with the WRITE, not with stale earlier reads."""
        checker = DeterminismChecker()
        x = checker.shared(0, "x")
        c = checker.counter("c")

        def reader_then_announce():
            x.read()
            c.increment(1)

        def ordered_writer():
            c.check(1)
            x.write(1)

        multithreaded(reader_then_announce, ordered_writer)
        assert checker.report().race_free

    def test_auto_generated_names(self):
        checker = DeterminismChecker()
        a = checker.shared(0)
        b = checker.shared(0)
        assert a.name != b.name

    def test_checker_repr(self):
        checker = DeterminismChecker()
        checker.shared(0, "x")
        checker.counter("c")
        text = repr(checker)
        assert "counters=1" in text and "shared=1" in text


class TestTraceContextIdentity:
    def test_plain_threads_get_distinct_ids(self):
        """Outside structured constructs, identity falls back to the OS
        thread (per-context threading.local)."""
        context = TraceContext()
        tids = []
        lock = threading.Lock()

        def worker():
            with lock:
                tids.append(context.state().tid)

        threads = [spawn(worker) for _ in range(4)]
        join_all(threads)
        assert len(set(tids)) == 4
        assert context.thread_count >= 4

    def test_same_thread_same_state(self):
        context = TraceContext()
        assert context.state() is context.state()

    def test_statements_get_distinct_logical_ids_sequentially(self):
        from repro.structured import sequential_execution

        context = TraceContext()
        tids = []
        with sequential_execution():
            multithreaded(
                lambda: tids.append(context.state().tid),
                lambda: tids.append(context.state().tid),
            )
        assert len(set(tids)) == 2  # distinct despite one OS thread

    def test_scope_spawns_get_distinct_logical_ids(self):
        context = TraceContext()
        tids = []
        lock = threading.Lock()

        def worker():
            with lock:
                tids.append(context.state().tid)

        with ThreadScope() as scope:
            for _ in range(3):
                scope.spawn(worker)
        assert len(set(tids)) == 3

    def test_nested_constructs_get_fresh_ids(self):
        context = TraceContext()
        tids = []
        lock = threading.Lock()

        def outer():
            with lock:
                tids.append(context.state().tid)
            multithreaded(lambda: tids.append(context.state().tid))

        multithreaded(outer, outer)
        assert len(set(tids)) == 4  # 2 outer + 2 inner statements

    def test_repr(self):
        context = TraceContext()
        context.state()
        assert "threads=1" in repr(context)
