"""Tests for vector clocks (with hypothesis properties on the partial order)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.determinism import VectorClock

clock_dicts = st.dictionaries(
    st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=20), max_size=6
)


class TestBasics:
    def test_empty_clock(self):
        vc = VectorClock()
        assert vc.get(0) == 0
        assert vc == VectorClock()

    def test_tick_advances_own_component(self):
        vc = VectorClock()
        vc.tick(3)
        vc.tick(3)
        vc.tick(1)
        assert vc.get(3) == 2
        assert vc.get(1) == 1
        assert vc.get(0) == 0

    def test_join_is_componentwise_max(self):
        a = VectorClock({0: 3, 1: 1})
        b = VectorClock({1: 5, 2: 2})
        a.join(b)
        assert (a.get(0), a.get(1), a.get(2)) == (3, 5, 2)

    def test_copy_is_independent(self):
        a = VectorClock({0: 1})
        b = a.copy()
        b.tick(0)
        assert a.get(0) == 1
        assert b.get(0) == 2

    def test_equality_ignores_explicit_zeros(self):
        assert VectorClock({0: 0, 1: 2}) == VectorClock({1: 2})
        assert hash(VectorClock({0: 0, 1: 2})) == hash(VectorClock({1: 2}))

    def test_repr(self):
        assert "T1:2" in repr(VectorClock({1: 2}))


class TestOrdering:
    def test_happens_before_reflexive(self):
        vc = VectorClock({0: 1, 1: 2})
        assert vc.happens_before(vc)

    def test_strictly_smaller_happens_before(self):
        a = VectorClock({0: 1})
        b = VectorClock({0: 2, 1: 1})
        assert a.happens_before(b)
        assert not b.happens_before(a)

    def test_concurrent_clocks(self):
        a = VectorClock({0: 1})
        b = VectorClock({1: 1})
        assert a.concurrent_with(b)
        assert b.concurrent_with(a)

    def test_ordered_clocks_not_concurrent(self):
        a = VectorClock({0: 1})
        b = VectorClock({0: 1, 1: 1})
        assert not a.concurrent_with(b)


class TestProperties:
    @given(clock_dicts, clock_dicts)
    def test_join_is_upper_bound(self, d1, d2):
        a, b = VectorClock(d1), VectorClock(d2)
        joined = a.copy()
        joined.join(b)
        assert a.happens_before(joined)
        assert b.happens_before(joined)

    @given(clock_dicts, clock_dicts)
    def test_join_commutes(self, d1, d2):
        ab = VectorClock(d1)
        ab.join(VectorClock(d2))
        ba = VectorClock(d2)
        ba.join(VectorClock(d1))
        assert ab == ba

    @given(clock_dicts, clock_dicts, clock_dicts)
    def test_happens_before_transitive(self, d1, d2, d3):
        a, b, c = VectorClock(d1), VectorClock(d2), VectorClock(d3)
        if a.happens_before(b) and b.happens_before(c):
            assert a.happens_before(c)

    @given(clock_dicts, clock_dicts)
    def test_antisymmetry(self, d1, d2):
        a, b = VectorClock(d1), VectorClock(d2)
        if a.happens_before(b) and b.happens_before(a):
            assert a == b

    @given(clock_dicts, st.integers(min_value=0, max_value=5))
    def test_tick_breaks_happens_before_into_other(self, d, tid):
        """After a tick, the old clock strictly precedes the new one."""
        old = VectorClock(d)
        new = old.copy()
        new.tick(tid)
        assert old.happens_before(new)
        assert not new.happens_before(old)
