"""Per-request correlation riders on the batched client.

A request token (``corr``) handed to ``increment``/``check`` must stay
joinable to the wire frame that actually carried the operation — that is
what lets a tail exemplar's report blame a specific flushed batch.  The
client keeps a riders map per counter; every flush pops it and, with
observability on, emits one ``frame_ride`` event per rider whose ``op``
is the frame's own correlation token.
"""

from __future__ import annotations

import asyncio

import pytest

import repro.obs as obs
from repro.dist import AsyncCounterClient, CounterService, open_threadside
from repro.obs.collect import frame_riders


def run(coro, timeout: float = 30.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


@pytest.fixture(autouse=True)
def _obs_clean_slate():
    obs.disable()
    yield
    obs.disable()


class TestIncrementRiders:
    def test_batched_increments_ride_their_flush_frame(self):
        handle = obs.enable()

        async def scenario():
            async with CounterService() as service:
                client = await AsyncCounterClient.connect(
                    *service.address, source="app"
                )
                try:
                    client.increment("orders", 1, corr="req-a")
                    client.increment("orders", 1, corr="req-b")
                    client.increment("orders", 1)  # anonymous: no rider
                    await client.flush()
                finally:
                    await client.close()

        run(scenario())
        events = handle.trace.snapshot()
        send = next(e for e in events
                    if e.kind == "frame_send" and e.op == "inc")
        rides = [e for e in events if e.kind == "frame_ride"]
        assert {e.corr for e in rides} == {"req-a", "req-b"}
        assert {e.op for e in rides} == {send.corr}  # both rode one frame
        riders = frame_riders(events)
        assert riders == {"req-a": send.corr, "req-b": send.corr}

    def test_riders_split_across_flushes(self):
        handle = obs.enable()

        async def scenario():
            async with CounterService() as service:
                client = await AsyncCounterClient.connect(
                    *service.address, source="app"
                )
                try:
                    client.increment("orders", 1, corr="first")
                    await client.flush()
                    client.increment("orders", 1, corr="second")
                    await client.flush()
                finally:
                    await client.close()

        run(scenario())
        events = handle.trace.snapshot()
        riders = frame_riders(events)
        assert set(riders) == {"first", "second"}
        assert riders["first"] != riders["second"]  # two distinct frames

    def test_disabled_obs_never_accumulates_riders(self):
        # The riders map is popped unconditionally on flush: toggling
        # obs off must not leak tokens that were queued while off.
        client_box = {}

        async def scenario():
            async with CounterService() as service:
                client = await AsyncCounterClient.connect(
                    *service.address, source="app"
                )
                try:
                    client.increment("orders", 1, corr="ghost")
                    await client.flush()
                    client_box["riders"] = dict(client._riders)
                finally:
                    await client.close()

        run(scenario())
        assert client_box["riders"] == {}

    def test_frame_riders_keeps_the_first_frame(self):
        # A retried rider (same corr on two frames) attributes to the
        # frame that first carried it.
        class E:
            def __init__(self, kind, corr, op):
                self.kind, self.corr, self.op = kind, corr, op

        events = [
            E("frame_ride", "req-1", "frame-a"),
            E("frame_ride", "req-1", "frame-b"),
            E("frame_ride", None, "frame-c"),
            E("other", "req-2", "frame-d"),
        ]
        assert frame_riders(events) == {"req-1": "frame-a"}


class TestThreadsideCorr:
    def test_service_counter_wait_carries_the_request_corr(self):
        handle = obs.enable()

        async def host():
            async with CounterService() as service:
                box["address"] = service.address
                started.set()
                await done.wait()

        import threading

        box = {}
        started = threading.Event()
        done = asyncio.Event()
        loop_box = {}

        def serve():
            loop = asyncio.new_event_loop()
            loop_box["loop"] = loop
            loop.run_until_complete(host())
            loop.close()

        server = threading.Thread(target=serve, daemon=True)
        server.start()
        assert started.wait(10.0)
        endpoint = open_threadside(*box["address"], source="worker")
        try:
            counter = endpoint.counter("jobs")
            counter.increment(2, corr="req-w")
            assert counter.check(2, timeout=10.0, corr="req-w") is None
        finally:
            endpoint.close()
            loop_box["loop"].call_soon_threadsafe(done.set)
            server.join(timeout=10.0)
        events = handle.trace.snapshot()
        obs.disable()
        # The worker-thread wrapper wait carries the request token…
        parks = [e for e in events if e.kind == "park" and e.corr == "req-w"]
        unparks = [e for e in events if e.kind == "unpark" and e.corr == "req-w"]
        assert parks and unparks
        assert unparks[0].wait_s is not None
        # …and the increment rode a frame joinable via frame_riders.
        assert "req-w" in frame_riders(events)
