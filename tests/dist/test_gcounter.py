"""GCounter unit semantics and schedule-driven anti-entropy convergence.

The replication state's contract: per-source contributions only grow,
merge is pointwise max (commutative, associative, idempotent), and the
local wait mirror converges on the replicated total from below — never
past it, under any interleaving of bumps and merges.
"""

from __future__ import annotations

import pytest

from repro.core.errors import CheckTimeout, CounterValueError
from repro.dist import GCounter, digests_equal, merge_digests
from repro.testkit import interleave
from tests.helpers import join_all, spawn


class TestGCounterBasics:
    def test_bump_accumulates_per_source(self):
        g = GCounter()
        assert g.bump("a", 2) == 2
        assert g.bump("a") == 3
        assert g.bump("b", 4) == 7
        assert g.digest() == {"a": 3, "b": 4}
        assert g.value == 7

    def test_raise_source_is_max_merge(self):
        g = GCounter()
        g.raise_source("a", 5)
        assert g.raise_source("a", 3) == 5  # stale floor: no-op
        assert g.raise_source("a", 5) == 5  # duplicate: no-op
        assert g.raise_source("a", 9) == 9
        assert g.digest() == {"a": 9}

    def test_merge_is_idempotent_and_commutative(self):
        digest_one = {"a": 3, "b": 1}
        digest_two = {"b": 5, "c": 2}
        left = GCounter()
        left.merge(digest_one)
        left.merge(digest_two)
        left.merge(digest_one)  # replay changes nothing
        right = GCounter()
        right.merge(digest_two)
        right.merge(digest_one)
        assert digests_equal(left.digest(), right.digest())
        assert left.value == right.value == 3 + 5 + 2

    def test_merge_never_lowers_a_local_contribution(self):
        g = GCounter()
        g.bump("a", 10)
        g.merge({"a": 4})  # a lagging peer's view of us
        assert g.digest()["a"] == 10
        assert g.value == 10

    def test_validation(self):
        g = GCounter()
        with pytest.raises(CounterValueError):
            g.bump("a", -1)
        with pytest.raises(CounterValueError):
            g.raise_source("a", True)
        with pytest.raises(CounterValueError):
            g.merge({"a": -3})

    def test_merge_digests_helper(self):
        merged = merge_digests({"a": 1, "b": 7}, {"a": 4}, {"c": 2})
        assert merged == {"a": 4, "b": 7, "c": 2}
        assert digests_equal({}, {"s": 0})
        assert not digests_equal({"s": 1}, {})


class TestWaitMirror:
    def test_check_rides_the_replicated_total(self):
        g = GCounter()
        waiter = spawn(g.check, 10)
        g.bump("a", 4)
        g.merge({"b": 6})
        join_all([waiter])
        assert g.mirror.value == 10

    def test_mirror_never_overshoots_under_concurrent_publish(self):
        g = GCounter()
        threads = [
            spawn(g.bump, f"s{i % 4}", 1) for i in range(32)
        ]
        join_all(threads)
        assert g.value == 32
        assert g.mirror.value == 32  # exact, not just >=

    def test_check_timeout_propagates(self):
        g = GCounter()
        g.bump("a", 1)
        with pytest.raises(CheckTimeout):
            g.check(5, timeout=0.05)

    def test_subscribe_delegates(self):
        g = GCounter()
        fired = []
        handle = g.subscribe(3, lambda: fired.append(True))
        assert handle is not None
        g.merge({"peer": 3})
        assert fired == [True]
        assert g.subscribe(1, lambda: None) is None  # already satisfied


@interleave(schedules=12)
def test_anti_entropy_two_replicas_converge(sched):
    """Two replicas take partitioned increments, then exchange digests
    both ways.  Wherever the scheduler places the bumps relative to the
    merges, the post-exchange digests are identical and both mirrors
    reach the converged total — the §6 stability argument surviving
    replication."""
    left = GCounter(name="left")
    right = GCounter(name="right")

    # Partitioned writes: each replica only hears about its own sources.
    sched.spawn("bumpL1", left.bump, "l1", 2)
    sched.spawn("bumpL2", left.bump, "l2", 3)
    sched.spawn("bumpR1", right.bump, "r1", 4)

    # The two-leg exchange, racing the bumps: each leg may catch any
    # prefix of the other side's writes — max-merge absorbs them all.
    sched.spawn("syncLR", lambda: right.merge(left.digest()))
    sched.spawn("syncRL", lambda: left.merge(right.digest()))
    sched.run()

    # One quiescent round closes whatever the racing legs missed.
    right.merge(left.digest())
    left.merge(right.digest())

    assert digests_equal(left.digest(), right.digest())
    assert left.value == right.value == 2 + 3 + 4
    left.check(9, timeout=5)
    right.check(9, timeout=5)
    assert left.mirror.value == right.mirror.value == 9


@interleave(schedules=10)
def test_merge_replay_storm_is_idempotent(sched):
    """Replayed and reordered merge traffic (dropped-ack retransmits)
    cannot move a replica anywhere but monotonically up to the join."""
    replica = GCounter(name="replica")
    digest_one = {"a": 3, "b": 1}
    digest_two = {"a": 1, "b": 5}

    sched.spawn("m1", replica.merge, digest_one)
    sched.spawn("m2", replica.merge, digest_two)
    sched.spawn("m1r", replica.merge, digest_one)  # the retransmit
    sched.spawn("bump", replica.bump, "local", 2)
    sched.run()

    assert replica.digest() == {"a": 3, "b": 5, "local": 2}
    assert replica.value == 10
    assert replica.mirror.value == 10
