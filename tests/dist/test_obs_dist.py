"""Observability of the dist fabric: wire correlation, fetch ops, fleet.

Client and service run in one process here (the established harness for
dist tests), so both sides' events land in the same ring — which is
exactly what makes the correlation assertions sharp: the sub frame's
token must reappear verbatim on the server's ``frame_recv``, on the
``push_deliver`` it causes, and on the client's ``unpark``.  True
multi-process traces are covered by the shm fork tests
(``test_shm_obs.py``) and the ``sample-dist`` CLI exercised in CI.
"""

from __future__ import annotations

import asyncio
import os
import threading

import pytest

import repro.obs as obs
from repro.dist import AsyncCounterClient, CounterService, open_threadside, wire
from repro.obs.collect import merge
from repro.obs.events import Event
from tests.helpers import join_all, spawn, wait_until


def run(coro, timeout: float = 30.0):
    """asyncio.run with a suite-protecting deadline."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


@pytest.fixture(autouse=True)
def _obs_clean_slate():
    # Observability is process-global; these tests toggle it and must
    # leave it off (same hygiene as tests/obs/conftest.py).
    obs.disable()
    yield
    obs.disable()


def kinds(events):
    return [e.kind for e in events]


class TestWireCorrelation:
    def test_increment_frames_carry_and_echo_the_token(self):
        handle = obs.enable()

        async def scenario():
            async with CounterService() as service:
                client = await AsyncCounterClient.connect(
                    *service.address, source="s1"
                )
                try:
                    client.increment("orders", 5)
                    await client.flush()
                finally:
                    await client.close()

        run(scenario())
        events = handle.trace.snapshot()
        send = next(e for e in events
                    if e.kind == "frame_send" and e.op == "inc")
        assert send.corr is not None
        recv = next(e for e in events
                    if e.kind == "frame_recv" and e.op == "inc")
        assert recv.corr == send.corr  # server side saw the same token
        acks = [e for e in events if e.op == "ack"]
        assert {e.corr for e in acks} == {send.corr}  # echoed on the reply
        flush = next(e for e in events if e.kind == "batch_flush")
        assert flush.corr == send.corr

    def test_push_deliver_names_the_satisfying_increment(self):
        handle = obs.enable()

        async def scenario():
            async with CounterService() as service:
                waiter = await AsyncCounterClient.connect(
                    *service.address, source="w"
                )
                pusher = await AsyncCounterClient.connect(
                    *service.address, source="p"
                )
                try:
                    check = asyncio.ensure_future(
                        waiter.check("orders", 3, timeout=10.0)
                    )
                    await asyncio.sleep(0.05)  # let the sub register
                    pusher.increment("orders", 3)
                    await pusher.flush()
                    await check
                finally:
                    await waiter.close()
                    await pusher.close()

        run(scenario())
        events = handle.trace.snapshot()
        sub = next(e for e in events
                   if e.kind == "frame_send" and e.op == "sub")
        push = next(e for e in events if e.kind == "push_deliver")
        assert push.corr == sub.corr
        assert push.cause_seq is not None
        cause = next(e for e in events if e.seq == push.cause_seq)
        assert cause.kind == "increment"
        unpark = next(e for e in events
                      if e.kind == "unpark" and e.corr == sub.corr)
        assert unpark.wait_s is not None and unpark.wait_s > 0.0

    def test_server_local_raise_still_attributes_the_push(self):
        # A raise with no frame behind it (self-increment, anti-entropy
        # merge) has no ambient wire context; the thread-local
        # last-increment fallback must still name the increment.
        handle = obs.enable()

        async def scenario():
            async with CounterService(node_id="svc") as service:
                waiter = await AsyncCounterClient.connect(
                    *service.address, source="w"
                )
                try:
                    check = asyncio.ensure_future(
                        waiter.check("orders", 2, timeout=10.0)
                    )
                    await asyncio.sleep(0.05)
                    service.counter("orders").raise_source("svc", 2)
                    await check
                finally:
                    await waiter.close()

        run(scenario())
        events = handle.trace.snapshot()
        push = next(e for e in events if e.kind == "push_deliver")
        assert push.cause_seq is not None
        cause = next(e for e in events if e.seq == push.cause_seq)
        assert cause.kind == "increment"

    def test_disabled_frames_stay_bare(self, monkeypatch):
        # Zero-cost-when-off is a wire contract too: with obs disabled,
        # no frame in either direction grows a correlation field.
        seen: list[dict] = []
        real_encode = wire.encode

        def recording_encode(frame):
            seen.append(dict(frame))
            return real_encode(frame)

        monkeypatch.setattr(wire, "encode", recording_encode)

        async def scenario():
            async with CounterService() as service:
                client = await AsyncCounterClient.connect(
                    *service.address, source="s1"
                )
                try:
                    client.increment("orders", 3)
                    await client.flush()
                    await client.check("orders", 3, timeout=10.0)
                    await client.value("orders")
                finally:
                    await client.close()

        run(scenario())
        assert seen, "the recorder must have seen traffic"
        assert all("t" not in frame for frame in seen)


class TestFetchOps:
    def _start_service(self):
        ready = threading.Event()
        box = {}

        async def serve():
            async with CounterService(node_id="svc") as service:
                box["address"] = service.address
                box["service"] = service
                ready.set()
                await box["stop"].wait()

        def drive():
            loop = asyncio.new_event_loop()
            box["loop"] = loop
            asyncio.set_event_loop(loop)
            box["stop"] = asyncio.Event()
            loop.run_until_complete(serve())
            loop.close()

        thread = threading.Thread(target=drive, daemon=True)
        thread.start()
        assert ready.wait(10)

        def stop():
            box["loop"].call_soon_threadsafe(box["stop"].set)
            thread.join(10)

        return box, stop

    def test_fetch_trace_ships_the_pid_stamped_ring(self):
        handle = obs.enable()
        box, stop = self._start_service()
        try:
            with open_threadside(*box["address"], source="t") as endpoint:
                counter = endpoint.counter("orders")
                waiter = spawn(lambda: counter.check(3, timeout=10.0))
                wait_until(lambda: any(
                    e.kind == "park" and e.corr is not None
                    for e in handle.trace.snapshot()
                ))
                counter.increment(3)
                counter.flush()
                join_all([waiter])
                reply = endpoint.fetch_trace()
        finally:
            stop()
        assert reply["enabled"] is True
        assert reply["pid"] == os.getpid()
        assert reply["node"] == "svc"
        assert isinstance(reply["clock"], float)
        assert reply["events"], "the server ring must not come back empty"
        assert all(doc["pid"] == os.getpid() for doc in reply["events"])
        shipped = [Event.from_dict(doc) for doc in reply["events"]]
        assert {"frame_recv", "increment", "push_deliver"} <= set(kinds(shipped))
        # The shipped ring is collector food: merging it with the local
        # snapshot is lossless (same pid, so no rebasing happens).
        merged = merge(shipped, handle.trace.snapshot())
        assert len(merged) == len(shipped) + len(handle.trace.snapshot())

    def test_fetch_trace_with_obs_off_reports_disabled(self):
        box, stop = self._start_service()
        try:
            with open_threadside(*box["address"]) as endpoint:
                endpoint.counter("orders").increment(1)
                endpoint.counter("orders").flush()
                reply = endpoint.fetch_trace()
        finally:
            stop()
        assert reply["enabled"] is False
        assert reply["events"] == []
        assert reply["truncated"] == 0

    def test_fetch_metrics_ships_the_registry_snapshot(self):
        obs.enable()
        box, stop = self._start_service()
        try:
            with open_threadside(*box["address"], source="t") as endpoint:
                counter = endpoint.counter("orders")
                counter.increment(4)
                counter.flush()
                counter.check(4, timeout=10.0)
                reply = endpoint.fetch_metrics()
        finally:
            stop()
        assert reply["node"] == "svc"
        assert reply["pid"] == os.getpid()
        snapshot = reply["snapshot"]
        assert snapshot is not None
        labels = [label for label in snapshot["series"] if "orders" in label]
        assert labels, f"no orders series in {list(snapshot['series'])}"
        assert any(snapshot["series"][label].get("increments", 0) > 0
                   for label in labels)


class TestFleetMetrics:
    def test_fleet_scrape_merges_peers_and_marks_down_nodes(self):
        obs.enable()

        async def scenario():
            async with CounterService(node_id="beta") as beta:
                beta.counter("orders").raise_source("beta", 7)
                async with CounterService(node_id="alpha") as alpha:
                    alpha.counter("orders").raise_source("alpha", 2)
                    # One live peer, one that will never answer.
                    alpha.peers = [beta.address, ("127.0.0.1", 1)]
                    return await alpha.fleet_metrics()

        text = run(scenario())
        assert "repro_fleet_nodes 3" in text
        up = [line for line in text.splitlines()
              if line.startswith("repro_fleet_node_up")]
        assert sum(line.endswith(" 1") for line in up) == 2
        assert sum(line.endswith(" 0") for line in up) == 1
        totals = [line for line in text.splitlines()
                  if line.startswith("repro_counter_increments_total")
                  and "orders" in line]
        assert totals, "the merged scrape must carry the orders series"

    def test_serve_metrics_speaks_http(self):
        obs.enable()

        async def scenario():
            async with CounterService(node_id="svc") as service:
                service.counter("orders").raise_source("svc", 1)
                host, port = await service.serve_metrics()
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"GET /metrics HTTP/1.1\r\n"
                             b"Host: x\r\nConnection: close\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                return raw.decode()

        response = run(scenario())
        head, _, body = response.partition("\r\n\r\n")
        assert head.startswith("HTTP/1.1 200 OK")
        assert "text/plain" in head
        assert "repro_fleet_nodes 1" in body
        assert 'repro_fleet_node_up{node="svc"' in body
