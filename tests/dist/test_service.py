"""The asyncio counter service, its pipelined client, and the thread shim.

No pytest-asyncio in the toolchain, deliberately: each test is a plain
sync function running one ``asyncio.run`` scenario (the service and
client live and die inside it), which also guarantees no loop state
leaks between tests.  Thread-shim tests drive a real service loop on a
background thread through ``open_threadside``.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.core.errors import CheckTimeout
from repro.dist import (
    AsyncCounterClient,
    CounterService,
    GCounter,
    digests_equal,
    open_threadside,
)
from tests.helpers import join_all, spawn, wait_until


def run(coro, timeout: float = 30.0):
    """asyncio.run with a suite-protecting deadline."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestServiceBasics:
    def test_pipelined_increments_coalesce(self):
        async def scenario():
            async with CounterService() as service:
                client = await AsyncCounterClient.connect(
                    *service.address, source="s1"
                )
                try:
                    for _ in range(1000):
                        client.increment("jobs")
                    await client.flush()
                    assert await client.value("jobs") == 1000
                    # The whole burst rode a handful of frames, not 1000.
                    assert client.frames_out < 20
                finally:
                    await client.close()

        run(scenario())

    def test_inc_is_retransmit_safe(self):
        async def scenario():
            async with CounterService() as service:
                client = await AsyncCounterClient.connect(
                    *service.address, source="s1"
                )
                try:
                    assert await client.increment_rpc("c", 5) == 5
                    # A duplicate of the same absolute floor is a no-op.
                    counter = service.counter("c")
                    counter.raise_source("s1", 5)
                    counter.raise_source("s1", 5)
                    assert await client.value("c") == 5
                finally:
                    await client.close()

        run(scenario())

    def test_two_sources_sum(self):
        async def scenario():
            async with CounterService() as service:
                one = await AsyncCounterClient.connect(*service.address, source="a")
                two = await AsyncCounterClient.connect(*service.address, source="b")
                try:
                    one.increment("c", 3)
                    two.increment("c", 4)
                    await one.flush()
                    await two.flush()
                    assert await one.value("c") == 7
                finally:
                    await one.close()
                    await two.close()

        run(scenario())

    def test_get_unknown_counter_is_zero(self):
        async def scenario():
            async with CounterService() as service:
                client = await AsyncCounterClient.connect(*service.address)
                try:
                    assert await client.value("never-touched") == 0
                    assert "never-touched" not in service.counters
                finally:
                    await client.close()

        run(scenario())

    def test_bad_frame_gets_error_not_disconnect(self):
        async def scenario():
            async with CounterService() as service:
                reader, writer = await asyncio.open_connection(*service.address)
                writer.write(b'{"op":"???"}\n')
                await writer.drain()
                line = await reader.readline()
                assert b'"error"' in line
                # Connection still serves afterwards.
                writer.write(b'{"op":"get","c":"x","id":1}\n')
                await writer.drain()
                line = await reader.readline()
                assert b'"value"' in line
                writer.close()
                await writer.wait_closed()

        run(scenario())


class TestSubscriptionPush:
    def test_check_wakes_on_push(self):
        async def scenario():
            async with CounterService() as service:
                waiter = await AsyncCounterClient.connect(*service.address, source="w")
                incr = await AsyncCounterClient.connect(*service.address, source="i")
                try:
                    task = asyncio.ensure_future(waiter.check("c", 10))
                    await asyncio.sleep(0.02)
                    assert not task.done()
                    incr.increment("c", 10)
                    await incr.flush()
                    await asyncio.wait_for(task, 5)
                    assert waiter.known_value("c") >= 10
                finally:
                    await waiter.close()
                    await incr.close()

        run(scenario())

    def test_check_already_satisfied_returns_immediately(self):
        async def scenario():
            async with CounterService() as service:
                service.counter("c").bump("seed", 5)
                client = await AsyncCounterClient.connect(*service.address)
                try:
                    await asyncio.wait_for(client.check("c", 5), 5)
                finally:
                    await client.close()

        run(scenario())

    def test_check_flushes_own_pending_first(self):
        """A waiter must not deadlock on increments it already pooled."""
        async def scenario():
            async with CounterService() as service:
                client = await AsyncCounterClient.connect(
                    *service.address, source="s", flush_interval=60.0
                )
                try:
                    client.increment("c", 7)  # would otherwise pool for 60s
                    await asyncio.wait_for(client.check("c", 7), 5)
                finally:
                    await client.close()

        run(scenario())

    def test_timeout_adjudicated_and_raises(self):
        async def scenario():
            async with CounterService() as service:
                client = await AsyncCounterClient.connect(*service.address)
                try:
                    with pytest.raises(CheckTimeout):
                        await client.check("c", 100, timeout=0.1)
                    assert not service._subs  # unsub cleaned the server side
                finally:
                    await client.close()

        run(scenario())

    def test_anti_entropy_merge_fires_subscriptions(self):
        """A level first reached by a gossip merge (not a client inc)
        still pushes `reached` — wakeups ride the counter, not the op."""
        async def scenario():
            async with CounterService() as service:
                client = await AsyncCounterClient.connect(*service.address)
                try:
                    task = asyncio.ensure_future(client.check("c", 8))
                    await asyncio.sleep(0.02)
                    service.merge_digests({"c": {"peer": 8}})
                    await asyncio.wait_for(task, 5)
                finally:
                    await client.close()

        run(scenario())


class TestAntiEntropy:
    def test_two_nodes_converge(self):
        async def scenario():
            async with CounterService(node_id="n1") as one:
                async with CounterService(node_id="n2") as two:
                    one.counter("c").bump("a", 3)
                    two.counter("c").bump("b", 4)
                    two.counter("other").bump("b", 1)

                    await one.anti_entropy(*two.address)
                    # One two-leg round: both sides now identical.
                    assert one.counter("c").value == 7
                    assert two.counter("c").value == 7
                    assert one.counter("other").value == 1
                    assert digests_equal(
                        one.counter("c").digest(), two.counter("c").digest()
                    )

                    # Idempotent: replaying the round changes nothing.
                    await one.anti_entropy(*two.address)
                    assert one.counter("c").value == 7

        run(scenario())

    def test_three_node_gossip_chain(self):
        async def scenario():
            async with CounterService(node_id="n1") as one, \
                    CounterService(node_id="n2") as two, \
                    CounterService(node_id="n3") as three:
                one.counter("c").bump("a", 1)
                two.counter("c").bump("b", 2)
                three.counter("c").bump("c", 4)
                # A chain of rounds propagates everything everywhere.
                await one.anti_entropy(*two.address)
                await two.anti_entropy(*three.address)
                await one.anti_entropy(*three.address)
                values = {
                    node.counter("c").value for node in (one, two, three)
                }
                assert values == {7}

        run(scenario())


class TestThreadShim:
    def _start_service(self):
        """A CounterService on a private daemon loop; returns (address, stop)."""
        ready = threading.Event()
        box = {}

        async def serve():
            async with CounterService() as service:
                box["address"] = service.address
                box["service"] = service
                ready.set()
                await box["stop"].wait()

        def drive():
            loop = asyncio.new_event_loop()
            box["loop"] = loop
            asyncio.set_event_loop(loop)
            box["stop"] = asyncio.Event()
            loop.run_until_complete(serve())
            loop.close()

        thread = threading.Thread(target=drive, daemon=True)
        thread.start()
        assert ready.wait(10)

        def stop():
            box["loop"].call_soon_threadsafe(box["stop"].set)
            thread.join(10)

        return box, stop

    def test_threads_increment_and_wait(self):
        box, stop = self._start_service()
        try:
            with open_threadside(*box["address"], source="t") as endpoint:
                counter = endpoint.counter("work")
                released = []

                def waiter():
                    counter.check(300, timeout=10)
                    released.append(True)

                thread = spawn(waiter)
                for _ in range(300):
                    counter.increment()
                join_all([thread])
                assert released == [True]
                counter.flush()
                assert counter.value_rpc() == 300
                assert counter.value >= 300  # acked lower bound caught up
        finally:
            stop()

    def test_shim_timeout_raises_checktimeout(self):
        box, stop = self._start_service()
        try:
            with open_threadside(*box["address"]) as endpoint:
                counter = endpoint.counter("never")
                with pytest.raises(CheckTimeout):
                    counter.check(1, timeout=0.1)
        finally:
            stop()

    def test_shim_visible_in_obs_dump(self):
        from repro.obs.dump import dump_state

        box, stop = self._start_service()
        try:
            with open_threadside(*box["address"], source="t") as endpoint:
                counter = endpoint.counter("observed")
                thread = spawn(counter.check, 50, 10)
                wait_until(
                    lambda: counter.snapshot().waiting_levels == (50,), timeout=10
                )
                docs = [
                    d for d in dump_state()["counters"]
                    if d.get("dist", {}).get("backend") == "service"
                    and d["dist"]["counter"] == "observed"
                ]
                assert len(docs) == 1
                assert docs[0]["waiting"] == [
                    {"level": 50, "waiters": 1, "signaled": False}
                ]
                counter.increment(50)
                join_all([thread])
            # close() deregisters the handle.
            assert not any(
                d.get("dist", {}).get("counter") == "observed"
                for d in dump_state()["counters"]
            )
        finally:
            stop()


class TestGCounterServiceEquivalence:
    def test_service_state_is_a_gcounter(self):
        """The service's per-name state and a locally merged GCounter
        agree after any sequence of client traffic — the network layer
        adds transport, never semantics."""
        async def scenario():
            async with CounterService() as service:
                client = await AsyncCounterClient.connect(*service.address, source="x")
                try:
                    client.increment("c", 2)
                    await client.flush()
                    await client.increment_rpc("c", 3)
                    service.merge_digests({"c": {"peer": 4}})

                    local = GCounter()
                    local.merge({"x": 5, "peer": 4})
                    assert digests_equal(service.counter("c").digest(), local.digest())
                    assert service.counter("c").value == local.value == 9
                finally:
                    await client.close()

        run(scenario())
