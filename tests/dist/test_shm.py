"""ShmCounter: the shared-memory fabric across real processes.

Covers the lifecycle (publish/attach/close/unlink), single- and
multi-process increment/check, the doorbell and watcher wakeup paths,
crash-orphan slot reclamation (a SIGKILLed writer's slot is reclaimed
with its value intact — readers never observe a decrease), and the
observability surface.

Workers are module-level functions under the ``fork`` start method
(children inherit ``sys.path``); every child interaction is bounded by
timeouts so a fabric bug fails the test instead of hanging the suite.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.core.errors import CheckTimeout, CounterValueError
from repro.dist import ShmCounter
from tests.helpers import join_all, spawn, wait_until

ctx = multiprocessing.get_context("fork")


# ------------------------------------------------------- child entry points


def _incrementer(name: str, count: int, started) -> None:
    with ShmCounter.attach(name) as counter:
        started.set()
        for _ in range(count):
            counter.increment()


def _inc_then_wait(name: str, count: int, level: int) -> None:
    with ShmCounter.attach(name) as counter:
        for _ in range(count):
            counter.increment()
        counter.check(level, timeout=30)


def _crash_loop(name: str, started) -> None:  # pragma: no cover - SIGKILLed
    counter = ShmCounter.attach(name)
    started.set()
    while True:
        counter.increment()


def _monotone_reader(name: str, stop_at: int, violations) -> None:
    with ShmCounter.attach(name) as counter:
        last = 0
        while last < stop_at:
            value = counter.value
            if value < last:
                violations.put((last, value))
                return
            last = value


class TestLifecycle:
    def test_publish_attach_roundtrip(self):
        with ShmCounter.publish(slots=4) as owner:
            other = ShmCounter.attach(owner.name)
            try:
                assert other.slot != owner.slot
                owner.increment(3)
                other.increment(2)
                assert owner.value == other.value == 5
            finally:
                other.close()

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=64)
        try:
            with pytest.raises(ValueError, match="not a ShmCounter"):
                ShmCounter.attach(segment.name)
        finally:
            segment.close()
            segment.unlink()

    def test_slot_exhaustion_is_loud(self):
        with ShmCounter.publish(slots=1):
            pass  # owner holds the only slot; nothing to attach
        with ShmCounter.publish(slots=2) as owner:
            second = ShmCounter.attach(owner.name)
            try:
                with pytest.raises(RuntimeError, match="no free writer slot"):
                    ShmCounter.attach(owner.name)
            finally:
                second.close()

    def test_close_releases_the_slot(self):
        with ShmCounter.publish(slots=2) as owner:
            first = ShmCounter.attach(owner.name)
            taken = first.slot
            first.close()
            second = ShmCounter.attach(owner.name)
            try:
                assert second.slot == taken  # recycled, not leaked
            finally:
                second.close()

    def test_operations_after_close_raise(self):
        owner = ShmCounter.publish(slots=2)
        owner.close()
        with pytest.raises(ValueError, match="closed"):
            owner.increment()
        owner.unlink()

    def test_validation(self):
        with pytest.raises(ValueError):
            ShmCounter.publish(slots=0)
        with ShmCounter.publish(slots=2) as owner:
            with pytest.raises(CounterValueError):
                owner.increment(-1)
            with pytest.raises(CounterValueError):
                owner.check(-1)


class TestSingleProcess:
    def test_immediate_check_is_read_only(self):
        with ShmCounter.publish(slots=2) as counter:
            counter.increment(10)
            counter.check(10)          # satisfied: returns without waiting
            counter.check(10, timeout=0.0)
            assert counter.waiting_levels == ()

    def test_local_waiter_woken_by_local_increment(self):
        with ShmCounter.publish(slots=2) as counter:
            waiter = spawn(counter.check, 5)
            wait_until(lambda: counter.waiting_levels == (5,))
            counter.increment(5)
            join_all([waiter])

    def test_timeout_adjudicates_against_the_scan(self):
        with ShmCounter.publish(slots=2) as counter:
            counter.increment(2)
            start = time.monotonic()
            with pytest.raises(CheckTimeout):
                counter.check(5, timeout=0.1)
            assert time.monotonic() - start < 5.0
            assert counter.waiting_levels == ()


class TestMultiProcess:
    def test_cross_process_increments_sum(self):
        with ShmCounter.publish(slots=4) as owner:
            started = ctx.Event()
            child = ctx.Process(target=_incrementer, args=(owner.name, 500, started))
            child.start()
            assert started.wait(10)
            for _ in range(500):
                owner.increment()
            owner.check(1000, timeout=30)
            child.join(10)
            assert child.exitcode == 0
            assert owner.value == 1000

    def test_cross_process_rendezvous_both_ways(self):
        """Parent and child each produce half and wait for the whole —
        the paper's barrier idiom, across a process boundary."""
        with ShmCounter.publish(slots=4) as owner:
            child = ctx.Process(target=_inc_then_wait, args=(owner.name, 250, 500))
            child.start()
            for _ in range(250):
                owner.increment()
            owner.check(500, timeout=30)
            child.join(30)
            assert child.exitcode == 0

    def test_many_children_one_barrier(self):
        workers = 3
        per_worker = 200
        with ShmCounter.publish(slots=workers + 1) as owner:
            children = [
                ctx.Process(
                    target=_inc_then_wait,
                    args=(owner.name, per_worker, workers * per_worker),
                )
                for _ in range(workers)
            ]
            for child in children:
                child.start()
            owner.check(workers * per_worker, timeout=30)
            for child in children:
                child.join(30)
                assert child.exitcode == 0

    def test_readers_never_observe_a_decrease(self):
        """A reader process polling the scanned sum while a writer is
        SIGKILLed mid-loop must never see the value go down — the
        crash leaves the dead slot's contribution in place."""
        with ShmCounter.publish(slots=4) as owner:
            violations = ctx.Queue()
            started = ctx.Event()
            crasher = ctx.Process(target=_crash_loop, args=(owner.name, started))
            crasher.start()
            assert started.wait(10)
            wait_until(lambda: owner.value > 100, timeout=10)
            target = owner.value + 5000
            reader = ctx.Process(
                target=_monotone_reader, args=(owner.name, target, violations)
            )
            reader.start()
            time.sleep(0.05)
            os.kill(crasher.pid, signal.SIGKILL)
            crasher.join(10)
            # The crasher is gone; the parent closes the gap so the
            # reader terminates, watching monotonicity the whole way.
            owner.increment(target)
            reader.join(30)
            assert reader.exitcode == 0
            assert violations.empty(), f"monotonicity violated: {violations.get()}"


class TestCrashRecovery:
    def test_orphan_slot_reclaimed_with_value_intact(self):
        with ShmCounter.publish(slots=2) as owner:
            started = ctx.Event()
            crasher = ctx.Process(target=_crash_loop, args=(owner.name, started))
            crasher.start()
            assert started.wait(10)
            wait_until(lambda: owner.value > 0, timeout=10)
            os.kill(crasher.pid, signal.SIGKILL)
            crasher.join(10)
            before = owner.value

            # The dead pid's slot is the only free one; a new attach must
            # reclaim it without folding or zeroing its contribution.
            successor = ShmCounter.attach(owner.name)
            try:
                assert owner.value >= before  # nothing was lost
                successor.increment(7)
                assert owner.value == before + 7
                snapshot = successor.dist_snapshot()
                assert snapshot["slot"] == 1
                assert snapshot["published"] == before + 7
            finally:
                successor.close()

    def test_waiter_survives_writer_crash(self):
        """A parked waiter whose remote incrementer dies is not lost:
        another writer closing the gap still wakes it."""
        with ShmCounter.publish(slots=4) as owner:
            started = ctx.Event()
            crasher = ctx.Process(target=_crash_loop, args=(owner.name, started))
            crasher.start()
            assert started.wait(10)
            wait_until(lambda: owner.value > 0, timeout=10)
            os.kill(crasher.pid, signal.SIGKILL)
            crasher.join(10)
            target = owner.value + 10
            waiter = spawn(owner.check, target)
            wait_until(lambda: owner.waiting_levels == (target,))
            owner.increment(10)
            join_all([waiter])


class TestObservability:
    def test_snapshot_shows_local_waiters_and_remote_slots(self):
        with ShmCounter.publish(slots=4) as owner:
            other = ShmCounter.attach(owner.name)
            try:
                owner.increment(3)
                other.increment(4)
                waiter = spawn(owner.check, 99, None)
                wait_until(lambda: owner.waiting_levels == (99,))
                snap = owner.snapshot()
                assert snap.value == 7
                assert any(n.level == 99 and n.count >= 1 for n in snap.nodes)
                dist = owner.dist_snapshot()
                assert dist["backend"] == "shm"
                assert dist["published"] == 7
                assert len(dist["slots"]) == 2  # only active slots listed
                owner.increment(92)
                join_all([waiter])
            finally:
                other.close()

    def test_registered_in_obs_dump(self):
        from repro.obs.dump import dump_state

        with ShmCounter.publish(slots=2) as counter:
            counter.increment(5)
            docs = [
                d for d in dump_state()["counters"]
                if d.get("dist", {}).get("segment") == counter.name
            ]
            assert len(docs) == 1
            assert docs[0]["value"] == 5
            assert docs[0]["dist"]["backend"] == "shm"

    def test_remote_waiting_levels_visible(self):
        with ShmCounter.publish(slots=4) as owner:
            child = ctx.Process(target=_inc_then_wait, args=(owner.name, 1, 50))
            child.start()
            wait_until(
                lambda: any(
                    s.awaited is not None for s in owner.slot_snapshot()
                ),
                timeout=10,
            )
            snap = owner.snapshot()
            assert any(n.level == 50 for n in snap.nodes)
            owner.increment(49)
            child.join(30)
            assert child.exitcode == 0
