"""Tracing the shm fabric across real process boundaries.

The fork-based counterpart of ``test_obs_dist.py``: a writer child and
the waiting parent each keep their own event ring, the child ships its
ring to disk with :func:`repro.obs.collect.write_jsonl` before exiting,
and the parent merges the rings into one timeline.  The assertions pin
the cross-process doorbell chain — the writer's ``bell_ring`` and the
reader's ``bell_wake``/``release`` share one bell correlation token,
the release and the woken ``unpark`` share one wait token — and the
crash-recovery breadcrumb (a SIGKILLed writer's slot reclaimed with
``op="reclaim"`` naming the dead pid).

Same ground rules as ``test_shm.py``: fork start method, module-level
child functions, everything timeout-bounded.  Observability is enabled
*after* forking (and independently inside the child) so the two rings
never share pre-fork events.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

import repro.obs as obs
from repro.dist.shm import ShmCounter
from repro.obs.causal import CausalGraph
from repro.obs.collect import load_jsonl, merge, write_jsonl
from tests.helpers import join_all, spawn, wait_until

ctx = multiprocessing.get_context("fork")


@pytest.fixture(autouse=True)
def _obs_clean_slate():
    obs.disable()
    yield
    obs.disable()


def _traced_writer(name: str, ring_path: str, amount: int, go) -> None:
    """Attach, wait for the parent's go signal, ring the bell, ship the ring.

    ``go`` is set by the parent only once its waiter is *parked* (the
    mirror counts it) — an armed doorbell alone is not enough, because
    the increment could land in the waiter's post-registration re-scan
    window and satisfy the check without any park/bell chain to trace.
    """
    handle = obs.enable()
    with ShmCounter.attach(name) as counter:
        assert go.wait(10), "parent never signalled a parked waiter"
        counter.increment(amount)
    write_jsonl(handle.trace.snapshot(), ring_path)


def _parked(counter: ShmCounter) -> bool:
    return counter._mirror.snapshot().total_waiters >= 1


def _crash_loop(name: str, started) -> None:  # pragma: no cover - SIGKILLed
    counter = ShmCounter.attach(name)
    started.set()
    while True:
        counter.increment()


class TestBellChainAcrossProcesses:
    def test_merged_trace_links_writer_bell_to_reader_unpark(self, tmp_path):
        child_ring = str(tmp_path / "writer.jsonl")
        parent_ring = str(tmp_path / "reader.jsonl")
        with ShmCounter.publish(slots=4) as owner:
            go = ctx.Event()
            child = ctx.Process(target=_traced_writer,
                                args=(owner.name, child_ring, 3, go))
            child.start()
            handle = obs.enable()
            waiter = spawn(lambda: owner.check(3, timeout=15))
            wait_until(lambda: _parked(owner))
            go.set()
            join_all([waiter])
            child.join(10)
            assert child.exitcode == 0
        write_jsonl(handle.trace.snapshot(), parent_ring)
        obs.disable()

        merged = merge(load_jsonl(parent_ring), load_jsonl(child_ring))
        by_kind = {e.kind: e for e in merged}

        # The writer's slot claim and bell live in the child's pid...
        claim = by_kind["slot_claim"]
        assert claim.op == "claim" and claim.pid == child.pid
        bell = by_kind["bell_ring"]
        assert bell.pid == child.pid
        assert bell.corr is not None and bell.corr.startswith("bell:")
        # ...the wake, release, and unpark in the parent's, all tied
        # together by the bell corr and then the wait token.
        wake = by_kind["bell_wake"]
        assert wake.pid == os.getpid()
        assert wake.corr == bell.corr
        release = next(e for e in merged if e.kind == "release")
        assert release.pid == os.getpid()
        assert release.corr == bell.corr
        unpark = next(e for e in merged if e.kind == "unpark")
        assert unpark.token == release.token
        # Seq order within the parent: wake before the publish's chain.
        assert wake.seq < release.seq < unpark.seq

    def test_causal_graph_blames_the_writer_process(self, tmp_path):
        child_ring = str(tmp_path / "writer.jsonl")
        with ShmCounter.publish(slots=4) as owner:
            go = ctx.Event()
            child = ctx.Process(target=_traced_writer,
                                args=(owner.name, child_ring, 2, go))
            child.start()
            handle = obs.enable()
            waiter = spawn(lambda: owner.check(2, timeout=15))
            wait_until(lambda: _parked(owner))
            go.set()
            join_all([waiter])
            child.join(10)
            assert child.exitcode == 0
        parent_events = handle.trace.snapshot()
        obs.disable()

        merged = merge(
            [e.as_dict() | {"pid": os.getpid()} for e in parent_events],
            load_jsonl(child_ring),
        )
        graph = CausalGraph.from_events(merged)
        assert graph.multi_pid
        edge = next(e for e in graph.edges if e.origin is not None)
        assert edge.origin.kind == "bell_ring"
        assert edge.origin.pid == child.pid
        assert edge.crosses_pid
        path = graph.critical_path()
        assert {graph.thread_pid(s.thread) for s in path} >= {
            os.getpid(), child.pid
        }


class TestCrashReclamationIsTraced:
    def test_sigkilled_writers_slot_claim_shows_in_merged_trace(self, tmp_path):
        ring_path = str(tmp_path / "survivor.jsonl")
        with ShmCounter.publish(slots=4) as owner:
            started = ctx.Event()
            crasher = ctx.Process(target=_crash_loop,
                                  args=(owner.name, started))
            crasher.start()
            assert started.wait(10)
            wait_until(lambda: any(
                s.pid == crasher.pid for s in owner.slot_snapshot()
            ))
            os.kill(crasher.pid, signal.SIGKILL)
            crasher.join(10)

            handle = obs.enable()
            with ShmCounter.attach(owner.name):
                pass
            write_jsonl(handle.trace.snapshot(), ring_path)
            obs.disable()

        merged = merge(load_jsonl(ring_path))
        claim = next(e for e in merged if e.kind == "slot_claim")
        assert claim.op == "reclaim"
        assert claim.count == crasher.pid  # the displaced dead owner
        assert claim.pid == os.getpid()
