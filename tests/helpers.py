"""Shared helpers for the test suite: thread orchestration and polling."""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Sequence

#: Generous default so a wedged synchronization bug fails the test instead
#: of hanging the suite.
JOIN_TIMEOUT = 30.0


def spawn(fn: Callable[..., Any], *args: Any, name: str | None = None) -> threading.Thread:
    """Start a daemon thread running ``fn(*args)``."""
    thread = threading.Thread(target=fn, args=args, name=name, daemon=True)
    thread.start()
    return thread


def join_all(threads: Sequence[threading.Thread], timeout: float = JOIN_TIMEOUT) -> None:
    """Join every thread; fail the test if any is still alive."""
    deadline = time.monotonic() + timeout
    for thread in threads:
        remaining = deadline - time.monotonic()
        assert remaining > 0, f"timed out joining {thread.name}"
        thread.join(remaining)
        assert not thread.is_alive(), f"thread {thread.name} did not finish"


def wait_until(predicate: Callable[[], bool], timeout: float = 10.0, interval: float = 0.001) -> None:
    """Poll ``predicate`` until true; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached before timeout")
