"""Cross-module integration: patterns + apps + determinism + structured.

Each test wires at least three subsystems together the way a downstream
user would.
"""

from __future__ import annotations

import numpy as np

from repro.core import MonotonicCounter
from repro.determinism import DeterminismChecker, check_sequential_equivalence
from repro.patterns import ClosableBroadcast, OrderedRegion, SingleWriterBroadcast
from repro.structured import ThreadScope, multithreaded, multithreaded_for


class TestInstrumentedPatterns:
    def test_ordered_region_with_traced_counter(self):
        """OrderedRegion over a traced counter: checker certifies the
        §5.2 discipline end to end."""
        checker = DeterminismChecker()
        region = OrderedRegion(counter=checker.counter("order"))
        total = checker.shared(0.0, "total")

        def worker(i):
            with region.turn(i):
                total.modify(lambda v: v + float(i))

        multithreaded_for(worker, range(10))
        checker.assert_race_free()
        assert total.peek() == float(sum(range(10)))

    def test_broadcast_with_traced_counter(self):
        checker = DeterminismChecker()
        bc = SingleWriterBroadcast(16, counter=checker.counter("dataCount"))
        cells = [checker.shared(None, f"data[{i}]") for i in range(16)]

        def writer():
            for i in range(16):
                cells[i].write(i)
                bc.counter.increment(1)  # announce via the same counter

        def reader():
            out = []
            for i in range(16):
                bc.counter.check(i + 1)
                out.append(cells[i].read())
            assert out == list(range(16))

        multithreaded(writer, reader, reader)
        checker.assert_race_free()


class TestSequentialEquivalenceOfPatterns:
    def test_broadcast_pattern_sequentially_equivalent(self):
        """§6 grants sequential equivalence to the §5.3 program shape."""

        def program():
            bc = SingleWriterBroadcast(12)
            seen = []

            def writer():
                for i in range(12):
                    bc.publish(i * 3)

            def reader():
                seen.append(list(bc.read()))

            multithreaded(writer, reader, reader)
            return tuple(map(tuple, seen))

        verdict = check_sequential_equivalence(program, runs=5)
        assert verdict.equivalent

    def test_ordered_accumulation_sequentially_equivalent(self):
        from repro.apps.accumulate import (
            accumulate_counter,
            float_sum,
            ill_conditioned_terms,
        )

        terms = ill_conditioned_terms(12, seed=1)

        def program():
            return accumulate_counter(terms, float_sum, 0.0)

        verdict = check_sequential_equivalence(program, runs=5)
        assert verdict.equivalent

    def test_closable_broadcast_sequentially_equivalent(self):
        def program():
            stream = ClosableBroadcast()
            sums = []

            def writer():
                for i in range(20):
                    stream.publish(i)
                stream.close()

            def reader():
                sums.append(sum(stream.read()))

            multithreaded(writer, reader, reader, reader)
            return tuple(sums)

        verdict = check_sequential_equivalence(program, runs=5)
        assert verdict.equivalent
        assert verdict.sequential_result == (190, 190, 190)


class TestEndToEndApplications:
    def test_fw_heat_pipeline_composition(self):
        """Run Floyd-Warshall inside a scope alongside a heat simulation,
        with one counter coordinating their completion — the 'counters
        integrate with everything' claim exercised."""
        from repro.apps.floyd_warshall import (
            shortest_paths_counter,
            shortest_paths_reference,
        )
        from repro.apps.heat import heat_ragged, heat_sequential

        done = MonotonicCounter(name="jobs")
        edge = np.abs(np.random.default_rng(0).normal(5, 2, (24, 24)))
        np.fill_diagonal(edge, 0.0)
        rod = np.random.default_rng(1).uniform(0, 50, 18)
        results = {}

        def fw_job():
            results["fw"] = shortest_paths_counter(edge, 3)
            done.increment(1)

        def heat_job():
            results["heat"] = heat_ragged(rod, 40, num_threads=4)
            done.increment(1)

        def reporter():
            done.check(2, timeout=60)
            results["both_done_at"] = done.value

        with ThreadScope() as scope:
            scope.spawn(fw_job)
            scope.spawn(heat_job)
            scope.spawn(reporter)
        assert np.allclose(results["fw"], shortest_paths_reference(edge))
        assert np.allclose(results["heat"], heat_sequential(rod, 40))
        assert results["both_done_at"] >= 2

    def test_sim_model_agrees_with_real_implementation_structure(self):
        """The virtual-time FW model and the real counter FW must agree on
        sync-op counts (same protocol, different substrate)."""
        from repro.apps.sim_models import sim_floyd_warshall

        n, threads = 24, 4
        sim_result = sim_floyd_warshall(n, threads, "counter")
        sim_checks = sum(stats.sync_ops for stats in sim_result.tasks.values())

        counter = MonotonicCounter(stats=True)
        from repro.apps.floyd_warshall import shortest_paths_counter
        from repro.apps.graphs import random_dense_graph

        shortest_paths_counter(random_dense_graph(n, seed=0), threads, counter=counter)
        real_checks = counter.stats.checks + counter.stats.increments
        # Same protocol: threads*n checks + (n-1) increments on each side.
        assert real_checks == threads * n + (n - 1)
        assert sim_checks == threads * n + (n - 1)

    def test_wavefront_with_injected_traced_counters(self):
        from repro.patterns import wavefront_run

        checker = DeterminismChecker()
        grid = np.zeros((12, 12), dtype=np.int64)

        def cell(i, j):
            up = grid[i - 1, j] if i else 0
            left = grid[i, j - 1] if j else 0
            grid[i, j] = max(up, left) + 1

        wavefront_run(
            12, 12, cell, num_threads=3, col_block=4,
            counter_factory=lambda name: checker.counter(name),
        )
        assert grid[11, 11] == 23  # longest monotone path: (rows-1)+(cols-1)+1
        checker.assert_race_free()
