"""Every example script must run clean — they are part of the API surface."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, f"{script.name} failed:\n{result.stderr[-2000:]}"
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_examples_exist_and_include_quickstart():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor; we ship more


def test_module_self_check():
    result = subprocess.run(
        [sys.executable, "-m", "repro"], capture_output=True, text=True, timeout=120
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "all self-checks passed" in result.stdout
