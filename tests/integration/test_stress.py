"""Stress and failure-injection tests for the counter implementations."""

from __future__ import annotations

import random
import threading

import pytest

from repro.core import CheckTimeout, MonotonicCounter
from tests.helpers import join_all, spawn


class TestHeavyContention:
    def test_many_producers_many_level_consumers(self, counter):
        """8 producers x 500 increments, 8 consumers sweeping distinct
        level ladders: everything must release, value must be exact."""
        producers = 8
        per_producer = 500
        total = producers * per_producer
        finished = threading.Semaphore(0)

        def producer():
            for _ in range(per_producer):
                counter.increment(1)

        def consumer(stride):
            for level in range(stride, total + 1, stride):
                counter.check(level, timeout=60)
            finished.release()

        threads = [spawn(producer) for _ in range(producers)]
        threads += [spawn(consumer, stride) for stride in (1, 7, 13, 50, 99, 250, 499, 1000)]
        join_all(threads, timeout=90)
        for _ in range(8):
            assert finished.acquire(timeout=1)
        assert counter.value == total

    def test_randomized_mixed_workload_with_seed(self, counter_factory):
        """Seeded random mix of increments/checks across threads; checks
        always target levels the producers will reach, so the run must
        complete with the exact final value."""
        rng = random.Random(1234)
        counter = counter_factory()
        increments = [[rng.randint(0, 3) for _ in range(200)] for _ in range(4)]
        total = sum(map(sum, increments))

        def producer(chunks):
            for amount in chunks:
                counter.increment(amount)

        def checker():
            local = random.Random(99)
            for _ in range(50):
                counter.check(local.randint(0, total), timeout=60)

        threads = [spawn(producer, chunks) for chunks in increments]
        threads += [spawn(checker) for _ in range(4)]
        join_all(threads, timeout=90)
        assert counter.value == total


class TestTimeoutStorms:
    def test_interleaved_timeouts_and_successes(self, paper_counter):
        """Waves of timing-out checkers must not corrupt the wait list for
        the patient checkers that follow."""
        survivors = threading.Semaphore(0)

        def impatient():
            for _ in range(20):
                try:
                    paper_counter.check(10_000, timeout=0.001)
                except CheckTimeout:
                    pass

        def patient(level):
            paper_counter.check(level, timeout=60)
            survivors.release()

        threads = [spawn(impatient) for _ in range(4)]
        threads += [spawn(patient, level) for level in (5, 10, 15)]
        for _ in range(15):
            paper_counter.increment(1)
        for _ in range(3):
            assert survivors.acquire(timeout=30)
        join_all(threads, timeout=60)
        # After the storm: only reclaimable state may remain.
        snapshot = paper_counter.snapshot()
        assert all(node.level == 10_000 for node in snapshot.nodes) or not snapshot.nodes

    def test_timeout_churn_does_not_leak_nodes(self, paper_counter):
        for _ in range(100):
            with pytest.raises(CheckTimeout):
                paper_counter.check(999, timeout=0)
        assert paper_counter.snapshot().nodes == ()
        assert paper_counter.stats.timeouts == 100


class TestPhaseReuse:
    def test_reset_between_phases(self, counter):
        """The paper's Reset use case: reuse one counter across algorithm
        phases, with full quiescence between them."""
        for phase in range(5):
            releases = threading.Semaphore(0)
            threads = [
                spawn(lambda lv=level: (counter.check(lv, timeout=30), releases.release()))
                for level in (1, 2, 3)
            ]
            counter.increment(3)
            for _ in range(3):
                assert releases.acquire(timeout=30)
            join_all(threads)
            counter.reset()
            assert counter.value == 0

    def test_monotonic_value_observed_under_stress(self, counter):
        """Concurrent observers never see the value decrease."""
        observations: list[list[int]] = [[] for _ in range(3)]
        stop = threading.Event()

        def observer(slot):
            while not stop.is_set():
                observations[slot].append(counter.value)

        def producer():
            for _ in range(3000):
                counter.increment(1)
            stop.set()

        threads = [spawn(observer, i) for i in range(3)] + [spawn(producer)]
        join_all(threads, timeout=60)
        for series in observations:
            assert all(a <= b for a, b in zip(series, series[1:]))
