"""The analyzer on the live §4 workload: barrier vs ragged, blame, Gantt.

This is the acceptance test for the causal analysis as a whole: run the
imbalanced Floyd-Warshall shape both ways on real threads and the
analyzer must *measure* the paper's claim — the ragged counter
schedule's critical path is shorter than the barrier's on identical
per-thread work.
"""

from __future__ import annotations

import pytest

from repro.obs.causal import CausalGraph, analyze, render_gantt, render_report
from repro.obs.causal.workloads import run_imbalanced_fw

# Small costs keep the pair of runs around a quarter second total while
# staying far above scheduler jitter on a loaded CI host.
_KW = dict(threads=4, rounds=6, base_cost=0.002, imbalance=4.0, seed=7)


@pytest.fixture(scope="module")
def runs():
    barrier = run_imbalanced_fw("barrier", **_KW)
    ragged = run_imbalanced_fw("ragged", **_KW)
    return (
        (barrier, CausalGraph.from_events(barrier["events"])),
        (ragged, CausalGraph.from_events(ragged["events"])),
    )


class TestBarrierVsRagged:
    def test_ragged_critical_path_is_shorter(self, runs):
        (_, barrier_graph), (_, ragged_graph) = runs
        barrier_cp = barrier_graph.critical_path_duration()
        ragged_cp = ragged_graph.critical_path_duration()
        assert ragged_cp < barrier_cp, (
            f"ragged critical path {ragged_cp * 1e3:.1f}ms should beat "
            f"barrier {barrier_cp * 1e3:.1f}ms"
        )

    def test_ragged_finishes_sooner(self, runs):
        (barrier, _), (ragged, _) = runs
        assert ragged["wall_s"] < barrier["wall_s"]

    def test_both_schedules_have_full_edge_coverage(self, runs):
        for _, graph in runs:
            woken = [w for w in graph.waits if not w.timed_out]
            assert woken
            assert len(graph.edges) == len(woken)

    def test_barrier_blame_names_the_phase_counter(self, runs):
        (_, barrier_graph), _ = runs
        blame = barrier_graph.blame()
        assert blame
        for entries in blame.values():
            assert entries[0]["source"] == "phase"
            assert entries[0]["released_by"] is not None

    def test_ragged_blame_names_the_predecessor_counter(self, runs):
        _, (_, ragged_graph) = runs
        sources = {
            entry["source"]
            for entries in ragged_graph.blame().values()
            for entry in entries
        }
        assert sources and all(s.startswith("row_done_") for s in sources)


class TestReportRendering:
    def test_report_dict_is_json_shaped(self, runs):
        (_, graph), _ = runs
        report = analyze(graph)
        import json

        json.dumps(report)  # everything JSON-serializable
        assert report["events"] == len(graph.events)
        assert report["edges"] == len(graph.edges)
        assert len(report["threads"]) == 4
        assert report["critical_path"]["duration_s"] > 0
        for thread in report["threads"]:
            assert 0.0 <= thread["wait_pct"] <= 100.0

    def test_text_report_contains_the_blame_sentence(self, runs):
        (_, graph), _ = runs
        text = render_report(analyze(graph), graph)
        assert "critical path:" in text
        assert "waiting on counter 'phase'" in text
        assert "released by T" in text
        assert "(#=running  .=waiting" in text  # the Gantt rides along

    def test_gantt_has_one_row_per_thread(self, runs):
        (_, graph), _ = runs
        lines = render_gantt(graph, width=60).splitlines()
        assert len(lines) == 1 + 4  # legend + one row per thread
        for row in lines[1:]:
            assert row.endswith("|")
            body = row.split("|")[1]
            assert len(body) == 60
            assert set(body) <= {"#", ".", " "}

    def test_gantt_of_empty_graph(self):
        assert render_gantt(CausalGraph.from_events([])) == "(empty trace)"
