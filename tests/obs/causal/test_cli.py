"""The causal CLI subcommands (`analyze`, `critical-path`, `export`) and
the extended `sample` artifact set, exercised as real subprocesses —
the same invocations CI runs.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.causal import validate_perfetto
from repro.obs.events import Event

REPO = Path(__file__).resolve().parents[3]


def _run(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.obs", *args],
        capture_output=True, text=True, timeout=120, env=env, cwd=REPO,
    )


@pytest.fixture(scope="module")
def trace_jsonl(tmp_path_factory):
    """A small hand-built v2 trace on disk, so the read-from-file paths
    are tested without paying for a live workload per test."""
    events = [
        Event(ts=0.10, kind="park", source="c", thread=101, level=2,
              value=0, seq=1, token=7),
        Event(ts=0.20, kind="increment", source="c", thread=102, amount=2,
              value=2, seq=2),
        Event(ts=0.20, kind="release", source="c", thread=102, level=2,
              value=2, seq=3, token=7, cause_seq=2),
        Event(ts=0.25, kind="unpark", source="c", thread=101, level=2,
              wait_s=0.15, wakeup_s=0.05, seq=4, token=7),
    ]
    path = tmp_path_factory.mktemp("trace") / "trace.jsonl"
    path.write_text("\n".join(json.dumps(e.as_dict()) for e in events) + "\n")
    return str(path)


class TestAnalyzeCommand:
    def test_text_report_from_jsonl(self, trace_jsonl):
        proc = _run("analyze", "--in", trace_jsonl)
        assert proc.returncode == 0, proc.stderr
        assert "critical path:" in proc.stdout
        assert "waiting on counter 'c'" in proc.stdout

    def test_json_report_from_jsonl(self, trace_jsonl):
        proc = _run("analyze", "--in", trace_jsonl, "--json")
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)
        assert report["events"] == 4
        assert report["edges"] == 1
        assert report["critical_path"]["duration_s"] > 0

    def test_demo_workload_analyzes(self):
        proc = _run("analyze", "--demo", "--json")
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)
        assert report["events"] > 0

    def test_without_a_source_fails_with_guidance(self):
        proc = _run("analyze")
        assert proc.returncode == 1
        assert "--in" in proc.stderr and "--fw" in proc.stderr


class TestCriticalPathCommand:
    def test_json_path_steps(self, trace_jsonl):
        proc = _run("critical-path", "--in", trace_jsonl, "--json")
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["duration_s"] > 0
        kinds = [s["kind"] for s in payload["steps"]]
        assert "wakeup" in kinds

    def test_text_output(self, trace_jsonl):
        proc = _run("critical-path", "--in", trace_jsonl)
        assert proc.returncode == 0, proc.stderr
        assert "critical path" in proc.stdout


class TestExportCommand:
    def test_perfetto_export_is_schema_valid(self, trace_jsonl, tmp_path):
        out = tmp_path / "trace.perfetto.json"
        proc = _run("export", "--format", "perfetto", "--in", trace_jsonl,
                    "--out", str(out))
        assert proc.returncode == 0, proc.stderr
        doc = json.loads(out.read_text())
        assert validate_perfetto(doc) == []
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]
        assert len(flows) == 2  # one release edge -> one s/f pair

    def test_otel_export_to_stdout(self, trace_jsonl):
        proc = _run("export", "--format", "otel", "--in", trace_jsonl)
        assert proc.returncode == 0, proc.stderr
        doc = json.loads(proc.stdout)
        spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert any(s["kind"] == "SPAN_KIND_CONSUMER" for s in spans)

    def test_fw_workload_round_trips_through_perfetto(self, tmp_path):
        out = tmp_path / "fw.perfetto.json"
        proc = _run("export", "--format", "perfetto", "--fw", "ragged",
                    "--threads", "3", "--rounds", "3", "--out", str(out))
        assert proc.returncode == 0, proc.stderr
        doc = json.loads(out.read_text())
        assert validate_perfetto(doc) == []
        assert any(e["ph"] == "s" for e in doc["traceEvents"])


class TestSampleGainsCausalArtifacts:
    def test_sample_writes_perfetto_and_analysis(self, tmp_path):
        out = tmp_path / "obs-sample"
        proc = _run("sample", "--out", str(out))
        assert proc.returncode == 0, proc.stderr

        doc = json.loads((out / "trace.perfetto.json").read_text())
        assert validate_perfetto(doc) == []

        analysis = (out / "analyze.txt").read_text()
        assert "critical path:" in analysis
        assert "release edges" in proc.stdout
