"""The determinacy trace diff, cross-validated against vector clocks.

Section 6: counter-only programs are determinate — every schedule
computes the same thing.  The trace-level form: run the Figure-2 fan-in
across many seeded schedules, canonicalize each trace (drop timestamps,
thread idents, seqs — keep what program semantics determine), and the
canonical traces must all compare equal.  The lock-rank anti-example
leaks acquisition order into its increment amounts, so its canonical
traces diverge between schedules — and the same program shape, run
under :class:`~repro.determinism.DeterminismChecker`, is flagged as
racy by the vector-clock analysis.  Two independent determinacy
instruments, one verdict.
"""

from __future__ import annotations

import threading

from repro.determinism import DeterminismChecker
from repro.obs.causal import canonical_trace, trace_diff
from repro.obs.causal.diff import canonical_source
from repro.obs.causal.workloads import _FIG2_AMOUNTS, run_figure2, run_lock_rank

SEEDS = range(20)


class TestCanonicalization:
    def test_anonymous_source_suffix_is_stripped(self):
        assert canonical_source("MonotonicCounter@0x7f3a2b1c") == "MonotonicCounter"
        assert canonical_source("fig2") == "fig2"

    def test_canonical_trace_shape(self):
        events = run_figure2(0, workers=3, jitter=0.001)
        canon = canonical_trace(events)
        assert set(canon) == {"fig2"}
        entry = canon["fig2"]
        assert entry["amounts"] == tuple(sorted(_FIG2_AMOUNTS[:3]))
        assert entry["final"] == sum(_FIG2_AMOUNTS[:3])
        assert entry["increments"] == 3

    def test_diff_reports_localized_divergence(self):
        a = {"c": {"amounts": (1, 2), "final": 3, "increments": 2}}
        b = {"c": {"amounts": (1, 3), "final": 4, "increments": 2}}
        result = trace_diff(a, b)
        assert not result["equal"]
        assert any("amounts" in d for d in result["diffs"])
        assert any("final" in d for d in result["diffs"])

    def test_diff_flags_missing_source(self):
        result = trace_diff({"c": {"amounts": (), "final": 0, "increments": 0}}, {})
        assert not result["equal"]
        assert "only present" in result["diffs"][0]


class TestDeterminacyAcrossSchedules:
    def test_counter_program_canonical_trace_is_schedule_invariant(self):
        """≥20 seeded schedules of the Figure-2 fan-in: all canonical
        traces equal (the §6 determinacy claim, observed)."""
        reference = canonical_trace(run_figure2(SEEDS[0], jitter=0.002))
        for seed in SEEDS[1:]:
            canon = canonical_trace(run_figure2(seed, jitter=0.002))
            result = trace_diff(reference, canon)
            assert result["equal"], f"seed {seed} diverged: {result['diffs']}"

    def test_lock_program_canonical_traces_diverge(self):
        """The lock-rank variant is schedule-dependent: across the same
        20 seeds at least one pair of canonical traces must differ, and
        the diff names the increment amounts as the divergence."""
        canons = [canonical_trace(run_lock_rank(seed, jitter=0.002)) for seed in SEEDS]
        diverged = [
            trace_diff(canons[0], canon)
            for canon in canons[1:]
            if not trace_diff(canons[0], canon)["equal"]
        ]
        assert diverged, "lock-rank variant never diverged across 20 seeds"
        assert any(
            "amounts" in line for result in diverged for line in result["diffs"]
        )


class TestVectorClockCrossValidation:
    """The same program shapes under the §6 vector-clock checker."""

    def test_counter_fan_in_is_race_free(self):
        checker = DeterminismChecker()
        c = checker.counter("fig2")
        total = checker.shared(0, "total")
        amounts = (1, 2, 3)

        def incrementer(i):
            c.increment(amounts[i])

        def waiter():
            c.check(sum(amounts))
            total.write(c.value)

        threads = [threading.Thread(target=waiter)]
        threads += [threading.Thread(target=incrementer, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert checker.report().race_free
        assert total.peek() == sum(amounts)

    def test_lock_rank_shape_is_flagged_racy(self):
        # The rank box is ordered by a lock, which the counter-aware
        # happens-before cannot see: concurrent modify()s race.  This is
        # the vector-clock verdict matching the trace diff's divergence.
        checker = DeterminismChecker()
        rank = checker.shared(0, "rank")
        lock = threading.Lock()

        def worker():
            with lock:
                rank.modify(lambda v: v + 1)

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not checker.report().race_free
