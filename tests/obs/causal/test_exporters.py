"""Perfetto and OTel exports: schema validity, flow arrows, determinism."""

from __future__ import annotations

import json

import pytest

from repro.obs.causal import CausalGraph, to_otel, to_perfetto, validate_perfetto
from repro.obs.events import Event


def _ev(seq, ts, kind, thread, **kw):
    return Event(ts=ts, kind=kind, source=kw.pop("source", "c"), thread=thread,
                 seq=seq, **kw)


@pytest.fixture()
def graph():
    # Two waiters at different levels, both released by one incrementer.
    return CausalGraph.from_events([
        _ev(1, 0.10, "park", 101, level=2, value=0, token=7),
        _ev(2, 0.12, "park", 102, level=3, value=0, token=8),
        _ev(3, 0.20, "increment", 103, amount=3, value=3),
        _ev(4, 0.20, "release", 103, level=2, value=3, token=7, cause_seq=3),
        _ev(5, 0.20, "release", 103, level=3, value=3, token=8, cause_seq=3),
        _ev(6, 0.25, "unpark", 101, level=2, token=7),
        _ev(7, 0.26, "unpark", 102, level=3, token=8),
        _ev(8, 0.30, "increment", 101, amount=1, value=4),
    ])


class TestPerfetto:
    def test_export_is_schema_valid(self, graph):
        doc = to_perfetto(graph)
        assert validate_perfetto(doc) == []
        assert doc["traceEvents"], "non-empty trace exports events"

    def test_one_flow_arrow_per_release_edge(self, graph):
        doc = to_perfetto(graph)
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == len(graph.edges) == 2
        assert len(finishes) == len(graph.edges)
        # Arrows go from the releasing thread to each woken thread.
        assert {e["tid"] for e in starts} == {103}
        assert {e["tid"] for e in finishes} == {101, 102}
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}

    def test_thread_metadata_and_wait_slices(self, graph):
        doc = to_perfetto(graph)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["tid"] for e in meta} == {101, 102, 103}
        waits = [e for e in doc["traceEvents"]
                 if e["ph"] == "X" and e["cat"] == "wait"]
        assert len(waits) == 2
        assert all(e["dur"] > 0 and e["ts"] >= 0 for e in waits)
        assert any("c >= 2" in e["name"] for e in waits)

    def test_increments_become_instants(self, graph):
        doc = to_perfetto(graph)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 2
        assert all(e["s"] == "t" for e in instants)

    def test_export_round_trips_through_json(self, graph):
        doc = to_perfetto(graph)
        assert validate_perfetto(json.loads(json.dumps(doc))) == []


class TestPerfettoValidator:
    """The validator must actually reject malformed documents."""

    def test_rejects_missing_trace_events(self):
        assert validate_perfetto({}) == ["traceEvents missing or not a list"]

    def test_rejects_slice_without_duration(self, graph):
        doc = to_perfetto(graph)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        del slices[0]["dur"]
        assert any("dur" in p for p in validate_perfetto(doc))

    def test_rejects_orphan_flow_start(self, graph):
        doc = to_perfetto(graph)
        doc["traceEvents"] = [e for e in doc["traceEvents"] if e["ph"] != "f"]
        problems = validate_perfetto(doc)
        assert any("start without finish" in p for p in problems)

    def test_rejects_negative_timestamp(self, graph):
        doc = to_perfetto(graph)
        next(e for e in doc["traceEvents"] if e["ph"] == "X")["ts"] = -1.0
        assert any("negative" in p for p in validate_perfetto(doc))

    def test_rejects_unknown_phase(self, graph):
        doc = to_perfetto(graph)
        doc["traceEvents"].append({"ph": "Z", "pid": 1, "tid": 1})
        assert any("unknown ph" in p for p in validate_perfetto(doc))


class TestOtel:
    def test_otlp_shape_and_span_kinds(self, graph):
        doc = to_otel(graph)
        scope = doc["resourceSpans"][0]["scopeSpans"][0]
        assert scope["scope"]["name"] == "repro.obs.causal"
        spans = scope["spans"]
        kinds = {s["kind"] for s in spans}
        assert kinds == {"SPAN_KIND_INTERNAL", "SPAN_KIND_PRODUCER", "SPAN_KIND_CONSUMER"}
        for span in spans:
            assert len(span["traceId"]) == 32
            assert len(span["spanId"]) == 16
            int(span["traceId"], 16), int(span["spanId"], 16)
            assert int(span["endTimeUnixNano"]) >= int(span["startTimeUnixNano"])

    def test_wait_spans_link_to_their_releasing_increment(self, graph):
        doc = to_otel(graph)
        spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        by_id = {s["spanId"]: s for s in spans}
        waits = [s for s in spans if s["kind"] == "SPAN_KIND_CONSUMER"]
        assert len(waits) == 2
        for span in waits:
            (link,) = span["links"]
            target = by_id[link["spanId"]]
            assert target["name"].startswith("increment")

    def test_wait_spans_are_children_of_their_thread_root(self, graph):
        doc = to_otel(graph)
        spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        roots = {s["spanId"] for s in spans if s["kind"] == "SPAN_KIND_INTERNAL"}
        for span in spans:
            if span["kind"] != "SPAN_KIND_INTERNAL":
                assert span["parentSpanId"] in roots

    def test_export_is_deterministic(self, graph):
        assert json.dumps(to_otel(graph)) == json.dumps(to_otel(graph))
