"""CausalGraph construction on synthetic traces (no threads needed).

Hand-built event lists pin the matching rules exactly: tokened waits
match release→unpark by token, token-less (BroadcastCounter-shaped)
waits match FIFO per (thread, source, level), timeouts get no edge, and
a truncated ring (park fell off the far end) degrades to fewer waits
rather than crashing or mismatching.
"""

from __future__ import annotations

import json

from repro.obs.causal import CausalGraph
from repro.obs.events import Event


def _ev(seq, ts, kind, thread, **kw):
    return Event(ts=ts, kind=kind, source=kw.pop("source", "c"), thread=thread,
                 seq=seq, **kw)


def _fan_out_trace():
    """T1 parks at level 2 (token 7), T2 increments to 2, releasing it."""
    return [
        _ev(1, 0.10, "park", 101, level=2, value=0, token=7),
        _ev(2, 0.20, "increment", 102, amount=2, value=2),
        _ev(3, 0.20, "release", 102, level=2, value=2, token=7, cause_seq=2),
        _ev(4, 0.25, "unpark", 101, level=2, wait_s=0.15, wakeup_s=0.05, token=7),
    ]


class TestMatching:
    def test_tokened_wait_matches_and_edge_carries_the_increment(self):
        graph = CausalGraph.from_events(_fan_out_trace())
        assert len(graph.waits) == 1
        wait = graph.waits[0]
        assert (wait.thread, wait.level, wait.token) == (101, 2, 7)
        assert not wait.timed_out
        assert abs(wait.duration - 0.15) < 1e-9
        assert len(graph.edges) == 1
        edge = graph.edges[0]
        assert edge.from_thread == 102 and edge.to_thread == 101
        assert edge.increment is not None and edge.increment.seq == 2
        assert graph.edge_by_end[4] is edge

    def test_shared_node_one_release_wakes_two_waiters(self):
        # Two threads share level 3's node (same token): one release event
        # per node, but each waiter's unpark gets its own edge.
        trace = [
            _ev(1, 0.1, "park", 101, level=3, value=0, token=9),
            _ev(2, 0.1, "park", 102, level=3, value=0, token=9),
            _ev(3, 0.2, "increment", 103, amount=3, value=3),
            _ev(4, 0.2, "release", 103, level=3, value=3, count=2, token=9, cause_seq=3),
            _ev(5, 0.3, "unpark", 101, level=3, token=9),
            _ev(6, 0.3, "unpark", 102, level=3, token=9),
        ]
        graph = CausalGraph.from_events(trace)
        assert len(graph.waits) == 2
        assert len(graph.edges) == 2
        assert {e.to_thread for e in graph.edges} == {101, 102}
        assert all(e.from_thread == 103 for e in graph.edges)

    def test_tokenless_waits_match_fifo_per_thread_source_level(self):
        trace = [
            _ev(1, 0.1, "park", 101, level=1, value=0),
            _ev(2, 0.2, "unpark", 101, level=1),
            _ev(3, 0.3, "park", 101, level=1, value=1),
            _ev(4, 0.4, "unpark", 101, level=1),
        ]
        graph = CausalGraph.from_events(trace)
        assert len(graph.waits) == 2
        assert [w.park.seq for w in graph.waits] == [1, 3]
        assert graph.edges == []  # no tokens, no release correlation

    def test_timeout_closes_the_wait_but_gets_no_edge(self):
        trace = [
            _ev(1, 0.1, "park", 101, level=5, value=0, token=4),
            _ev(2, 0.2, "timeout", 101, level=5, value=0, wait_s=0.1, token=4),
        ]
        graph = CausalGraph.from_events(trace)
        assert len(graph.waits) == 1
        assert graph.waits[0].timed_out
        assert graph.edges == []

    def test_truncated_trace_drops_the_orphan_end_event(self):
        # The park fell off the ring: the unpark cannot be matched and the
        # graph simply has no wait for it.
        trace = [
            _ev(10, 1.0, "unpark", 101, level=2, token=7),
            _ev(11, 1.1, "increment", 102, amount=1, value=3),
        ]
        graph = CausalGraph.from_events(trace)
        assert graph.waits == [] and graph.edges == []
        assert len(graph.events) == 2

    def test_events_ordered_by_seq_not_buffer_position(self):
        # Deferred release emission appends the unpark physically first;
        # seq order must win.
        trace = list(reversed(_fan_out_trace()))
        graph = CausalGraph.from_events(trace)
        assert [e.seq for e in graph.events] == [1, 2, 3, 4]
        assert len(graph.edges) == 1

    def test_from_dicts_and_jsonl_round_trip(self, tmp_path):
        events = _fan_out_trace()
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(json.dumps(e.as_dict()) for e in events) + "\n")
        graph = CausalGraph.from_jsonl(str(path))
        assert len(graph.events) == 4
        assert len(graph.edges) == 1
        assert graph.events[0] == events[0]


class TestStructure:
    def test_segments_tile_the_thread_span(self):
        graph = CausalGraph.from_events(_fan_out_trace())
        segments = graph.segments(101)
        kinds = [s[0] for s in segments]
        assert kinds == ["wait"] or kinds == ["wait", "run"]
        wait = segments[0]
        assert (wait[1], wait[2]) == (0.10, 0.25)

    def test_thread_names_follow_first_appearance(self):
        graph = CausalGraph.from_events(_fan_out_trace())
        assert graph.thread_name(101) == "T0"
        assert graph.thread_name(102) == "T1"

    def test_critical_path_jumps_through_the_release_edge(self):
        trace = [
            _ev(0, 0.05, "increment", 102, amount=0, value=0),
        ] + _fan_out_trace() + [
            _ev(5, 0.40, "increment", 101, amount=1, value=3),
        ]
        graph = CausalGraph.from_events(trace)
        path = graph.critical_path()
        assert path, "non-empty trace must yield a path"
        # Oldest-first: starts with the releasing thread's run up to the
        # release, jumps to the woken thread's wakeup + run.
        assert path[0].thread == 102 and path[0].kind == "run"
        assert any(s.kind == "wakeup" and s.thread == 101 for s in path)
        assert path[-1].end == 0.40
        assert abs(graph.critical_path_duration() - (0.40 - 0.05)) < 1e-9

    def test_blame_attributes_wait_to_source_level_and_releaser(self):
        graph = CausalGraph.from_events(_fan_out_trace())
        blame = graph.blame()
        assert set(blame) == {101}
        (entry,) = blame[101]
        assert entry["source"] == "c"
        assert entry["level"] == 2
        assert entry["released_by"] == 102
        assert entry["count"] == 1
        assert abs(entry["wait_s"] - 0.15) < 1e-9

    def test_empty_trace_is_harmless(self):
        graph = CausalGraph.from_events([])
        assert graph.critical_path() == []
        assert graph.critical_path_duration() == 0.0
        assert graph.span() == (0.0, 0.0)
        assert graph.blame() == {}
