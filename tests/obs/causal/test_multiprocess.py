"""Cross-process causal analysis over merged (schema v3) traces.

Synthetic two-process traces built event by event, so every assertion
pins an exact mechanism: per-pid seq qualification (both processes use
seq 2 for different events), the wire edge through ``push_deliver``'s
corr + ``cause_seq``, the bell-origin upgrade on shm mirror releases,
and the exporters' multi-pid forms.  The same shapes produced by a live
service/client pair are exercised in ``tests/dist/test_obs_dist.py``.
"""

from __future__ import annotations

from repro.obs.causal import (
    CausalGraph,
    analyze,
    render_gantt,
    render_report,
    to_otel,
    to_perfetto,
    validate_perfetto,
)
from repro.obs.events import Event

CLIENT, SERVER = 1001, 2002


def ev(ts, kind, pid, thread, **kw):
    return Event(ts=ts, kind=kind, source=kw.pop("source", "c"),
                 thread=thread, pid=pid, **kw)


def wire_trace():
    """A dist check satisfied over the wire: sub → increment → push → unpark.

    Client pid 1001 thread 11 parks; server pid 2002 thread 22 increments
    and pushes.  Both pids deliberately reuse the small seqs 1..4 — a
    collision an unqualified seq index would resolve to the wrong event.
    """
    corr = "3e9-1"
    return [
        ev(0.001, "park", CLIENT, 11, source="client:c/orders", level=3,
           token=7, seq=1),
        ev(0.002, "frame_send", CLIENT, 11, source="client:c", op="sub",
           corr=corr, seq=2),
        ev(0.003, "frame_recv", SERVER, 22, source="service:svc", op="sub",
           corr=corr, seq=1),
        ev(0.004, "increment", SERVER, 22, source="service:svc/orders",
           amount=3, value=3, seq=2),
        ev(0.005, "push_deliver", SERVER, 22, source="service:svc/orders",
           level=3, corr=corr, cause_seq=2, seq=3),
        ev(0.006, "frame_send", SERVER, 22, source="service:svc",
           op="reached", corr=corr, seq=4),
        ev(0.007, "frame_recv", CLIENT, 11, source="client:c", op="reached",
           corr=corr, seq=3),
        ev(0.008, "unpark", CLIENT, 11, source="client:c/orders", level=3,
           token=7, corr=corr, wait_s=0.007, wakeup_s=0.003, seq=4),
    ]


def bell_trace():
    """A shm wakeup: writer rings the bell, reader's watcher publishes.

    The reader-side release is token-matched locally (the mirror), but
    its corr names the *writer's* bell_ring — the edge's origin.
    """
    corr = "bell:seg:5"
    writer, reader = 3003, 4004
    return [
        ev(0.001, "park", reader, 41, source="shm:seg", level=2, token=9,
           seq=1),
        ev(0.002, "increment", writer, 31, source="shm:seg", amount=2,
           value=2, seq=1),
        ev(0.003, "bell_ring", writer, 31, source="shm:seg", corr=corr,
           level=1, value=2, seq=2),
        ev(0.004, "bell_wake", reader, 42, source="shm:seg", corr=corr,
           seq=2),
        ev(0.005, "increment", reader, 42, source="shm:seg", amount=2,
           value=2, seq=3),
        ev(0.006, "release", reader, 42, source="shm:seg", level=2, count=1,
           token=9, corr=corr, cause_seq=3, seq=4),
        ev(0.007, "unpark", reader, 41, source="shm:seg", level=2, token=9,
           wait_s=0.006, seq=5),
    ]


class TestWireEdges:
    def test_push_deliver_bridges_the_processes(self):
        graph = CausalGraph.from_events(wire_trace())
        assert graph.multi_pid
        assert graph.pids == [CLIENT, SERVER]
        (edge,) = graph.edges
        assert edge.origin is not None and edge.origin.kind == "push_deliver"
        assert edge.crosses_pid
        assert edge.from_thread == (SERVER, 22)
        assert edge.to_thread == (CLIENT, 11)

    def test_in_process_service_wakeup_still_forms_a_push_edge(self):
        # Server loop and client threads sharing one pid: the client's
        # park/unpark has no token-matched release (the service's
        # internal release carries its own wait-record token), so the
        # edge must come from the push_deliver echoing the sub corr —
        # the correlation indexes cannot be gated on multi_pid.
        pid, corr = 5005, "ab-1"
        trace = [
            ev(0.001, "frame_send", pid, 11, source="client:c", op="sub",
               corr=corr, seq=1),
            ev(0.002, "frame_recv", pid, 22, source="service:svc", op="sub",
               corr=corr, seq=2),
            ev(0.003, "park", pid, 11, source="client:c/jobs", level=3,
               token=1, corr=corr, seq=3),
            ev(0.004, "increment", pid, 22, source="service:svc/jobs",
               amount=3, value=3, seq=4),
            ev(0.005, "release", pid, 22, source="service:svc/jobs", level=3,
               count=1, token=2, cause_seq=4, seq=5),
            ev(0.006, "push_deliver", pid, 22, source="service:svc/jobs",
               level=3, corr=corr, cause_seq=4, seq=6),
            ev(0.007, "unpark", pid, 11, source="client:c/jobs", level=3,
               token=1, corr=corr, wait_s=0.004, seq=7),
        ]
        graph = CausalGraph.from_events(trace)
        assert not graph.multi_pid
        (edge,) = graph.edges
        assert edge.origin is not None and edge.origin.kind == "push_deliver"
        assert edge.from_thread == 22 and edge.to_thread == 11
        assert edge.increment is not None and edge.increment.seq == 4

    def test_increment_resolution_is_pid_qualified(self):
        # seq 2 exists in both pids: the client's is a frame_send, the
        # server's is the satisfying increment.  Only the pid-qualified
        # lookup finds the right one.
        graph = CausalGraph.from_events(wire_trace())
        (edge,) = graph.edges
        assert edge.increment is not None
        assert edge.increment.kind == "increment"
        assert edge.increment.pid == SERVER
        assert edge.increment.seq == 2

    def test_frame_pairs_cross_pids(self):
        graph = CausalGraph.from_events(wire_trace())
        assert len(graph.wire_edges) == 2
        for send, recv in graph.wire_edges:
            assert send.kind == "frame_send" and recv.kind == "frame_recv"
            assert send.corr == recv.corr
            assert send.pid != recv.pid

    def test_critical_path_spans_both_processes(self):
        graph = CausalGraph.from_events(wire_trace())
        path = graph.critical_path()
        pids_on_path = {graph.thread_pid(step.thread) for step in path}
        assert pids_on_path >= {CLIENT, SERVER}
        wakeup = next(s for s in path if s.kind == "wakeup")
        assert "over the wire" in wakeup.detail

    def test_thread_names_carry_pids(self):
        graph = CausalGraph.from_events(wire_trace())
        names = {graph.thread_name(k) for k in graph.threads}
        assert names == {f"p{CLIENT}/T0", f"p{SERVER}/T1"}


class TestBellEdges:
    def test_local_release_upgrades_to_foreign_bell_origin(self):
        graph = CausalGraph.from_events(bell_trace())
        (edge,) = graph.edges
        assert edge.release.kind == "release"
        assert edge.origin is not None and edge.origin.kind == "bell_ring"
        assert edge.origin.pid == 3003
        assert edge.crosses_pid
        assert edge.from_thread == (3003, 31)

    def test_critical_path_reaches_the_writer(self):
        graph = CausalGraph.from_events(bell_trace())
        path = graph.critical_path()
        assert {graph.thread_pid(s.thread) for s in path} >= {3003, 4004}


class TestSinglePidBackCompat:
    def test_uniform_pid_stamp_keeps_v2_key_shapes(self):
        # A ring collected from ONE process is pid-stamped but not merged:
        # thread keys stay raw ints, edge_by_end stays bare-seq, names
        # stay "T0" — exactly the schema-v2 reading of the same trace.
        events = [
            ev(0.001, "park", 500, 11, source="c", level=1, token=3, seq=1),
            ev(0.002, "increment", 500, 12, source="c", amount=1, value=1,
               seq=2),
            ev(0.003, "release", 500, 12, source="c", level=1, count=1,
               token=3, cause_seq=2, seq=3),
            ev(0.004, "unpark", 500, 11, source="c", level=1, token=3,
               seq=4),
        ]
        graph = CausalGraph.from_events(events)
        assert not graph.multi_pid
        assert graph.pids == [500]
        assert all(isinstance(k, int) for k in graph.threads)
        assert set(graph.edge_by_end) == {4}
        assert graph.thread_name(11) == "T0"
        assert graph.thread_pid(11) == 500  # the stamp still answers


class TestMultiPidExporters:
    def test_perfetto_validates_with_real_pids_and_wire_flows(self):
        graph = CausalGraph.from_events(wire_trace())
        doc = to_perfetto(graph)
        assert validate_perfetto(doc) == []
        events = doc["traceEvents"]
        procs = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert procs == {f"pid {CLIENT}", f"pid {SERVER}"}
        assert {e["pid"] for e in events} == {CLIENT, SERVER}
        flows = [e for e in events if e["ph"] in ("s", "f")]
        assert flows, "the wire wakeup must export as a flow arrow"
        starts = {e["id"]: e["pid"] for e in flows if e["ph"] == "s"}
        finishes = {e["id"]: e["pid"] for e in flows if e["ph"] == "f"}
        assert any(starts[i] != finishes.get(i) for i in starts), (
            "at least one flow must cross processes"
        )

    def test_perfetto_flow_timestamps_never_run_backward(self):
        # Offset estimation can leave microsecond-scale skew; the export
        # clamps each flow finish at-or-after its start so the UI never
        # draws a backward arrow.
        events = wire_trace()
        events[-1] = events[-1]._replace(ts=0.0045)  # unpark "before" push
        doc = to_perfetto(CausalGraph.from_events(events))
        assert validate_perfetto(doc) == []
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]
        by_id: dict = {}
        for e in flows:
            by_id.setdefault(e["id"], {})[e["ph"]] = e["ts"]
        for pair in by_id.values():
            if "s" in pair and "f" in pair:
                assert pair["f"] >= pair["s"]

    def test_perfetto_dist_instants_are_exported(self):
        doc = to_perfetto(CausalGraph.from_events(wire_trace()))
        instants = {e["name"] for e in doc["traceEvents"] if e["ph"] == "i"}
        assert "push_deliver" in instants

    def test_otel_span_ids_stay_disjoint_across_pids(self):
        # Client seq 1..4 and server seq 1..4 overlap; span ids fold the
        # pid in, so the resource spans never collide.
        doc = to_otel(CausalGraph.from_events(wire_trace()))
        spans = [
            s
            for rs in doc["resourceSpans"]
            for ss in rs["scopeSpans"]
            for s in ss["spans"]
        ]
        ids = [s["spanId"] for s in spans]
        assert len(ids) == len(set(ids))
        link_kinds = {
            a["value"]["stringValue"]
            for s in spans
            for link in s.get("links", ())
            for a in link.get("attributes", ())
            if a["key"] == "repro.link"
        }
        assert "released_over_wire" in link_kinds


class TestMultiPidAnalyze:
    def test_report_counts_processes_and_wire_pairs(self):
        graph = CausalGraph.from_events(wire_trace())
        report = analyze(graph)
        assert report["pids"] == [CLIENT, SERVER]
        assert report["wire_edges"] == 2
        assert any(t["pid"] == CLIENT for t in report["threads"])
        text = render_report(report, graph)
        assert "2 processes" in text
        assert "wire pairs" in text

    def test_gantt_rows_are_pid_labelled(self):
        gantt = render_gantt(CausalGraph.from_events(wire_trace()))
        assert f"p{CLIENT}/T0" in gantt
        assert f"p{SERVER}/T1" in gantt
