"""Schema v2 invariants on live traces: seqs, tokens, edge completeness.

The causal analyzer is only as good as the correlation fields the emit
sites stamp, so these tests drive the *real* counter — free-running and
under adversarial ``@interleave`` schedules — and assert the contract:

* every traced event carries a strictly-monotonic ``seq`` (causal sort
  key), unique process-wide;
* causal order is embedded in the seqs: an increment's seq precedes its
  releases' seqs (``cause_seq`` ties them), and a release's seq precedes
  the unparks it causes — even though the deferred emission can append
  them to the ring in a different physical order;
* edge completeness: every suspended-then-woken check produces a
  park/unpark pair sharing the wait node's token, and the causal graph
  ties each one to exactly one release edge.
"""

from __future__ import annotations

import threading
import time

import repro.obs as obs
from repro.core import MonotonicCounter
from repro.obs.causal import CausalGraph
from repro.testkit import assert_counter_quiescent, interleave


def _snapshot():
    handle = obs.current()
    return handle.trace.snapshot()


def _assert_schema_v2(events):
    seqs = [e.seq for e in events]
    assert all(s is not None for s in seqs), "every traced event carries a seq"
    assert len(set(seqs)) == len(seqs), "seqs are unique"
    by_seq = {e.seq: e for e in events}
    for event in events:
        if event.kind == "release":
            assert event.token is not None, "releases carry the node token"
            cause = by_seq.get(event.cause_seq)
            assert cause is not None and cause.kind == "increment"
            assert cause.seq < event.seq, "increment.seq < release.seq"
        elif event.kind in ("park", "unpark", "timeout"):
            assert event.token is not None, f"{event.kind} carries the node token"


class TestFreeRunning:
    def test_fan_in_trace_satisfies_v2_invariants(self):
        obs.enable(metrics=False)
        counter = MonotonicCounter(name="v2")
        workers = [threading.Thread(target=counter.check, args=(lvl,))
                   for lvl in (2, 2, 3)]
        for t in workers:
            t.start()
        for _ in range(3):
            counter.increment()
        for t in workers:
            t.join()
        events = _snapshot()
        _assert_schema_v2(events)
        graph = CausalGraph.from_events(events)
        # Release before the unparks it causes, in seq order.
        for edge in graph.edges:
            assert edge.release.seq < edge.wait.end.seq
        woken = [w for w in graph.waits if not w.timed_out]
        assert woken, "the fan-in must have suspended at least one check"
        assert len(graph.edges) == len(woken), "every woken wait has its edge"

    def test_seq_order_is_causal_despite_deferred_append_order(self):
        # The woken thread may physically append its unpark before the
        # incrementer constructs the release/increment events; sorting by
        # seq must still put increment < release < unpark.
        obs.enable(metrics=False)
        counter = MonotonicCounter(name="defer")
        waiter = threading.Thread(target=counter.check, args=(1,))
        waiter.start()
        while not counter.snapshot().nodes:
            time.sleep(0.001)  # ensure the check actually suspends
        counter.increment()
        waiter.join()
        graph = CausalGraph.from_events(_snapshot())
        (edge,) = graph.edges
        assert edge.increment.seq < edge.release.seq < edge.wait.end.seq


@interleave(schedules=12)
def test_v2_invariants_hold_under_adversarial_schedules(sched):
    """Fan-in with staggered levels under injected schedules: the trace
    keeps its seq/token invariants and edge completeness whichever way
    the increments and parks interleave."""
    obs.enable(metrics=False)
    counter = MonotonicCounter()
    for i in range(sched.threads):
        sched.spawn(f"inc{i}", counter.increment, 1)
    sched.spawn("w_total", counter.check, sched.threads)
    sched.spawn("w_one", counter.check, 1)
    sched.run()
    assert_counter_quiescent(counter, expect_value=sched.threads)
    events = _snapshot()
    _assert_schema_v2(events)
    graph = CausalGraph.from_events(events)
    woken = [w for w in graph.waits if not w.timed_out]
    assert len(graph.edges) == len(woken)
    for edge in graph.edges:
        assert edge.release.token == edge.wait.token
        assert edge.release.seq < edge.wait.end.seq
    obs.disable()


@interleave(schedules=8, scheduler="pct")
def test_v2_edge_completeness_multi_level_pct(sched):
    """Batched releases across levels under PCT: one edge per woken wait,
    each pointing at the increment that did the releasing."""
    obs.enable(metrics=False)
    counter = MonotonicCounter()
    sched.spawn("w1", counter.check, 1)
    sched.spawn("w3", counter.check, 3)
    sched.spawn("w4", counter.check, 4)
    sched.spawn("incA", counter.increment, 2)
    sched.spawn("incB", counter.increment, 2)
    sched.run()
    assert_counter_quiescent(counter, expect_value=4)
    graph = CausalGraph.from_events(_snapshot())
    woken = [w for w in graph.waits if not w.timed_out]
    assert len(graph.edges) == len(woken)
    for edge in graph.edges:
        assert edge.increment is not None
        assert edge.increment.kind == "increment"
    obs.disable()
