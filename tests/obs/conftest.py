"""Shared hygiene for the observability tests.

Observability is process-global (the hooks module's ``enabled`` flag,
the active trace/metrics handle, the background watchdog singleton), so
every test must leave it exactly as it found it: off.  The autouse
fixture below makes that unconditional — a test that enables tracing,
starts a watchdog, and then fails mid-assert cannot leak its
instrumentation into the rest of the suite.
"""

from __future__ import annotations

import pytest

import repro.obs as obs


@pytest.fixture(autouse=True)
def _obs_clean_slate():
    obs.disable()
    obs.stop_watchdog()
    yield
    obs.disable()
    obs.stop_watchdog()
