"""The ``python -m repro.obs`` CLI, exercised as real subprocesses.

These are the same invocations CI runs (the ``sample`` subcommand is
its uploaded artifact), so the tests pin the exit codes, the output
formats (JSON for ``dump``, Prometheus text for ``metrics``, the
artifact layout for ``sample`` — its causal additions are pinned in
``tests/obs/causal/test_cli.py``), and the demo workload's footprint.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def _run(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.obs", *args],
        capture_output=True, text=True, timeout=60, env=env, cwd=REPO,
    )


class TestDumpCommand:
    def test_demo_dump_is_json_with_the_demo_counters(self):
        proc = _run("dump", "--demo")
        assert proc.returncode == 0, proc.stderr
        state = json.loads(proc.stdout)
        names = {d["name"] for d in state["counters"]}
        assert {"demo-fanin", "demo-sharded"} <= names
        fanin = next(d for d in state["counters"] if d["name"] == "demo-fanin")
        assert fanin["stats"]["increments"] == 5
        assert fanin["stats"]["timeouts"] == 1
        sharded = next(d for d in state["counters"] if d["name"] == "demo-sharded")
        assert "published" in sharded and "pending" in sharded
        assert sharded["value"] >= 32  # the demo checked level 32

    def test_cold_dump_is_empty_but_valid(self):
        proc = _run("dump")
        assert proc.returncode == 0, proc.stderr
        state = json.loads(proc.stdout)
        assert state["counters"] == []
        assert state["totals"]["counters"] == 0


class TestMetricsCommand:
    def test_demo_metrics_render_prometheus_text(self):
        proc = _run("metrics", "--demo")
        assert proc.returncode == 0, proc.stderr
        text = proc.stdout
        assert "# TYPE repro_counter_parks_total counter" in text
        assert 'counter="demo-fanin"' in text
        assert "repro_counter_wait_latency_seconds_bucket" in text
        # The unified stats surface: demo-fanin carries stats=True.
        assert ('repro_counter_stats_total{counter="demo-fanin",'
                'tally="increments"} 5') in text

    def test_without_demo_or_enablement_fails_with_guidance(self):
        proc = _run("metrics")
        assert proc.returncode == 1
        assert "--demo" in proc.stderr


class TestSampleCommand:
    def test_writes_the_three_artifacts(self, tmp_path):
        out = tmp_path / "obs-sample"
        proc = _run("sample", "--out", str(out))
        assert proc.returncode == 0, proc.stderr
        assert "wrote" in proc.stdout

        trace_lines = (out / "trace.jsonl").read_text().splitlines()
        assert trace_lines
        kinds = set()
        for line in trace_lines:
            event = json.loads(line)
            assert {"ts", "kind", "source", "thread"} <= set(event)
            kinds.add(event["kind"])
        # The demo workload is built to exercise the headline kinds.
        assert {"increment", "park", "unpark", "release", "timeout",
                "flush"} <= kinds

        dump = json.loads((out / "dump.json").read_text())
        assert dump["counters"]

        prom = (out / "metrics.prom").read_text()
        assert "repro_counter_unparks_total" in prom


class TestLoadAndSloReport:
    """The tail-attribution verbs, in-process mode (the two-process mode
    is CI's ``--expect-wire`` smoke; here we pin the artifact layout and
    that the report explains a real exemplar end to end)."""

    def test_load_writes_run_artifacts_and_report_explains_them(self, tmp_path):
        out = tmp_path / "load-run"
        proc = _run(
            "load", "--out", str(out), "--rate", "80", "--duration", "0.8",
            "--limit", "3", "--window", "0.3", "--objective", "0.02",
            "--seed", "5",
        )
        assert proc.returncode == 0, proc.stderr

        meta = json.loads((out / "meta.json").read_text())
        assert meta["two_process"] is False
        assert meta["summary"]["requests"] > 0
        assert meta["summary"]["seed"] == 5
        assert meta["exemplars"], "no tail exemplars were retained"

        requests = [
            json.loads(line)
            for line in (out / "requests.jsonl").read_text().splitlines()
        ]
        assert len(requests) == meta["summary"]["requests"]
        assert all(r["corr"] for r in requests)

        trace_kinds = {
            json.loads(line)["kind"]
            for line in (out / "trace.jsonl").read_text().splitlines()
        }
        assert {"req_start", "req_done"} <= trace_kinds

        report = _run("slo-report", "--in", str(out), "-k", "2")
        assert report.returncode == 0, report.stderr
        assert "exemplar" in report.stdout
        assert "queue" in report.stdout and "wait" in report.stdout
        assert (out / "slo-report.txt").read_text().strip()

    def test_slo_report_without_a_run_directory_exits_2(self, tmp_path):
        proc = _run("slo-report", "--in", str(tmp_path / "missing"))
        assert proc.returncode == 2
        assert "meta.json" in proc.stderr
