"""The cross-process collector: JSONL rings, clock offsets, merge, fleet.

Everything here is synthetic — events built by hand with known pids and
known clock skews — so the assertions can check *exact* arithmetic: an
injected +0.5s offset must come back as +0.5s, a rebased timestamp must
land where the root clock says it happened, a merged histogram bucket
must be the sum of its inputs.  The live end-to-end paths (a real
service shipping its ring over the wire) are covered in
``tests/dist/test_obs_dist.py``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import fleet
from repro.obs.collect import clock_offsets, load_jsonl, merge, write_jsonl
from repro.obs.events import Event


def ev(ts, kind, pid=None, thread=1, **kw):
    return Event(ts=ts, kind=kind, source=kw.pop("source", "c"),
                 thread=thread, pid=pid, **kw)


def quad(corr, t0, *, requester, responder, offset, rtt=0.002):
    """A full RPC quad where ``responder``'s clock leads by ``offset``.

    True time: send at t0, recv at t0+rtt/2, reply at t0+rtt/2 (instant
    service), reply recv at t0+rtt.  Responder-side stamps carry the
    injected skew.
    """
    return [
        ev(t0, "frame_send", pid=requester, corr=corr, op="get"),
        ev(t0 + rtt / 2 + offset, "frame_recv", pid=responder, corr=corr, op="get"),
        ev(t0 + rtt / 2 + offset, "frame_send", pid=responder, corr=corr, op="ack"),
        ev(t0 + rtt, "frame_recv", pid=requester, corr=corr, op="ack"),
    ]


class TestJsonlRoundTrip:
    def test_write_stamps_this_pid_by_default(self, tmp_path):
        path = str(tmp_path / "ring.jsonl")
        n = write_jsonl([ev(1.0, "increment", seq=3, amount=2, value=2)], path)
        assert n == 1
        (loaded,) = load_jsonl(path)
        assert loaded.pid == os.getpid()
        assert (loaded.seq, loaded.amount, loaded.value) == (3, 2, 2)

    def test_explicit_pid_wins_but_stamped_events_keep_theirs(self, tmp_path):
        path = str(tmp_path / "ring.jsonl")
        write_jsonl(
            [ev(1.0, "park"), ev(2.0, "unpark", pid=777)], path, pid=1234
        )
        unstamped, stamped = load_jsonl(path)
        assert unstamped.pid == 1234
        assert stamped.pid == 777  # relayed ring: origin stamp is kept

    def test_v3_fields_round_trip_and_v2_docs_stay_v2(self, tmp_path):
        path = str(tmp_path / "ring.jsonl")
        write_jsonl(
            [ev(1.0, "frame_send", op="inc", corr="ab-1", seq=9)], path, pid=42
        )
        with open(path, encoding="utf-8") as fh:
            doc = json.loads(fh.read())
        assert (doc["op"], doc["corr"], doc["pid"]) == ("inc", "ab-1", 42)
        # A pre-v3 event's dict form grows no v3 keys at all.
        v2 = ev(1.0, "release", token=5, seq=2, cause_seq=1).as_dict()
        assert not {"pid", "op", "corr"} & v2.keys()
        back = Event.from_dict(v2)
        assert back.pid is None and back.corr is None and back.op is None

    def test_load_accepts_dicts_events_and_blank_lines(self, tmp_path):
        path = str(tmp_path / "ring.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(ev(1.0, "park").as_dict()) + "\n\n")
            fh.write(json.dumps({"ts": 2.0, "kind": "unpark", "source": "c",
                                 "thread": 1, "future_field": True}) + "\n")
        events = load_jsonl(path)
        assert [e.kind for e in events] == ["park", "unpark"]


class TestClockOffsets:
    def test_recovers_an_injected_half_second_skew(self):
        events = []
        for i in range(5):
            events.extend(quad(f"a-{i}", 1.0 + i, requester=10, responder=20,
                               offset=0.5))
        # Root defaults to the pid with the most events: give 10 more.
        events.append(ev(0.5, "park", pid=10))
        offsets = clock_offsets(events)
        assert offsets[10] == 0.0
        assert offsets[20] == pytest.approx(0.5, abs=1e-9)

    def test_offsets_compose_transitively(self):
        # 10 <-> 20 skew +0.5; 20 <-> 30 skew -0.2; 30 never talks to 10,
        # so its offset relative to 10 exists only by composition.
        events = quad("a-1", 1.0, requester=10, responder=20, offset=0.5)
        events += quad("b-1", 3.0, requester=20, responder=30, offset=-0.2)
        offsets = clock_offsets(events, root=10)
        assert offsets[20] == pytest.approx(0.5, abs=1e-9)
        assert offsets[30] == pytest.approx(0.3, abs=1e-9)

    def test_median_rejects_one_outlier_quad(self):
        events = []
        for i in range(4):
            events.extend(quad(f"a-{i}", 1.0 + i, requester=10, responder=20,
                               offset=0.5))
        # One wildly asymmetric exchange (0.9s out, 0.1s back — NTP's
        # irreducible error) skews its sample to 0.9; the median holds.
        events += [
            ev(9.0, "frame_send", pid=10, corr="a-bad", op="get"),
            ev(9.9 + 0.5, "frame_recv", pid=20, corr="a-bad", op="get"),
            ev(9.9 + 0.5, "frame_send", pid=20, corr="a-bad", op="ack"),
            ev(10.0, "frame_recv", pid=10, corr="a-bad", op="ack"),
        ]
        events.append(ev(0.5, "park", pid=10))
        assert clock_offsets(events)[20] == pytest.approx(0.5, abs=1e-9)

    def test_isolated_pid_keeps_offset_zero(self):
        events = quad("a-1", 1.0, requester=10, responder=20, offset=0.5)
        events.append(ev(5.0, "park", pid=99))
        events.append(ev(0.5, "park", pid=10))
        assert clock_offsets(events)[99] == 0.0

    def test_explicit_root_rebases_the_other_side(self):
        events = quad("a-1", 1.0, requester=10, responder=20, offset=0.5)
        offsets = clock_offsets(events, root=20)
        assert offsets[20] == 0.0
        assert offsets[10] == pytest.approx(-0.5, abs=1e-9)

    def test_no_pids_no_offsets(self):
        assert clock_offsets([ev(1.0, "park")]) == {}


class TestMerge:
    def test_overlapping_rings_dedup_by_pid_and_seq(self):
        # A local ring merged with its own fetch_trace echo (same pid,
        # same seqs) must not duplicate events — duplicated park/unpark
        # pairs corrupt causal pairing.
        ring = [
            ev(1.0, "park", pid=10, seq=1, level=1),
            ev(2.0, "increment", pid=10, seq=2, amount=1, value=1),
            ev(2.1, "unpark", pid=10, seq=3, level=1),
        ]
        merged = merge(ring, [e.as_dict() for e in ring])
        assert len(merged) == 3
        assert [e.seq for e in merged] == [1, 2, 3]
        # Distinct pids sharing seq values are NOT duplicates.
        other = [ev(1.5, "park", pid=20, seq=1, level=1)]
        assert len(merge(ring, other)) == 4

    def test_rebases_foreign_timestamps_into_the_root_clock(self):
        wire = quad("a-1", 1.0, requester=10, responder=20, offset=0.5)
        # In pid 20's (skewed) clock this increment reads *after* the
        # requester's reply-recv; rebased it belongs inside the RPC.
        foreign = ev(1.5015, "increment", pid=20, seq=1, amount=1, value=1)
        anchor = ev(0.9, "park", pid=10)
        merged = merge([anchor] + wire + [foreign])
        inc = next(e for e in merged if e.kind == "increment")
        assert inc.ts == pytest.approx(1.0015, abs=1e-9)  # 1.5015 - 0.5
        assert merged.index(inc) < len(merged) - 1

    def test_align_false_keeps_native_timestamps(self):
        wire = quad("a-1", 1.0, requester=10, responder=20, offset=0.5)
        foreign = ev(1.7, "increment", pid=20)
        merged = merge(wire + [foreign], align=False)
        assert merged[-1].ts == 1.7

    def test_orders_by_ts_then_pid_then_seq(self):
        events = [
            ev(1.0, "park", pid=20, seq=2),
            ev(1.0, "park", pid=10, seq=5),
            ev(1.0, "unpark", pid=20, seq=1),
            ev(0.5, "increment", pid=20, seq=9),
        ]
        merged = merge(events, align=False)
        assert [(e.pid, e.seq) for e in merged] == [
            (20, 9), (10, 5), (20, 1), (20, 2)
        ]

    def test_accepts_mixed_rings_of_dicts_and_events(self):
        ring_a = [ev(1.0, "park", pid=10)]
        ring_b = [ev(2.0, "unpark", pid=20).as_dict()]
        merged = merge(ring_a, ring_b)
        assert [e.kind for e in merged] == ["park", "unpark"]
        assert all(isinstance(e, Event) for e in merged)


class TestFleetMerge:
    def test_histograms_add_bucketwise_and_union_bounds(self):
        a = {"count": 3, "sum": 0.3, "buckets": {"0.001": 2, "+Inf": 1}}
        b = {"count": 2, "sum": 0.1, "buckets": {"0.001": 1, "0.01": 1}}
        merged = fleet.merge_histograms(a, b)
        assert merged["count"] == 5
        assert merged["sum"] == pytest.approx(0.4)
        assert merged["buckets"] == {"0.001": 3, "0.01": 1, "+Inf": 1}

    def test_series_sum_tallies_and_max_high_waters(self):
        a = {"increments": 10, "parks": 2, "live_waiters_hw": 3,
             "wait_latency": {"count": 1, "sum": 0.5, "buckets": {"+Inf": 1}}}
        b = {"increments": 5, "parks": 4, "live_waiters_hw": 7,
             "wait_latency": {"count": 2, "sum": 0.2, "buckets": {"+Inf": 2}}}
        merged = fleet.merge_series(a, b)
        assert merged["increments"] == 15
        assert merged["parks"] == 6
        assert merged["live_waiters_hw"] == 7
        assert merged["wait_latency"]["count"] == 3

    def test_snapshots_merge_same_label_series_across_nodes(self):
        node_a = {"series": {"orders": {"increments": 3}},
                  "stats": {"orders": {"checks": 2}},
                  "trace": {"emitted": 10, "dropped": 1},
                  "dropped_series": 1}
        node_b = {"series": {"orders": {"increments": 4},
                             "jobs": {"increments": 1}},
                  "stats": {"orders": {"checks": 5}},
                  "trace": {"emitted": 7, "dropped": 0},
                  "dropped_series": 0}
        merged = fleet.merge_snapshots([node_a, None, node_b])
        assert merged["series"]["orders"]["increments"] == 7
        assert merged["series"]["jobs"]["increments"] == 1
        assert merged["stats"]["orders"]["checks"] == 7
        assert merged["trace"]["emitted"] == 17
        assert merged["dropped_series"] == 1

    def test_render_fleet_liveness_and_cumulative_buckets(self):
        nodes = [
            {"node": "svc-a", "pid": 100, "up": True,
             "snapshot": {"series": {"orders": {
                 "increments": 7,
                 "wait_latency": {"count": 3, "sum": 0.25,
                                  "buckets": {"0.001": 1, "0.01": 1, "+Inf": 1}},
             }}}},
            {"node": "svc-b", "pid": 200, "up": False, "snapshot": None},
        ]
        text = fleet.render_fleet(nodes)
        assert "repro_fleet_nodes 2" in text
        assert 'repro_fleet_node_up{node="svc-a",pid="100"} 1' in text
        assert 'repro_fleet_node_up{node="svc-b",pid="200"} 0' in text
        assert 'repro_counter_increments_total{counter="orders"} 7' in text
        # Prometheus buckets are cumulative: 1, then 1+1, then +Inf total.
        assert 'wait_latency_seconds_bucket{counter="orders",le="0.001"} 1' in text
        assert 'wait_latency_seconds_bucket{counter="orders",le="0.01"} 2' in text
        assert 'wait_latency_seconds_bucket{counter="orders",le="+Inf"} 3' in text
        assert 'wait_latency_seconds_count{counter="orders"} 3' in text
