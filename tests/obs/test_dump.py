"""State introspection: ``dump_counter``/``dump_state`` and the sharded
never-over-report guarantee.

The acceptance bar: a dump taken while threads are parked shows *every*
waiting level with its waiter count, and a sharded counter's reported
total is a lower bound on the true global value under concurrent
increments — always, not just on average (the hammer below samples the
capture thousands of times against a ground-truth issued tally).
"""

from __future__ import annotations

import asyncio
import threading

import repro.obs as obs
from repro.aio import AsyncCounter
from repro.core import MonotonicCounter, ShardedCounter
from repro.obs import dump_counter, dump_state
from tests.helpers import join_all, spawn, wait_until


def _by_name(state, name):
    docs = [d for d in state["counters"] if d["name"] == name]
    assert len(docs) == 1, state["counters"]
    return docs[0]


class TestDumpCounter:
    def test_idle_counter(self):
        counter = MonotonicCounter(name="idle-dump")
        counter.increment(3)
        doc = dump_counter(counter)
        assert doc == {
            "name": "idle-dump",
            "type": "MonotonicCounter",
            "value": 3,
            "waiting": [],
            "waiting_levels": 0,
            "total_waiters": 0,
        }

    def test_unnamed_counter_gets_an_instance_label(self):
        counter = MonotonicCounter()
        doc = dump_counter(counter)
        assert doc["name"].startswith("MonotonicCounter@0x")

    def test_every_parked_level_appears_with_its_waiter_count(self):
        counter = MonotonicCounter(name="parked-dump")
        waiters = [
            spawn(counter.check, 3),
            spawn(counter.check, 3),
            spawn(counter.check, 7),
        ]
        wait_until(lambda: counter.snapshot().total_waiters == 3)

        doc = dump_counter(counter)
        assert doc["value"] == 0
        waiting = {w["level"]: w for w in doc["waiting"]}
        assert set(waiting) == {3, 7}
        assert waiting[3]["waiters"] == 2
        assert waiting[7]["waiters"] == 1
        assert not waiting[3]["signaled"] and not waiting[7]["signaled"]
        assert doc["waiting_levels"] == 2
        assert doc["total_waiters"] == 3

        counter.increment(7)
        join_all(waiters)
        after = dump_counter(counter)
        assert after["waiting"] == [] and after["total_waiters"] == 0

    def test_stats_are_folded_in_when_enabled(self):
        counter = MonotonicCounter(name="stats-dump", stats=True)
        counter.increment(2)
        doc = dump_counter(counter)
        assert doc["stats"]["increments"] == 1
        plain = dump_counter(MonotonicCounter(name="nostats-dump"))
        assert "stats" not in plain

    def test_capture_failure_is_reported_not_raised(self):
        class Broken:
            _name = "broken-dump"

            def snapshot(self):
                raise ZeroDivisionError("boom")

        doc = dump_counter(Broken())
        assert doc["name"] == "broken-dump"
        assert "ZeroDivisionError" in doc["error"]

    def test_persistent_race_is_skipped_with_a_note(self):
        class Racing:
            _name = "racing-dump"

            def snapshot(self):
                raise RuntimeError("dict changed size during iteration")

        doc = dump_counter(Racing())
        assert "skipped" in doc["error"]


class TestDumpState:
    def test_totals_aggregate_and_order_is_stable(self):
        a = MonotonicCounter(name="agg-a")
        b = MonotonicCounter(name="agg-b")
        waiters = [spawn(a.check, 1), spawn(b.check, 2), spawn(b.check, 5)]
        wait_until(
            lambda: a.snapshot().total_waiters + b.snapshot().total_waiters == 3
        )

        state = dump_state()
        doc_a, doc_b = _by_name(state, "agg-a"), _by_name(state, "agg-b")
        assert doc_a["total_waiters"] == 1
        assert doc_b["total_waiters"] == 2 and doc_b["waiting_levels"] == 2
        names = [d["name"] for d in state["counters"]]
        assert names == sorted(names)
        assert state["totals"]["counters"] == len(state["counters"])
        assert state["totals"]["waiters"] >= 3
        assert state["totals"]["waiting_levels"] >= 3

        a.increment(1)
        b.increment(5)
        join_all(waiters)

    def test_dead_counters_vanish_from_the_dump(self):
        counter = MonotonicCounter(name="ephemeral-dump")
        assert any(
            d["name"] == "ephemeral-dump" for d in dump_state()["counters"]
        )
        del counter
        assert not any(
            d["name"] == "ephemeral-dump" for d in dump_state()["counters"]
        )

    def test_async_counter_is_dumpable(self):
        async def scenario():
            counter = AsyncCounter(name="aio-dump")
            counter.increment(2)
            task = asyncio.ensure_future(counter.check(5))
            for _ in range(50):  # let the checker register and park
                await asyncio.sleep(0)
                if counter.snapshot().total_waiters:
                    break
            doc = dump_counter(counter)
            counter.increment(3)
            await task
            return doc

        doc = asyncio.run(scenario())
        assert doc["name"] == "aio-dump"
        assert doc["value"] == 2
        assert [w["level"] for w in doc["waiting"]] == [5]
        assert doc["total_waiters"] == 1


class TestShardedDump:
    def test_pending_and_published_with_reconciled_lower_bound(self):
        sharded = ShardedCounter(shards=2, batch=1000, name="sharded-dump")
        for _ in range(5):
            sharded.increment(1)  # stays pending: batch never reached

        snap = sharded.shard_snapshot()
        assert snap.published == 0
        assert sum(snap.pending) == 5
        assert len(snap.pending) == 2
        assert snap.total == 5

        doc = dump_counter(sharded)
        assert doc["published"] == 0
        assert sum(doc["pending"]) == 5
        assert doc["value"] == 5  # the reconciled lower bound IS the value

        assert sharded.flush() == 5
        doc = dump_counter(sharded)
        assert doc["published"] == 5 and sum(doc["pending"]) == 0

    def test_snapshot_total_never_exceeds_the_true_total(self):
        """The capture-order invariant, hammered: concurrent producers
        drive the counter while the main thread samples
        ``shard_snapshot`` and bounds it against a ground-truth issued
        tally.  Each producer bumps its issued slot BEFORE incrementing,
        so at any capture the units inside the counter are a subset of
        the issued tally read afterwards — any over-reporting capture
        would break the assertion deterministically."""
        sharded = ShardedCounter(shards=4, batch=8, name="hammer-sharded")
        producers, per_producer = 4, 3000
        issued = [0] * producers
        start = threading.Barrier(producers + 1)

        def produce(slot):
            start.wait()
            for _ in range(per_producer):
                issued[slot] += 1
                sharded.increment(1)

        threads = [spawn(produce, slot) for slot in range(producers)]
        start.wait()
        last_published = 0
        done = False
        while not done:
            done = all(not t.is_alive() for t in threads)
            snap = sharded.shard_snapshot()
            true_total = sum(issued)  # read AFTER the capture completed
            assert snap.total <= true_total, (snap, true_total)
            assert all(p >= 0 for p in snap.pending)
            # The published value is monotone across samples.
            assert snap.published >= last_published
            last_published = snap.published

        join_all(threads)
        assert sharded.value == producers * per_producer
        assert sharded.shard_snapshot().total == producers * per_producer


class TestEngineInternals:
    def test_engine_key_is_always_present(self):
        engine = dump_state()["engine"]
        wheel = engine["timer_wheel"]
        assert wheel["buckets"] > 0
        assert wheel["span_s"] > 0
        assert isinstance(wheel["armed"], int)
        assert isinstance(wheel["pending"], list)
        assert isinstance(engine["parking_slots"], int)

    def test_timed_wait_shows_as_an_armed_wheel_entry(self):
        counter = MonotonicCounter(name="engine-dump")
        before = dump_state()["engine"]["timer_wheel"]["armed"]
        waiter = spawn(lambda: counter.check(1, timeout=30.0))
        wait_until(
            lambda: dump_state()["engine"]["timer_wheel"]["armed"] > before
        )
        engine = dump_state()["engine"]
        assert engine["parking_slots"] >= 1
        soonest = engine["timer_wheel"]["pending"][0]
        # Relative deadline, bounded by the timeout; an unclaimed armed
        # entry has no outcome yet.
        assert soonest["deadline_in_s"] <= 30.0
        counter.increment(1)
        join_all([waiter])


class TestObsStateIsOrthogonal:
    def test_dump_works_with_observability_disabled(self):
        """dump_state is registry-powered, not event-powered: it must
        work without enable() ever having been called."""
        assert obs.current() is None
        counter = MonotonicCounter(name="cold-dump")
        counter.increment(1)
        assert _by_name(dump_state(), "cold-dump")["value"] == 1
