"""The event model and the trace ring, unit and end-to-end.

Unit half: :class:`~repro.obs.events.Event` serialization, ring-buffer
wrap/drop accounting, and the sink contract (called per event, dropped
after its first raise).  End-to-end half: a real counter workload with
tracing enabled produces exactly the advertised kinds, with the latency
payloads (``wait_s``/``wakeup_s``) present where promised and ``None``
where an honest measurement is impossible (observability enabled
mid-wait).
"""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.core import (
    CheckTimeout,
    MonotonicCounter,
    MultiWait,
    ShardedCounter,
    WaitPolicy,
)
from repro.obs import KINDS, Event, TraceBuffer
from tests.helpers import join_all, spawn, wait_until


def _kinds(handle, source=None):
    return [
        e.kind
        for e in handle.trace
        if source is None or e.source == source
    ]


class TestEvent:
    def test_as_dict_drops_unused_fields(self):
        event = Event(ts=1.5, kind="park", source="c", thread=7, level=3)
        assert event.as_dict() == {
            "ts": 1.5, "kind": "park", "source": "c", "thread": 7, "level": 3,
        }

    def test_as_dict_keeps_every_set_field(self):
        event = Event(
            ts=0.0, kind="unpark", source="c", thread=1,
            level=2, value=4, count=1, amount=3, wait_s=0.5, wakeup_s=0.1,
        )
        doc = event.as_dict()
        assert set(doc) == {
            "ts", "kind", "source", "thread",
            "level", "value", "count", "amount", "wait_s", "wakeup_s",
        }

    def test_frozen(self):
        event = Event(ts=0.0, kind="park", source="c", thread=1)
        with pytest.raises(AttributeError):
            event.kind = "unpark"

    def test_kind_registry_is_complete(self):
        assert len(KINDS) == 25
        for kind in ("increment", "release", "park", "unpark", "timeout",
                     "spin_exhausted", "sub_fire", "flush", "drain",
                     "mw_park", "mw_wake", "mw_timeout", "stall",
                     # schema v3: the cross-process fabric
                     "frame_send", "frame_recv", "batch_flush",
                     "push_deliver", "bell_ring", "bell_wake",
                     "gossip_round", "slot_claim",
                     # schema v3.1: the load/SLO layer
                     "req_start", "req_done", "frame_ride", "slo_breach"):
            assert kind in KINDS


class TestTraceBuffer:
    def _event(self, i):
        return Event(ts=float(i), kind="increment", source="c", thread=0, amount=i)

    @pytest.mark.parametrize("capacity", [0, -1, 1.5, True, "8"])
    def test_capacity_validation(self, capacity):
        with pytest.raises((ValueError, TypeError)):
            TraceBuffer(capacity=capacity)

    def test_sink_must_be_callable(self):
        with pytest.raises(TypeError):
            TraceBuffer(sink=42)

    def test_ring_wraps_and_accounts_for_drops(self):
        buf = TraceBuffer(capacity=4)
        for i in range(10):
            buf.append(self._event(i))
        assert len(buf) == 4
        assert buf.emitted == 10
        assert buf.dropped == 6
        # Oldest first, and only the newest four survive the wrap.
        assert [e.amount for e in buf.snapshot()] == [6, 7, 8, 9]
        assert [e.amount for e in buf] == [6, 7, 8, 9]

    def test_sink_sees_every_event(self):
        seen = []
        buf = TraceBuffer(capacity=8, sink=seen.append)
        for i in range(3):
            buf.append(self._event(i))
        assert [e.amount for e in seen] == [0, 1, 2]
        assert buf.sink_errors == 0

    def test_raising_sink_is_dropped_after_first_failure(self):
        calls = []

        def sink(event):
            calls.append(event)
            raise RuntimeError("bad sink")

        buf = TraceBuffer(capacity=8, sink=sink)
        buf.append(self._event(0))  # must NOT propagate
        buf.append(self._event(1))
        assert len(calls) == 1       # dropped after the first raise
        assert buf.sink_errors == 1
        assert len(buf) == 2         # buffering unaffected

    def test_clear_keeps_lifetime_tally(self):
        buf = TraceBuffer(capacity=8)
        for i in range(3):
            buf.append(self._event(i))
        buf.clear()
        assert len(buf) == 0
        assert buf.emitted == 3


class TestEnableDisable:
    def test_enable_requires_something_to_enable(self):
        with pytest.raises(ValueError):
            obs.enable(trace=False, metrics=False)

    def test_disable_returns_readable_handle(self):
        handle = obs.enable()
        counter = MonotonicCounter(name="ed-counter")
        counter.increment(1)
        final = obs.disable()
        assert final is handle
        assert obs.current() is None
        assert "increment" in _kinds(handle, "ed-counter")
        # Emission has genuinely stopped.
        before = len(handle.trace)
        counter.increment(1)
        assert len(handle.trace) == before

    def test_observe_context_manager(self):
        with obs.observe(metrics=False) as handle:
            MonotonicCounter(name="cm-counter").increment(2)
            assert obs.current() is handle
        assert obs.current() is None
        assert "increment" in _kinds(handle, "cm-counter")

    def test_iter_trace_tracks_the_active_handle(self):
        assert list(obs.iter_trace()) == []
        obs.enable()
        MonotonicCounter(name="it-counter").increment(1)
        assert any(e.source == "it-counter" for e in obs.iter_trace())


class TestCounterEmitsTheAdvertisedKinds:
    def test_park_release_unpark_round_trip(self):
        handle = obs.enable()
        counter = MonotonicCounter(name="rt-counter")
        waiter = spawn(counter.check, 2)
        wait_until(lambda: counter.snapshot().total_waiters == 1)
        counter.increment(2)
        join_all([waiter])

        kinds = _kinds(handle, "rt-counter")
        for kind in ("park", "increment", "release", "unpark"):
            assert kind in kinds, kinds
        assert set(kinds) <= KINDS

        [unpark] = [e for e in handle.trace if e.kind == "unpark"]
        assert unpark.wait_s is not None and unpark.wait_s >= 0.0
        # The wakeup path: release stamped the node before signal.
        assert unpark.wakeup_s is not None and unpark.wakeup_s >= 0.0
        [release] = [e for e in handle.trace if e.kind == "release"]
        assert release.level == 2 and release.count == 1

    def test_timeout_and_spin_exhaustion(self):
        handle = obs.enable()
        counter = MonotonicCounter(
            name="to-counter",
            policy=WaitPolicy(spin=4, spin_min=1, spin_max=8),
        )
        with pytest.raises(CheckTimeout):
            counter.check(5, timeout=0.01)
        kinds = _kinds(handle, "to-counter")
        assert "spin_exhausted" in kinds
        assert "timeout" in kinds
        assert "unpark" not in kinds  # the wait genuinely expired
        [timeout] = [e for e in handle.trace if e.kind == "timeout"]
        assert timeout.level == 5 and timeout.value == 0
        assert timeout.wait_s is not None and timeout.wait_s >= 0.0

    def test_fast_path_emits_nothing(self):
        """The zero-cost contract's observable half: a satisfied check
        never reaches an instrumented site, even with tracing ON."""
        handle = obs.enable()
        counter = MonotonicCounter(name="fp-counter")
        counter.increment(5)
        handle.trace.clear()
        for _ in range(100):
            counter.check(3)
        assert len(handle.trace) == 0

    def test_subscription_fire_is_traced(self):
        handle = obs.enable()
        counter = MonotonicCounter(name="sub-counter")
        fired = []
        counter.subscribe(1, lambda: fired.append("hit"))
        counter.increment(1)
        assert fired == ["hit"]
        kinds = _kinds(handle, "sub-counter")
        assert "sub_fire" in kinds

    def test_mid_wait_enablement_skips_the_unmeasurable_latency(self):
        """Enabling obs while a thread is already parked must not invent
        a wait_s it never measured — the unpark reports None instead."""
        counter = MonotonicCounter(name="mid-counter")
        waiter = spawn(counter.check, 1)
        wait_until(lambda: counter.snapshot().total_waiters == 1)
        handle = obs.enable()
        counter.increment(1)
        join_all([waiter])
        [unpark] = [e for e in handle.trace if e.kind == "unpark"]
        assert unpark.wait_s is None
        # wakeup_s IS measurable: the release ran with obs enabled.
        assert unpark.wakeup_s is not None and unpark.wakeup_s >= 0.0


class TestShardedAndMultiWaitKinds:
    def test_shard_flush_is_traced(self):
        handle = obs.enable()
        sharded = ShardedCounter(shards=2, batch=2, name="fl-counter")
        for _ in range(4):  # one thread -> one shard -> two batch flushes
            sharded.increment(1)
        kinds = _kinds(handle, "fl-counter")
        assert "flush" in kinds
        assert kinds.count("flush") >= 2

    def test_multiwait_park_and_wake(self):
        handle = obs.enable()
        a, b = MonotonicCounter(), MonotonicCounter()
        with MultiWait([(a, 1), (b, 1)]) as mw:
            waiter = spawn(mw.wait_all)
            wait_until(
                lambda: any(e.kind == "mw_park" for e in handle.trace)
            )
            a.increment(1)
            b.increment(1)
            join_all([waiter])
        kinds = [e.kind for e in handle.trace if e.kind.startswith("mw_")]
        assert "mw_park" in kinds
        assert "mw_wake" in kinds
        [wake] = [e for e in handle.trace if e.kind == "mw_wake"]
        assert wake.value == 2  # both conditions satisfied
        assert wake.wait_s is not None and wake.wait_s >= 0.0

    def test_multiwait_timeout(self):
        handle = obs.enable()
        a = MonotonicCounter()
        with MultiWait([(a, 5)]) as mw:
            with pytest.raises(CheckTimeout):
                mw.wait_all(timeout=0.01)
        kinds = [e.kind for e in handle.trace if e.kind.startswith("mw_")]
        assert "mw_park" in kinds
        assert "mw_timeout" in kinds
        assert "mw_wake" not in kinds
