"""The open-loop load generator: determinism, CO-safety, recording."""

from __future__ import annotations

import threading
import time

import pytest

import repro.obs as obs
from repro.obs.load import (
    LoadResult,
    RequestRecord,
    arrival_schedule,
    run_load,
    schedule_digest,
)


class AdmitAll:
    """A limiter stub that admits instantly (optionally after a delay)."""

    def __init__(self, delay: float = 0.0, admit=lambda key: True):
        self.delay = delay
        self.admit = admit
        self.calls = []
        self._lock = threading.Lock()

    def acquire(self, key, timeout=None, corr=None):
        with self._lock:
            self.calls.append((key, corr))
        if self.delay:
            time.sleep(self.delay)
        return self.admit(key)


class TestArrivalSchedule:
    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            arrival_schedule(0.0, count=5)

    def test_exactly_one_of_count_and_duration(self):
        with pytest.raises(ValueError):
            arrival_schedule(10.0, count=5, duration=1.0)
        with pytest.raises(ValueError):
            arrival_schedule(10.0)

    def test_count_mode_yields_exactly_count_increasing_offsets(self):
        offsets = arrival_schedule(50.0, count=40, seed=3)
        assert len(offsets) == 40
        assert offsets == sorted(offsets)
        assert all(t > 0 for t in offsets)

    def test_duration_mode_stops_at_the_horizon(self):
        offsets = arrival_schedule(200.0, duration=0.5, seed=1)
        assert offsets and max(offsets) < 0.5

    def test_twenty_runs_are_byte_identical(self):
        # The determinacy contract the ISSUE names: the offered load is
        # a pure function of (rate, count, seed), hashed over the raw
        # IEEE-754 bytes — 20 regenerations, one digest.
        digests = {
            schedule_digest(arrival_schedule(123.0, count=200, seed=42))
            for _ in range(20)
        }
        assert len(digests) == 1

    def test_seed_and_rate_change_the_schedule(self):
        base = schedule_digest(arrival_schedule(100.0, count=50, seed=0))
        assert base != schedule_digest(arrival_schedule(100.0, count=50, seed=1))
        assert base != schedule_digest(arrival_schedule(90.0, count=50, seed=0))


class TestRecordsAndResult:
    def test_record_decomposition(self):
        r = RequestRecord(index=0, key="u", corr=None,
                          intended=10.0, start=10.4, end=11.0, ok=True)
        assert r.latency == pytest.approx(1.0)
        assert r.queue_s == pytest.approx(0.4)
        assert r.service_s == pytest.approx(0.6)

    def _result(self, latencies):
        records = [
            RequestRecord(index=i, key="u", corr=None, intended=0.0,
                          start=0.0, end=lat, ok=True)
            for i, lat in enumerate(latencies)
        ]
        return LoadResult(mode="open", rate=10.0, seed=0, digest="d",
                          t0=0.0, t_end=max(latencies), records=records)

    def test_percentiles_are_exact_order_statistics(self):
        result = self._result([i / 100 for i in range(1, 101)])
        assert result.percentile(0.50) == pytest.approx(0.50)
        assert result.percentile(0.99) == pytest.approx(0.99)
        assert result.percentile(1.0) == pytest.approx(1.0)
        assert result.percentile(0.0) == pytest.approx(0.01)

    def test_percentile_validates_and_handles_empty(self):
        result = self._result([0.1])
        with pytest.raises(ValueError):
            result.percentile(1.5)
        empty = LoadResult(mode="open", rate=1.0, seed=0, digest="d",
                           t0=0.0, t_end=0.0)
        assert empty.percentile(0.99) == 0.0
        assert empty.admit_rate == 0.0

    def test_worst_returns_the_slowest_first(self):
        result = self._result([0.2, 0.9, 0.1, 0.5])
        assert [r.latency for r in result.worst(2)] == [0.9, 0.5]

    def test_summary_shape(self):
        summary = self._result([0.1, 0.2]).summary()
        for key in ("mode", "offered_rate", "achieved_rate", "requests",
                    "admit_rate", "p50", "p99", "p999", "seed", "digest"):
            assert key in summary


class TestRunLoad:
    def test_validates_mode_workers_keys(self):
        target = AdmitAll()
        with pytest.raises(ValueError):
            run_load(target, rate=10.0, count=1, mode="sideways")
        with pytest.raises(ValueError):
            run_load(target, rate=10.0, count=1, workers=0)
        with pytest.raises(ValueError):
            run_load(target, rate=10.0, count=1, keys=())

    def test_open_loop_records_every_arrival(self):
        target = AdmitAll()
        result = run_load(target, rate=500.0, count=30, seed=7,
                          keys=("a", "b"), workers=3)
        assert len(result.records) == 30
        assert result.mode == "open"
        assert result.digest == schedule_digest(
            arrival_schedule(500.0, count=30, seed=7)
        )
        assert {key for key, _ in target.calls} == {"a", "b"}
        assert all(r.queue_s >= 0 for r in result.records)
        assert result.admit_rate == 1.0

    def test_open_loop_charges_queue_delay_to_latency(self):
        # One worker, a slow target, arrivals faster than service: the
        # queueing a closed-loop generator would hide must appear in
        # the open-loop latencies (the coordinated-omission point).
        target = AdmitAll(delay=0.02)
        result = run_load(target, rate=400.0, count=12, workers=1)
        assert max(r.queue_s for r in result.records) > 0.01
        worst = result.worst(1)[0]
        assert worst.latency >= worst.queue_s

    def test_closed_loop_never_queues(self):
        target = AdmitAll(delay=0.005)
        result = run_load(target, rate=400.0, count=10, mode="closed",
                          workers=1)
        # intended is stamped at execution: no queue charge beyond the
        # two adjacent clock reads.
        assert all(r.queue_s < 0.005 for r in result.records)
        assert result.mode == "closed"

    def test_rejections_recorded_not_raised(self):
        target = AdmitAll(admit=lambda key: key == "a")
        result = run_load(target, rate=500.0, count=20, keys=("a", "b"))
        assert 0.0 < result.admit_rate < 1.0
        assert all(r.ok == (r.key == "a") for r in result.records)

    def test_observers_see_every_record_and_may_raise(self):
        seen = []

        def bad_observer(record):
            raise RuntimeError("observer bug")

        result = run_load(AdmitAll(), rate=500.0, count=15,
                          observers=(seen.append, bad_observer))
        assert len(seen) == len(result.records) == 15

    def test_disabled_obs_stamps_no_corr(self):
        obs.disable()
        result = run_load(AdmitAll(), rate=500.0, count=5)
        assert all(r.corr is None for r in result.records)

    def test_enabled_obs_emits_req_events_with_corr(self):
        handle = obs.enable()
        try:
            target = AdmitAll(admit=lambda key: False)
            result = run_load(target, rate=500.0, count=4)
        finally:
            events = handle.trace.snapshot()
            obs.disable()
        corrs = {r.corr for r in result.records}
        assert None not in corrs and len(corrs) == 4
        starts = [e for e in events if e.kind == "req_start"]
        dones = [e for e in events if e.kind == "req_done"]
        assert {e.corr for e in starts} == corrs
        assert {e.corr for e in dones} == corrs
        assert all(e.value == 0 for e in dones)  # every request rejected
        # The limiter stub saw the same tokens it can ride on frames.
        assert {c for _, c in target.calls} == corrs
