"""Histograms, the metrics registry, and the unified stats export.

The histogram tests pin the bucket discipline (``buckets[i]`` counts
observations ``<= bounds[i]``, +Inf overflow slot, cumulative-``le``
computed only at export time); the registry tests pin label lifecycle
(creation, overflow into the shared ``"(overflow)"`` series) and the two
export surfaces (dict snapshot, Prometheus text).  The unification tests
are the satellite contract: a live ``stats=True`` counter's
:class:`~repro.core.stats.CounterStats` appears in both exports, a
``stats=False`` counter contributes nothing, and ``NOOP_STATS`` stays a
well-behaved null object.
"""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.core import NOOP_STATS, CheckTimeout, MonotonicCounter
from repro.obs import CounterMetrics, Histogram, MetricsRegistry
from repro.obs.metrics import LATENCY_BOUNDS, SPIN_BOUNDS
from tests.helpers import join_all, spawn, wait_until


class TestHistogram:
    def test_observations_land_in_the_first_bucket_not_below_them(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 4.0, 99.0):
            hist.observe(value)
        # <=1: {0.5, 1.0}; <=2: {1.5}; <=4: {4.0}; +Inf: {99.0}
        assert hist.buckets == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(106.0)

    def test_quantile(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        assert hist.quantile(0.5) == 0.0  # empty
        for value in (0.5, 0.5, 1.5, 99.0):
            hist.observe(value)
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(0.75) == 2.0
        assert hist.quantile(1.0) == float("inf")
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_snapshot_includes_the_overflow_bucket(self):
        hist = Histogram(bounds=(1.0,))
        hist.observe(3.0)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["buckets"]["+Inf"] == 1
        assert snap["buckets"]["1.0"] == 0

    def test_default_bounds_are_exponential(self):
        assert LATENCY_BOUNDS[0] == pytest.approx(1e-6)
        assert SPIN_BOUNDS[0] == 1.0
        for bounds in (LATENCY_BOUNDS, SPIN_BOUNDS):
            for lo, hi in zip(bounds, bounds[1:]):
                assert hi == pytest.approx(2 * lo)


class TestMetricsRegistry:
    @pytest.mark.parametrize("max_series", [0, -1, True, 1.5])
    def test_max_series_validation(self, max_series):
        with pytest.raises(ValueError):
            MetricsRegistry(max_series=max_series)

    def test_series_is_created_once_and_reused(self):
        registry = MetricsRegistry()
        series = registry.series("a")
        assert isinstance(series, CounterMetrics)
        assert registry.series("a") is series
        assert registry.labels() == ["a"]

    def test_overflow_folds_into_the_shared_series(self):
        registry = MetricsRegistry(max_series=2)
        registry.series("a")
        registry.series("b")
        overflow = registry.series("c")
        assert overflow is registry.series(registry.OVERFLOW_LABEL)
        assert overflow is registry.series("d")  # still overflowing
        assert registry.dropped_series == 2
        assert registry.snapshot()["dropped_series"] == 2

    def test_note_levels_keeps_high_water_marks(self):
        metrics = CounterMetrics()
        metrics.note_levels(3, 10)
        metrics.note_levels(1, 4)  # below the mark: no regression
        assert metrics.live_levels_hw == 3
        assert metrics.live_waiters_hw == 10


class TestPrometheusExport:
    def _registry_with_data(self):
        registry = MetricsRegistry()
        series = registry.series("the-counter")
        series.increments = 7
        series.parks = 2
        series.wait_latency.observe(0.5e-6)  # first bucket
        series.wait_latency.observe(3e-6)    # third (<=4e-6)
        series.wait_latency.observe(1e9)     # +Inf
        return registry

    def test_counter_and_gauge_lines(self):
        text = self._registry_with_data().prometheus()
        assert '# TYPE repro_counter_increments_total counter' in text
        assert 'repro_counter_increments_total{counter="the-counter"} 7' in text
        assert 'repro_counter_parks_total{counter="the-counter"} 2' in text
        assert '# TYPE repro_counter_live_levels_high_water gauge' in text
        assert text.endswith("\n")

    def test_histogram_lines_are_cumulative(self):
        text = self._registry_with_data().prometheus()
        lines = [
            line for line in text.splitlines()
            if line.startswith("repro_counter_wait_latency_seconds")
        ]
        buckets = [line for line in lines if "_bucket" in line]
        # The le counts never decrease, end at +Inf == _count == 3.
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)
        assert buckets[-1].startswith(
            'repro_counter_wait_latency_seconds_bucket{counter="the-counter",le="+Inf"}'
        )
        assert counts[-1] == 3
        assert any(
            line == 'repro_counter_wait_latency_seconds_count{counter="the-counter"} 3'
            for line in lines
        )

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.series('we"ird\nlabel')
        text = registry.prometheus()
        assert 'counter="we\\"ird\\nlabel"' in text


class TestStatsUnification:
    def test_live_stats_counter_appears_in_both_exports(self):
        obs.enable(trace=False)
        counter = MonotonicCounter(name="unified-stats", stats=True)
        for _ in range(3):
            counter.increment(1)
        counter.check(2)

        registry = obs.current().metrics
        stats = registry.snapshot()["stats"]
        assert stats["unified-stats"]["increments"] == 3
        assert stats["unified-stats"]["checks"] == 1

        text = registry.prometheus()
        assert '# TYPE repro_counter_stats_total counter' in text
        assert ('repro_counter_stats_total{counter="unified-stats",'
                'tally="increments"} 3') in text

    def test_stats_false_counter_contributes_nothing(self):
        obs.enable(trace=False)
        counter = MonotonicCounter(name="no-stats-here")  # stats=False
        counter.increment(1)
        registry = obs.current().metrics
        assert "no-stats-here" not in registry.snapshot()["stats"]
        # The counter's own metric series exists (it incremented with obs
        # on) but the unified stats section must not mention it.
        assert ('repro_counter_stats_total{counter="no-stats-here"'
                not in registry.prometheus())

    def test_noop_stats_null_object(self):
        assert NOOP_STATS.enabled is False
        doc = NOOP_STATS.as_dict()
        assert set(doc) == set(MonotonicCounter(stats=True).stats.as_dict())
        assert all(value == 0 for value in doc.values())


class TestEndToEndSeries:
    def test_workload_populates_the_series(self):
        handle = obs.enable(trace=False)
        counter = MonotonicCounter(name="e2e-counter")

        waiters = [spawn(counter.check, 2) for _ in range(3)]
        wait_until(lambda: counter.snapshot().total_waiters == 3)
        counter.increment(2)
        join_all(waiters)
        with pytest.raises(CheckTimeout):
            counter.check(100, timeout=0.01)

        series = handle.metrics.series("e2e-counter")
        assert series.increments == 1
        assert series.parks == 4           # 3 released + 1 timed out
        assert series.unparks == 3
        assert series.timeouts == 1
        assert series.releases == 1        # one node covered all 3 waiters
        assert series.live_waiters_hw >= 3
        assert series.live_levels_hw >= 1
        # Latency histograms: three measured wakeups, four measured waits
        # (the timeout's wait duration is observed too).
        assert series.wakeup_latency.count == 3
        assert series.wait_latency.count == 4
