"""SLO tracking and tail attribution: windows, burn, breaches, explain."""

from __future__ import annotations

import time

import pytest

import repro.obs as obs
from repro.apps.ratelimit import RateLimiter
from repro.obs.load import RequestRecord, run_load
from repro.obs.slo import ExemplarReport, SloPolicy, SloTracker, explain, slice_around
from repro.obs.watchdog import StallWatchdog


def record(latency: float, *, corr=None, index=0, ok=True) -> RequestRecord:
    return RequestRecord(index=index, key="u", corr=corr, intended=0.0,
                         start=0.0, end=latency, ok=ok)


def fixed_clock(value: float = 0.0):
    def clock() -> float:
        return clock.now

    clock.now = value
    return clock


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            SloPolicy(objective_s=0.0)
        with pytest.raises(ValueError):
            SloPolicy(objective_s=0.1, quantile=1.0)
        with pytest.raises(ValueError):
            SloPolicy(objective_s=0.1, window_s=0.0)

    def test_defaults(self):
        policy = SloPolicy(objective_s=0.05)
        assert policy.quantile == 0.99
        assert policy.burn_threshold == 1.0


class TestTracker:
    def _tracker(self, **kw):
        clock = fixed_clock()
        policy = kw.pop("policy", SloPolicy(objective_s=0.1, window_s=10.0))
        return SloTracker(policy, clock=clock, **kw), clock

    def test_counts_violations_against_the_objective(self):
        tracker, _ = self._tracker()
        for lat in (0.01, 0.05, 0.2, 0.3):
            tracker.observe(lat)
        assert tracker.total == 4
        assert tracker.violations == 2

    def test_burn_rate_is_violation_rate_over_error_budget(self):
        tracker, clock = self._tracker(
            policy=SloPolicy(objective_s=0.1, quantile=0.9, window_s=10.0)
        )
        for lat in [0.05] * 8 + [0.5] * 2:  # 20% violating, 10% budget
            tracker.observe(lat)
        state = tracker.evaluate(clock.now)
        assert state["window_total"] == 10
        assert state["violation_rate"] == pytest.approx(0.2)
        assert state["burn_rate"] == pytest.approx(2.0)
        assert state["breached"] is True

    def test_empty_window_never_breaches(self):
        tracker, clock = self._tracker()
        state = tracker.poll(clock.now)
        assert state["window_total"] == 0
        assert state["breached"] is False
        assert tracker.breaches == []

    def test_window_slides_past_old_samples(self):
        tracker, clock = self._tracker()
        for _ in range(5):
            tracker.observe(0.5)  # all violating
        tracker.poll(clock.now)  # lays down a cursor at t=0 (and breaches)
        clock.now = 20.0  # cursor is now a window old: fresh window is empty
        state = tracker.evaluate(clock.now)
        assert state["window_total"] == 0
        assert state["breached"] is False

    def test_breach_emits_once_and_rearms(self):
        tracker, clock = self._tracker(rearm=30.0)
        fired = []
        tracker._on_breach = fired.append
        tracker.observe(0.5)
        tracker.poll(clock.now)
        clock.now = 1.0
        tracker.observe(0.5)
        tracker.poll(clock.now)  # within rearm: suppressed
        assert len(tracker.breaches) == len(fired) == 1
        clock.now = 40.0
        tracker.observe(0.5)
        tracker.poll(clock.now)  # rearmed
        assert len(tracker.breaches) == len(fired) == 2

    def test_breach_callback_errors_are_swallowed(self):
        tracker, clock = self._tracker(
            on_breach=lambda state: (_ for _ in ()).throw(RuntimeError())
        )
        tracker.observe(0.5)
        tracker.poll(clock.now)  # must not raise
        assert len(tracker.breaches) == 1

    def test_breach_event_lands_in_the_trace(self):
        handle = obs.enable()
        try:
            tracker, clock = self._tracker(label="checkout-slo")
            tracker.observe(0.5)
            tracker.poll(clock.now)
        finally:
            events = handle.trace.snapshot()
            obs.disable()
        breach = next(e for e in events if e.kind == "slo_breach")
        assert breach.source == "checkout-slo"
        assert breach.value == 1 and breach.count == 1

    def test_keeps_the_worst_k_with_corr_tokens(self):
        tracker, _ = self._tracker(keep_worst=3)
        for i, lat in enumerate([0.1, 0.9, 0.2, 0.7, 0.05, 0.8]):
            tracker(record(lat, corr=f"c{i}", index=i))
        worst = tracker.exemplars()
        assert [r.corr for r in worst] == ["c1", "c5", "c3"]
        assert [r.corr for r in tracker.exemplars(2)] == ["c1", "c5"]

    def test_attach_rides_the_watchdog_poll(self):
        tracker, _ = self._tracker()
        tracker.observe(0.5)
        watchdog = StallWatchdog(threshold=60.0, interval=0.01)
        tracker.attach(watchdog)
        watchdog.start()
        try:
            deadline = time.monotonic() + 5.0
            while not tracker.breaches and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            watchdog.stop()
        assert tracker.breaches, "watchdog poll never drove the tracker"


class TestAttribution:
    def _traced_tail_run(self):
        """A real in-process run with one saturated key: worst request
        blocked on the retired counter until the roller freed quota."""
        handle = obs.enable()
        try:
            limiter = RateLimiter(2, 0.25, name="q", roll_interval=0.05)
            with limiter:
                result = run_load(limiter, rate=120.0, duration=0.5,
                                  seed=3, keys=("hot",), timeout=5.0)
            limiter.close()
        finally:
            events = handle.trace.snapshot()
            obs.disable()
        return result, events

    def test_explain_unknown_corr_raises(self):
        with pytest.raises(ValueError):
            explain("nope-1", [])

    def test_slice_keeps_corr_events_outside_the_bracket(self):
        result, events = self._traced_tail_run()
        corr = result.worst(1)[0].corr
        sliced = slice_around(events, corr, margin=0.0)
        own = [e for e in events if e.corr == corr]
        assert [e for e in sliced if e.corr == corr] == own  # kept every own event
        assert len(sliced) <= len(events)
        lo = min(e.ts for e in own)
        hi = max(e.ts for e in own)
        assert all(lo <= e.ts <= hi or e.corr == corr for e in sliced)

    def test_explain_decomposes_and_names_the_releaser(self):
        result, events = self._traced_tail_run()
        worst = result.worst(1)[0]
        assert worst.latency > 0.05  # the run really did saturate
        report = explain(worst.corr, events)
        assert isinstance(report, ExemplarReport)
        assert report.corr == worst.corr
        assert report.latency == pytest.approx(worst.latency, rel=0.05)
        # The decomposition accounts for the whole latency.
        total = (report.queue_s + report.wait_s + report.service_s)
        assert total == pytest.approx(report.latency, rel=0.05)
        assert report.wait_s > 0  # the tail was a counter wait…
        assert report.blocked_on and "retired" in report.blocked_on
        assert report.releaser is not None  # …ended by the roller thread
        assert not report.over_wire  # in-process: no wire hop
        assert report.path, "critical path missing"
        text = report.render()
        assert worst.corr in text
        assert "released by" in text
        assert "blocked on" in text

    def test_render_without_waits_still_reports(self):
        report = ExemplarReport(corr="x-1", ok=False, latency=0.2,
                                queue_s=0.2, wait_s=0.0, wire_s=0.0,
                                service_s=0.0, releaser=None,
                                over_wire=False, blocked_on=None)
        text = report.render()
        assert "rejected" in text and "x-1" in text
        assert report.crosses_pid is False
