"""Quantifying the fast-path stats undercount (the documented caveat).

``CounterStats.immediate_checks`` is bumped on the lock-free fast path
with a plain, unsynchronized read-modify-write — that is the deal:
losing an occasional tally beats re-serializing the path that exists to
avoid the lock.  These tests turn the prose caveat into a checked bound:

* the tally can only UNDER-count — ``immediate_checks`` never exceeds
  the true number of fast-path hits, under any interleaving, because
  every bump corresponds to exactly one satisfied check and a lost race
  only ever discards bumps;
* the loss is bounded in practice — a generous floor (half the true
  count) documents the expected magnitude without flaking on slow or
  free-threaded machines;
* everything updated under the counter lock stays EXACT, contention or
  not — the caveat is scoped to the two lock-free tallies and nothing
  else.
"""

from __future__ import annotations

from repro.core import MonotonicCounter
from tests.helpers import join_all, spawn, wait_until

THREADS = 8
CHECKS_PER_THREAD = 5_000


class TestImmediateChecksBound:
    def test_single_threaded_tally_is_exact(self):
        counter = MonotonicCounter(stats=True)
        counter.increment(1)
        for _ in range(1000):
            counter.check(1)
        assert counter.stats.immediate_checks == 1000
        assert counter.stats.checks == 1000

    def test_contended_tally_undercounts_at_worst(self):
        """T*K true fast-path hits: the racy tally may lose some but can
        never invent one, and the loss stays small."""
        counter = MonotonicCounter(stats=True)
        counter.increment(1)
        true_hits = THREADS * CHECKS_PER_THREAD

        def hammer():
            check = counter.check
            for _ in range(CHECKS_PER_THREAD):
                check(1)

        join_all([spawn(hammer) for _ in range(THREADS)])

        stats = counter.stats
        # The bound: never an overcount.  Every check was satisfied on
        # the fast path, so the other two check tallies must stay zero.
        assert stats.immediate_checks <= true_hits
        assert stats.spin_checks == 0
        assert stats.suspended_checks == 0
        assert stats.checks == stats.immediate_checks
        # The quantification: lost bumps are rare (each requires two
        # threads interleaving inside one read-modify-write); losing
        # half of them would signal something structurally wrong.
        assert stats.immediate_checks >= true_hits // 2

    def test_locked_tallies_stay_exact_under_the_same_contention(self):
        """The caveat is scoped: suspended_checks, nodes, releases and
        wakeups are bumped under the counter lock and must come out
        exact even when many threads park and wake concurrently."""
        counter = MonotonicCounter(stats=True)
        waiters = [spawn(counter.check, (w % 4) + 1) for w in range(12)]
        wait_until(lambda: counter.snapshot().total_waiters == 12)
        counter.increment(4)  # one coalesced release for all four levels
        join_all(waiters)

        stats = counter.stats
        assert stats.suspended_checks == 12
        assert stats.threads_woken == 12
        assert stats.nodes_created == 4
        assert stats.nodes_released == 4
        assert stats.timeouts == 0
        assert stats.max_live_waiters == 12
        assert stats.max_live_levels == 4
