"""The stall watchdog, driven deterministically.

The positive test is scripted with the testkit :class:`Controller`: the
stalled thread is *gated* at ``park.enter`` (registered on the wait
list, provably going nowhere), and the watchdog's clock is virtual —
``poll(now=...)`` — so crossing the threshold is arithmetic, not
sleeping.  The negative test drives the same machinery over a workload
that makes progress and must stay silent.  Background-thread plumbing
(start/stop/context manager) is tested separately with a real, tiny
threshold.

Every assertion filters reports by the counter's label: the registry is
process-global and other live counters must not confound the test.
"""

from __future__ import annotations

import threading

import pytest

import repro.obs as obs
from repro.core import MonotonicCounter, ShardedCounter
from repro.obs import StallReport, StallWatchdog, WaitingLevel
from repro.testkit import Controller
from tests.helpers import join_all, spawn, wait_until


def _reports_for(reports, label):
    return [r for r in reports if r.counter == label]


class TestValidation:
    @pytest.mark.parametrize("kwargs", [{"threshold": 0}, {"threshold": -1},
                                        {"interval": 0}, {"interval": -0.5}])
    def test_rejects_non_positive_tuning(self, kwargs):
        with pytest.raises(ValueError):
            StallWatchdog(**kwargs)


class TestScriptedStall:
    def test_gated_checker_is_flagged_with_the_full_dump(self):
        """A checker frozen at ``park.enter`` is the canonical stall: the
        wait node is registered, the thread will never be released, and
        the report must name the counter, the level, the waiter count,
        the value, and every other waiting level on the counter."""
        counter = MonotonicCounter(name="stalled-counter")
        counter.increment(1)
        dog = StallWatchdog(threshold=5.0)
        ctl = Controller()
        ctl.spawn("stuck", counter.check, 10)
        ctl.spawn("stuck2", counter.check, 10)
        ctl.spawn("other", counter.check, 7)
        with ctl:
            ctl.until("stuck", "park.enter")
            ctl.until("stuck2", "park.enter")
            ctl.until("other", "park.enter")

            # Below threshold: first sighting starts the clock, nothing fires.
            assert _reports_for(dog.poll(now=100.0), "stalled-counter") == []
            assert _reports_for(dog.poll(now=104.9), "stalled-counter") == []

            reports = _reports_for(dog.poll(now=105.0), "stalled-counter")
            assert sorted(r.level for r in reports) == [7, 10]
            by_level = {r.level: r for r in reports}
            stalled = by_level[10]
            assert stalled.counter == "stalled-counter"
            assert "stalled-counter" in stalled.counter_repr
            assert stalled.waiters == 2
            assert stalled.value == 1
            assert stalled.stalled_s == pytest.approx(5.0)
            # The who-waits-on-what dump covers BOTH levels in one report.
            assert set(stalled.levels) == {WaitingLevel(10, 2), WaitingLevel(7, 1)}
            assert by_level[7].waiters == 1

            # Without rearm, a still-stalled pair is reported exactly once.
            assert _reports_for(dog.poll(now=200.0), "stalled-counter") == []
            assert len(_reports_for(dog.reports, "stalled-counter")) == 2

            # Unblock everyone and let the schedule finish cleanly.
            counter.increment(9)
            ctl.finish()

        # Progress was made: the pairs are pruned, nothing new fires.
        assert _reports_for(dog.poll(now=300.0), "stalled-counter") == []

    def test_healthy_workload_is_never_flagged(self):
        counter = MonotonicCounter(name="healthy-counter")
        dog = StallWatchdog(threshold=5.0)
        waiter = spawn(counter.check, 1)
        wait_until(lambda: counter.snapshot().total_waiters == 1)
        assert _reports_for(dog.poll(now=0.0), "healthy-counter") == []
        counter.increment(1)          # released well inside the threshold
        join_all([waiter])
        for now in (4.0, 10.0, 100.0):
            assert _reports_for(dog.poll(now=now), "healthy-counter") == []
        assert _reports_for(dog.reports, "healthy-counter") == []

    def test_progress_resets_the_stall_clock(self):
        """A (counter, level) pair that empties and is later re-waited
        starts a fresh clock — continuous waiting is what stalls measure,
        not lifetime occupancy of a level.  The same level is reused so
        this genuinely exercises the per-poll pruning of the tracking
        key, not just two independent keys."""
        from repro.core import CheckTimeout

        counter = MonotonicCounter(name="fresh-clock")
        dog = StallWatchdog(threshold=5.0)

        def impatient():
            with pytest.raises(CheckTimeout):
                counter.check(5, timeout=0.05)

        waiter = spawn(impatient)
        wait_until(lambda: counter.snapshot().total_waiters == 1)
        assert _reports_for(dog.poll(now=0.0), "fresh-clock") == []
        join_all([waiter])  # the wait expires; level 5 empties
        assert _reports_for(dog.poll(now=50.0), "fresh-clock") == []  # pruned

        waiter = spawn(counter.check, 5, 30.0)  # SAME level, new wait
        wait_until(lambda: counter.snapshot().total_waiters == 1)
        # 60 units after the first sighting of the old wait — but the key
        # was pruned, so this wait is first seen at 60 and cannot fire
        # before 65.
        assert _reports_for(dog.poll(now=60.0), "fresh-clock") == []
        assert _reports_for(dog.poll(now=64.0), "fresh-clock") == []
        reports = _reports_for(dog.poll(now=65.0), "fresh-clock")
        assert [r.level for r in reports] == [5]
        assert reports[0].stalled_s == pytest.approx(5.0)
        counter.increment(5)
        join_all([waiter])

    def test_rearm_re_reports_a_persistent_stall(self):
        counter = MonotonicCounter(name="rearm-counter")
        dog = StallWatchdog(threshold=5.0, rearm=10.0)
        waiter = spawn(counter.check, 3, 30.0)  # generous real timeout
        wait_until(lambda: counter.snapshot().total_waiters == 1)

        assert _reports_for(dog.poll(now=0.0), "rearm-counter") == []
        assert len(_reports_for(dog.poll(now=6.0), "rearm-counter")) == 1
        assert _reports_for(dog.poll(now=9.0), "rearm-counter") == []   # armed
        assert _reports_for(dog.poll(now=15.9), "rearm-counter") == []  # not yet
        again = _reports_for(dog.poll(now=16.0), "rearm-counter")
        assert len(again) == 1
        assert again[0].stalled_s == pytest.approx(16.0)

        counter.increment(3)
        join_all([waiter])

    def test_sharded_counter_reports_the_reconciled_lower_bound(self):
        """The stall report's ``value`` for a sharded counter is the
        published+pending total — pending units that cannot yet satisfy
        the waiter still show up in the diagnosis."""
        sharded = ShardedCounter(shards=2, batch=1000, name="stall-sharded")
        dog = StallWatchdog(threshold=5.0)
        waiter = spawn(sharded.check, 50, 30.0)
        wait_until(lambda: sharded.snapshot().total_waiters == 1)
        # A live checker makes real increments flush eagerly (by design),
        # so in-flight pending units are simulated white-box: this is
        # exactly the state a mid-batch producer leaves behind.
        sharded._shards[0].pending = 3

        dog.poll(now=0.0)
        [report] = _reports_for(dog.poll(now=6.0), "stall-sharded")
        assert report.level == 50
        assert report.waiters == 1
        assert report.value == 3  # pending units included in the bound
        sharded._shards[0].pending = 0
        sharded.increment(50)
        join_all([waiter])

    def test_scan_survives_a_broken_counter(self):
        """A registered object whose snapshot raises must be skipped,
        not crash the scan (the watchdog observes wedged systems)."""

        class Broken:
            _name = "broken-counter"

            def snapshot(self):
                raise ZeroDivisionError("boom")

        from repro.obs import registry as obs_registry

        broken = Broken()
        obs_registry.register(broken)
        try:
            counter = MonotonicCounter(name="alongside-broken")
            waiter = spawn(counter.check, 1, 30.0)
            wait_until(lambda: counter.snapshot().total_waiters == 1)
            dog = StallWatchdog(threshold=5.0)
            dog.poll(now=0.0)
            reports = dog.poll(now=6.0)  # must not raise
            assert len(_reports_for(reports, "alongside-broken")) == 1
            counter.increment(1)
            join_all([waiter])
        finally:
            obs_registry.deregister(broken)


class TestDelivery:
    def test_on_stall_callback_and_trace_event(self):
        handle = obs.enable(metrics=False)
        delivered = []
        counter = MonotonicCounter(name="delivered-counter")
        waiter = spawn(counter.check, 2, 30.0)
        wait_until(lambda: counter.snapshot().total_waiters == 1)

        dog = StallWatchdog(threshold=5.0, on_stall=delivered.append)
        dog.poll(now=0.0)
        dog.poll(now=6.0)
        ours = _reports_for(delivered, "delivered-counter")
        assert len(ours) == 1 and isinstance(ours[0], StallReport)

        stalls = [e for e in handle.trace
                  if e.kind == "stall" and e.source == "delivered-counter"]
        assert len(stalls) == 1
        assert stalls[0].level == 2
        assert stalls[0].count == 1          # waiters
        assert stalls[0].wait_s == pytest.approx(6.0)

        counter.increment(2)
        join_all([waiter])

    def test_report_renders_human_readably(self):
        report = StallReport(
            counter="c", counter_repr="<c>", level=4, waiters=2, value=1,
            stalled_s=7.5, levels=(WaitingLevel(4, 2),),
        )
        text = str(report)
        assert "check(4)" in text and "7.5s" in text and "2 waiter(s)" in text


class TestBackgroundThread:
    def test_start_poll_stop(self):
        counter = MonotonicCounter(name="bg-counter")
        waiter = spawn(counter.check, 1, 30.0)
        wait_until(lambda: counter.snapshot().total_waiters == 1)

        fired = threading.Event()

        def on_stall(report):
            if report.counter == "bg-counter":
                fired.set()

        with StallWatchdog(threshold=0.05, interval=0.01,
                           on_stall=on_stall) as dog:
            assert dog.running
            assert fired.wait(10.0)
            with pytest.raises(RuntimeError):
                dog.start()  # already running
        assert not dog.running
        dog.stop()  # idempotent

        counter.increment(1)
        join_all([waiter])

    def test_module_level_singleton(self):
        dog = obs.start_watchdog(threshold=0.05, interval=0.01)
        assert obs.watchdog() is dog
        assert obs.start_watchdog() is dog  # already running: same instance
        obs.stop_watchdog()
        assert obs.watchdog() is None
        assert not dog.running
        obs.stop_watchdog()  # idempotent
