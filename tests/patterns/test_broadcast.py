"""Tests for the single-writer multiple-reader broadcast (§5.3)."""

from __future__ import annotations

import threading

import pytest

from repro.core import MonotonicCounter
from repro.patterns import ClosableBroadcast, SingleWriterBroadcast
from repro.structured import ThreadScope
from tests.helpers import join_all, spawn


class TestSingleWriterBroadcast:
    def test_publish_then_read(self):
        bc = SingleWriterBroadcast(3)
        for i in range(3):
            bc.publish(i * 10)
        assert list(bc.read()) == [0, 10, 20]

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SingleWriterBroadcast(-1)

    def test_overfull_publish_rejected(self):
        bc = SingleWriterBroadcast(1)
        bc.publish("a")
        with pytest.raises(IndexError):
            bc.publish("b")

    def test_readers_block_until_published(self):
        bc = SingleWriterBroadcast(4)
        collected: list[list[int]] = [[] for _ in range(3)]

        def reader(r):
            collected[r] = list(bc.read())

        threads = [spawn(reader, r) for r in range(3)]
        for i in range(4):
            bc.publish(i)
        join_all(threads)
        assert collected == [[0, 1, 2, 3]] * 3

    def test_every_reader_sees_every_item(self):
        """Broadcast, not queue: reading does not consume (§5.3)."""
        bc = SingleWriterBroadcast(5)
        for i in range(5):
            bc.publish(i)
        assert list(bc.read()) == list(bc.read()) == [0, 1, 2, 3, 4]

    def test_blocked_writer_blocked_readers(self):
        bc = SingleWriterBroadcast(10)
        results = []
        lock = threading.Lock()

        def reader(block_size):
            out = list(bc.read(block_size=block_size))
            with lock:
                results.append(out)

        # Different granularities per reader: the paper's flexibility claim.
        threads = [spawn(reader, bs) for bs in (1, 3, 10)]
        bc.publish_blocked(list(range(10)), block_size=4)
        join_all(threads)
        assert results == [list(range(10))] * 3

    def test_publish_blocked_partial_final_block(self):
        bc = SingleWriterBroadcast(5)
        bc.publish_blocked([0, 1, 2, 3, 4], block_size=2)
        assert bc.counter.value == 5  # 2 + 2 + 1

    def test_publish_blocked_overflow_rejected(self):
        bc = SingleWriterBroadcast(2)
        with pytest.raises(IndexError):
            bc.publish_blocked([1, 2, 3], block_size=1)

    def test_block_size_validation(self):
        bc = SingleWriterBroadcast(2)
        with pytest.raises(ValueError):
            list(bc.read(block_size=0))
        with pytest.raises(ValueError):
            bc.publish_blocked([1], block_size=0)

    def test_random_access_get(self):
        bc = SingleWriterBroadcast(3)
        got = []
        thread = spawn(lambda: got.append(bc.get(2)))
        bc.publish("a")
        bc.publish("b")
        thread.join(0.05)
        assert not got
        bc.publish("c")
        join_all([thread])
        assert got == ["c"]

    def test_get_bounds_checked(self):
        bc = SingleWriterBroadcast(2)
        with pytest.raises(IndexError):
            bc.get(2)
        with pytest.raises(IndexError):
            bc.get(-1)

    def test_one_counter_many_suspension_levels(self):
        """The §5.3 point: a single counter synchronizes readers suspended
        at different levels simultaneously."""
        counter = MonotonicCounter()
        bc = SingleWriterBroadcast(10, counter=counter)

        def reader(block_size):
            return list(bc.read(block_size=block_size))

        with ThreadScope() as scope:
            for bs in (1, 2, 5):
                scope.spawn(reader, bs)
            # Let readers park at their first levels (1, 2, 5), then check
            # the counter really has multiple live suspension levels.
            from tests.helpers import wait_until

            wait_until(lambda: len(counter.snapshot().waiting_levels) == 3)
            assert counter.snapshot().waiting_levels == (1, 2, 5)
            for i in range(10):
                bc.publish(i)


class TestClosableBroadcast:
    def test_publish_close_read(self):
        bc = ClosableBroadcast()
        bc.publish("a")
        bc.publish("b")
        bc.close()
        assert list(bc.read()) == ["a", "b"]

    def test_empty_closed_stream(self):
        bc = ClosableBroadcast()
        bc.close()
        assert list(bc.read()) == []

    def test_close_is_idempotent(self):
        bc = ClosableBroadcast()
        bc.close()
        bc.close()

    def test_publish_after_close_rejected(self):
        bc = ClosableBroadcast()
        bc.close()
        with pytest.raises(RuntimeError):
            bc.publish(1)

    def test_reader_blocks_then_drains_on_close(self):
        bc = ClosableBroadcast()
        out = []
        thread = spawn(lambda: out.extend(bc.read()))
        bc.publish(1)
        bc.publish(2)
        thread.join(0.05)
        assert thread.is_alive()  # reader waiting for item 3 or close
        bc.close()
        join_all([thread])
        assert out == [1, 2]

    def test_stream_rereadable_after_close(self):
        bc = ClosableBroadcast()
        for i in range(4):
            bc.publish(i)
        bc.close()
        assert list(bc.read()) == list(bc.read()) == [0, 1, 2, 3]

    def test_many_readers_unknown_length(self):
        bc = ClosableBroadcast()
        results = []
        lock = threading.Lock()

        def reader():
            out = list(bc.read())
            with lock:
                results.append(out)

        threads = [spawn(reader) for _ in range(4)]
        for i in range(25):
            bc.publish(i)
        bc.close()
        join_all(threads)
        assert results == [list(range(25))] * 4
