"""Tests for DataflowCell / DataflowArray (single-assignment on counters)."""

from __future__ import annotations

import threading

import pytest

from repro.core import CheckTimeout, MonotonicCounter
from repro.patterns import DataflowArray, DataflowCell
from repro.sync import AlreadyAssignedError, SingleAssignment
from repro.structured import multithreaded, multithreaded_for
from tests.helpers import join_all, spawn


class TestDataflowCell:
    def test_assign_then_read(self):
        cell = DataflowCell()
        cell.assign(42)
        assert cell.read() == 42

    def test_read_blocks_until_assigned(self):
        cell = DataflowCell()
        got = []
        thread = spawn(lambda: got.append(cell.read()))
        thread.join(0.05)
        assert not got
        cell.assign("ready")
        join_all([thread])
        assert got == ["ready"]

    def test_double_assign_raises(self):
        cell = DataflowCell()
        cell.assign(1)
        with pytest.raises(AlreadyAssignedError):
            cell.assign(2)
        assert cell.read() == 1

    def test_concurrent_assign_exactly_one_wins(self):
        cell = DataflowCell()
        outcomes = []
        lock = threading.Lock()

        def assigner(i):
            try:
                cell.assign(i)
                with lock:
                    outcomes.append(i)
            except AlreadyAssignedError:
                pass

        threads = [spawn(assigner, i) for i in range(8)]
        join_all(threads)
        assert len(outcomes) == 1
        assert cell.read() == outcomes[0]

    def test_read_timeout(self):
        with pytest.raises(CheckTimeout):
            DataflowCell().read(timeout=0.01)

    def test_none_is_a_valid_value(self):
        cell = DataflowCell()
        cell.assign(None)
        assert cell.read() is None

    def test_semantics_match_direct_single_assignment(self):
        """Differential check against the condvar-built SingleAssignment."""
        for value in (0, "x", [1, 2]):
            direct: SingleAssignment = SingleAssignment()
            composed: DataflowCell = DataflowCell()
            direct.assign(value)
            composed.assign(value)
            assert direct.read() == composed.read()


class TestDataflowArray:
    def test_in_order_assignment_and_read(self):
        arr = DataflowArray(4)
        for i in range(4):
            assert arr.assign_next(i * 10) == i
        assert list(arr) == [0, 10, 20, 30]

    def test_one_counter_behind_all_slots(self):
        counter = MonotonicCounter()
        arr = DataflowArray(5, counter=counter)
        for i in range(5):
            arr.assign_next(i)
        assert counter.value == 5
        assert arr.counter is counter

    def test_readers_block_per_slot(self):
        arr = DataflowArray(3)
        got = []
        thread = spawn(lambda: got.append(arr.read(2)))
        arr.assign_next("a")
        arr.assign_next("b")
        thread.join(0.05)
        assert not got
        arr.assign_next("c")
        join_all([thread])
        assert got == ["c"]

    def test_overflow_rejected(self):
        arr = DataflowArray(1)
        arr.assign_next(1)
        with pytest.raises(IndexError):
            arr.assign_next(2)

    def test_bounds_checked(self):
        arr = DataflowArray(2)
        with pytest.raises(IndexError):
            arr.read(2)
        with pytest.raises(IndexError):
            arr.read(-1)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            DataflowArray(-1)
        assert len(DataflowArray(0)) == 0

    def test_multiple_writers_slot_handoff(self):
        arr = DataflowArray(40)

        def writer(i):
            arr.assign_next(i)

        multithreaded_for(writer, range(40))
        values = list(arr)
        assert sorted(values) == list(range(40))

    def test_krow_staging_idiom(self):
        """The §4.4 kRow usage: one producer stages rows, consumers read
        their iteration's row through the one counter."""
        n = 10
        staged = DataflowArray(n)
        sums = []

        def producer():
            for k in range(n):
                staged.assign_next([k] * 4)

        def consumer():
            total = 0
            for k in range(n):
                total += sum(staged.read(k))
            sums.append(total)

        multithreaded(producer, consumer, consumer)
        assert sums == [sum(4 * k for k in range(n))] * 2

    def test_sequential_equivalence(self):
        from repro.determinism import check_sequential_equivalence

        def program():
            arr = DataflowArray(8)
            out = []

            def producer():
                for i in range(8):
                    arr.assign_next(i * i)

            def consumer():
                out.append(list(arr))

            multithreaded(producer, consumer)
            return tuple(map(tuple, out))

        assert check_sequential_equivalence(program, runs=5).equivalent
