"""Tests for the RaggedBarrier and OrderedRegion patterns (§5.1, §5.2)."""

from __future__ import annotations

import threading

import pytest

from repro.core import CheckTimeout, MonotonicCounter
from repro.patterns import OrderedRegion, RaggedBarrier
from repro.structured import multithreaded_for
from tests.helpers import join_all, spawn


class TestRaggedBarrier:
    def test_participant_count_validated(self):
        with pytest.raises(ValueError):
            RaggedBarrier(0)

    def test_progress_starts_at_zero(self):
        rb = RaggedBarrier(3)
        assert [rb.progress(i) for i in range(3)] == [0, 0, 0]

    def test_advance_and_wait(self):
        rb = RaggedBarrier(2)
        woke = []
        thread = spawn(lambda: (rb.wait_for(0, 2), woke.append(True)))
        rb.advance(0)
        thread.join(0.05)
        assert not woke
        rb.advance(0)
        join_all([thread])
        assert woke == [True]

    def test_preload_for_boundary_participants(self):
        rb = RaggedBarrier(3)
        rb.preload(0, 100)
        rb.wait_for(0, 100)  # returns immediately for any level <= 100

    def test_pairwise_not_global(self):
        """Participant 2 can run ahead while participant 0 lags — the
        whole point of the ragged barrier."""
        rb = RaggedBarrier(3)
        rb.advance(1, 10)  # middle neighbour far ahead
        rb.wait_for(1, 5)  # neighbour check passes though p0 is at 0
        assert rb.progress(0) == 0

    def test_counter_factory_injection(self):
        created = []

        def factory(name):
            counter = MonotonicCounter(name=name)
            created.append(name)
            return counter

        RaggedBarrier(3, counter_factory=factory)
        assert created == ["ragged[0]", "ragged[1]", "ragged[2]"]

    def test_neighbour_chain_simulation(self):
        """Small end-to-end: 4 participants advancing in lockstep with
        only neighbour waits never deadlock and finish all steps."""
        n, steps = 4, 20
        rb = RaggedBarrier(n + 2)
        rb.preload(0, steps)
        rb.preload(n + 1, steps)

        def worker(index):
            p = index + 1
            for t in range(1, steps + 1):
                rb.wait_for(p - 1, t - 1)
                rb.wait_for(p + 1, t - 1)
                rb.advance(p)

        multithreaded_for(worker, range(n))
        assert all(rb.progress(p) == steps for p in range(1, n + 1))


class TestOrderedRegion:
    def test_turns_admitted_in_sequence(self):
        region = OrderedRegion()
        order = []

        def worker(i):
            with region.turn(i):
                order.append(i)

        multithreaded_for(worker, range(10))
        assert order == list(range(10))

    def test_mutual_exclusion(self):
        region = OrderedRegion()
        inside = [0]
        max_inside = [0]

        def worker(i):
            with region.turn(i):
                inside[0] += 1
                max_inside[0] = max(max_inside[0], inside[0])
                inside[0] -= 1

        multithreaded_for(worker, range(16))
        assert max_inside[0] == 1

    def test_negative_index_rejected(self):
        region = OrderedRegion()
        with pytest.raises(ValueError):
            with region.turn(-1):
                pass

    def test_exception_does_not_deadlock_later_turns(self):
        region = OrderedRegion()
        results = []

        def worker(i):
            try:
                with region.turn(i):
                    if i == 1:
                        raise RuntimeError("turn 1 fails")
                    results.append(i)
            except RuntimeError:
                results.append(-1)

        multithreaded_for(worker, range(4))
        assert sorted(results) == [-1, 0, 2, 3]
        assert region.completed == 4

    def test_timeout_propagates(self):
        region = OrderedRegion()
        with pytest.raises(CheckTimeout):
            with region.turn(5, timeout=0.01):
                pass

    def test_run_turn_returns_value(self):
        region = OrderedRegion()
        assert region.run_turn(0, lambda: "first") == "first"
        assert region.run_turn(1, lambda: "second") == "second"
        assert region.completed == 2

    def test_injected_counter_observused(self):
        counter = MonotonicCounter(name="order")
        region = OrderedRegion(counter=counter)
        with region.turn(0):
            pass
        assert counter.value == 1
        assert region.counter is counter

    def test_out_of_order_arrival_still_sequential(self):
        """Late threads arriving for early turns are fine; early threads
        arriving for late turns wait."""
        region = OrderedRegion()
        order = []
        barrier = threading.Barrier(3)

        def worker(i):
            barrier.wait(5)  # all arrive simultaneously
            with region.turn(i):
                order.append(i)

        threads = [spawn(worker, i) for i in (2, 0, 1)]
        join_all(threads)
        assert order == [0, 1, 2]


class TestRaggedWaitForAll:
    def test_satisfied_needs_return_immediately(self):
        rb = RaggedBarrier(3)
        rb.advance(0, 2)
        rb.advance(2, 2)
        rb.wait_for_all([(0, 2), (2, 1)])

    def test_blocks_until_every_neighbour_catches_up(self):
        rb = RaggedBarrier(3)
        woke = []
        thread = spawn(lambda: (rb.wait_for_all([(0, 1), (2, 1)]), woke.append(True)))
        rb.advance(0)
        thread.join(0.05)
        assert not woke, "wait_for_all returned with participant 2 behind"
        rb.advance(2)
        join_all([thread])
        assert woke == [True]

    def test_many_lagging_neighbours_with_staggered_advances(self):
        """The batched wait survives every neighbour being behind and
        advancing one at a time, in an order unrelated to the needs."""
        rb = RaggedBarrier(4)
        woke = []
        thread = spawn(
            lambda: (rb.wait_for_all([(0, 2), (1, 1), (2, 1), (3, 2)]), woke.append(True))
        )
        for i in (2, 0, 3, 1, 0, 3):
            rb.advance(i)
        join_all([thread])
        assert woke == [True]
        assert [rb.progress(i) for i in range(4)] == [2, 1, 1, 2]

    def test_timeout_budget_is_shared(self):
        rb = RaggedBarrier(2)
        rb.advance(0)
        with pytest.raises(CheckTimeout):
            rb.wait_for_all([(0, 1), (1, 1)], timeout=0.02)
