"""Tests for the counter-synchronized task-DAG runner."""

from __future__ import annotations

import pytest

from repro.determinism import check_sequential_equivalence
from repro.patterns import DependencyError, TaskGraph
from repro.patterns.taskgraph import CycleError
from repro.structured import MultithreadedBlockError


class TestConstruction:
    def test_add_and_len(self):
        graph = TaskGraph()
        graph.add("a", lambda: 1)
        graph.add("b", lambda a: a, deps=("a",))
        assert len(graph) == 2

    def test_duplicate_name_rejected(self):
        graph = TaskGraph()
        graph.add("a", lambda: 1)
        with pytest.raises(ValueError, match="already"):
            graph.add("a", lambda: 2)

    def test_unknown_dependency_rejected(self):
        graph = TaskGraph()
        with pytest.raises(ValueError, match="unknown"):
            graph.add("b", lambda x: x, deps=("ghost",))

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            TaskGraph().add("a", 42)

    def test_cycle_detected_with_witness(self):
        graph = TaskGraph()
        graph.add("a", lambda: 1)
        # Force a cycle behind the constructor guard.
        graph._tasks["a"] = (lambda a: a, ("b",))
        graph._tasks["b"] = (lambda b: b, ("a",))
        with pytest.raises(CycleError, match="->"):
            graph.run()


class TestExecution:
    def test_diamond(self):
        graph = TaskGraph()
        graph.add("src", lambda: 10)
        graph.add("left", lambda s: s + 1, deps=("src",))
        graph.add("right", lambda s: s * 2, deps=("src",))
        graph.add("join", lambda l, r: (l, r), deps=("left", "right"))
        results = graph.run()
        assert results == {"src": 10, "left": 11, "right": 20, "join": (11, 20)}

    def test_empty_graph(self):
        assert TaskGraph().run() == {}

    def test_independent_tasks(self):
        graph = TaskGraph()
        for i in range(6):
            graph.add(f"t{i}", lambda i=i: i * i)
        assert graph.run() == {f"t{i}": i * i for i in range(6)}

    def test_linear_chain_order(self):
        graph = TaskGraph()
        graph.add("n0", lambda: [0])
        for i in range(1, 8):
            graph.add(f"n{i}", lambda acc, i=i: acc + [i], deps=(f"n{i-1}",))
        assert graph.run()["n7"] == list(range(8))

    def test_fan_out_fan_in(self):
        graph = TaskGraph()
        graph.add("seed", lambda: 3)
        for i in range(5):
            graph.add(f"w{i}", lambda s, i=i: s * (i + 1), deps=("seed",))
        graph.add("total", lambda *xs: sum(xs), deps=tuple(f"w{i}" for i in range(5)))
        assert graph.run()["total"] == 3 * (1 + 2 + 3 + 4 + 5)

    def test_deterministic_across_runs(self):
        def build():
            graph = TaskGraph()
            graph.add("a", lambda: 1.0)
            graph.add("b", lambda a: a / 3, deps=("a",))
            graph.add("c", lambda a, b: a - b, deps=("a", "b"))
            return tuple(sorted(graph.run().items()))

        assert len({build() for _ in range(5)}) == 1

    def test_sequential_equivalence(self):
        def program():
            graph = TaskGraph()
            graph.add("x", lambda: 5)
            graph.add("y", lambda x: x + 2, deps=("x",))
            graph.add("z", lambda x, y: x * y, deps=("x", "y"))
            return tuple(sorted(graph.run().items()))

        assert check_sequential_equivalence(program, runs=5).equivalent


class TestFailurePropagation:
    def test_failing_task_fails_dependents_fast(self):
        graph = TaskGraph()
        graph.add("boom", lambda: 1 / 0)
        graph.add("victim", lambda b: b, deps=("boom",))
        graph.add("bystander", lambda: "fine")
        with pytest.raises(MultithreadedBlockError) as excinfo:
            graph.run(timeout=10)
        kinds = {type(e) for e in excinfo.value.exceptions}
        assert ZeroDivisionError in kinds
        assert DependencyError in kinds

    def test_poison_names_the_original_failure(self):
        graph = TaskGraph()
        graph.add("root_failure", lambda: (_ for _ in ()).throw(ValueError("x")))
        graph.add("mid", lambda r: r, deps=("root_failure",))
        graph.add("leaf", lambda m: m, deps=("mid",))
        with pytest.raises(MultithreadedBlockError) as excinfo:
            graph.run(timeout=10)
        dependency_errors = [
            e for e in excinfo.value.exceptions if isinstance(e, DependencyError)
        ]
        assert dependency_errors
        assert all("root_failure" in str(e) for e in dependency_errors)

    def test_unaffected_branch_still_completes(self):
        graph = TaskGraph()
        graph.add("boom", lambda: 1 / 0)
        outputs = []
        graph.add("independent", lambda: outputs.append("ran"))
        with pytest.raises(MultithreadedBlockError):
            graph.run(timeout=10)
        assert outputs == ["ran"]
