"""Dedicated tests for the 2-D wavefront pattern."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.patterns import wavefront_run


class TestValidation:
    def test_grid_bounds(self):
        with pytest.raises(ValueError):
            wavefront_run(0, 5, lambda i, j: None, num_threads=1)
        with pytest.raises(ValueError):
            wavefront_run(5, 0, lambda i, j: None, num_threads=1)

    def test_thread_and_block_bounds(self):
        with pytest.raises(ValueError):
            wavefront_run(3, 3, lambda i, j: None, num_threads=0)
        with pytest.raises(ValueError):
            wavefront_run(3, 3, lambda i, j: None, num_threads=1, col_block=0)


class TestCoverage:
    @pytest.mark.parametrize("rows,cols", [(1, 1), (1, 8), (8, 1), (5, 7)])
    @pytest.mark.parametrize("num_threads", [1, 3, 16])
    def test_every_cell_visited_exactly_once(self, rows, cols, num_threads):
        visits = np.zeros((rows, cols), dtype=int)
        lock = threading.Lock()

        def cell(i, j):
            with lock:
                visits[i, j] += 1

        wavefront_run(rows, cols, cell, num_threads=num_threads, col_block=2)
        assert (visits == 1).all()

    def test_col_block_larger_than_grid(self):
        visits = np.zeros((4, 4), dtype=int)
        lock = threading.Lock()

        def cell(i, j):
            with lock:
                visits[i, j] += 1

        wavefront_run(4, 4, cell, num_threads=2, col_block=100)
        assert (visits == 1).all()


class TestDependencyOrder:
    @pytest.mark.parametrize("col_block", [1, 3, 8])
    def test_dependencies_computed_first(self, col_block):
        """Record a global completion stamp per cell; every cell's up and
        left neighbours must carry earlier stamps."""
        rows, cols = 10, 12
        stamp = np.full((rows, cols), -1, dtype=int)
        tick = [0]
        lock = threading.Lock()

        def cell(i, j):
            if i > 0:
                assert stamp[i - 1, j] >= 0, f"({i},{j}) ran before ({i-1},{j})"
            if j > 0:
                assert stamp[i, j - 1] >= 0, f"({i},{j}) ran before ({i},{j-1})"
            with lock:
                stamp[i, j] = tick[0]
                tick[0] += 1

        wavefront_run(rows, cols, cell, num_threads=4, col_block=col_block)
        assert (stamp >= 0).all()

    def test_diagonal_parallelism_actually_happens(self):
        """With per-row threads and col_block=1, at least two threads are
        inside cell_fn simultaneously at some point (wavefront overlap),
        unlike a fully serialized schedule."""
        import time

        rows, cols = 4, 16
        inside = [0]
        peak = [0]
        lock = threading.Lock()

        def cell(i, j):
            with lock:
                inside[0] += 1
                peak[0] = max(peak[0], inside[0])
            time.sleep(0.001)
            with lock:
                inside[0] -= 1

        wavefront_run(rows, cols, cell, num_threads=rows, col_block=1)
        assert peak[0] >= 2, "no overlap observed: wavefront degenerated to serial"

    def test_dp_recurrence_end_to_end(self):
        """Compute a cumulative-sum DP over the wavefront; compare against
        the closed-form numpy result."""
        rows, cols = 9, 11
        values = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
        table = np.zeros((rows, cols), dtype=np.int64)

        def cell(i, j):
            up = table[i - 1, j] if i else 0
            left = table[i, j - 1] if j else 0
            diag = table[i - 1, j - 1] if i and j else 0
            table[i, j] = values[i, j] + up + left - diag

        wavefront_run(rows, cols, cell, num_threads=3, col_block=4)
        expected = values.cumsum(axis=0).cumsum(axis=1)
        assert np.array_equal(table, expected)


class TestSyncTile:
    @pytest.mark.parametrize("sync_tile", [1, 2, 3, 100])
    @pytest.mark.parametrize("num_threads", [1, 3, 5])
    def test_every_cell_visited_exactly_once(self, num_threads, sync_tile):
        rows, cols = 7, 13
        visits = np.zeros((rows, cols), dtype=int)
        lock = threading.Lock()

        def cell(i, j):
            with lock:
                visits[i, j] += 1

        wavefront_run(
            rows, cols, cell, num_threads=num_threads, col_block=2, sync_tile=sync_tile
        )
        assert (visits == 1).all()

    @pytest.mark.parametrize("sync_tile", [2, 4])
    def test_dependencies_still_respected(self, sync_tile):
        """Tiled synchronization coarsens the schedule but must never
        reorder it: up/left neighbours still complete first."""
        rows, cols = 8, 12
        done = np.zeros((rows, cols), dtype=bool)

        def cell(i, j):
            if i > 0:
                assert done[i - 1, j], f"({i},{j}) ran before ({i-1},{j})"
            if j > 0:
                assert done[i, j - 1], f"({i},{j}) ran before ({i},{j-1})"
            done[i, j] = True

        wavefront_run(rows, cols, cell, num_threads=4, col_block=1, sync_tile=sync_tile)
        assert done.all()

    def test_tiling_reduces_counter_traffic(self):
        """sync_tile=k must cut checks and increments by ~k: that is the
        batching the monotone levels make sound."""
        from repro.core import MonotonicCounter

        counts = {}
        for sync_tile in (1, 4):
            counters = []

            def factory(name, counters=counters):
                counter = MonotonicCounter(name=name, stats=True)
                counters.append(counter)
                return counter

            wavefront_run(
                8,
                16,
                lambda i, j: None,
                num_threads=4,
                col_block=1,
                sync_tile=sync_tile,
                counter_factory=factory,
            )
            counts[sync_tile] = sum(c.stats.increments for c in counters)
        assert counts[4] <= counts[1] / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            wavefront_run(3, 3, lambda i, j: None, num_threads=1, sync_tile=0)
