"""Tests for the simulated synchronization primitives."""

from __future__ import annotations

import pytest

from repro.simthread import Compute, SimDeadlockError, Simulation


class TestSimCounter:
    def test_check_passes_at_level(self):
        sim = Simulation()
        c = sim.counter("c")
        log = []

        def producer():
            yield Compute(3.0)
            yield c.increment(2)

        def consumer():
            yield c.check(2)
            log.append(sim.now)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert log == [3.0]
        assert c.value == 2

    def test_wait_time_accounted(self):
        sim = Simulation()
        c = sim.counter()

        def producer():
            yield Compute(4.0)
            yield c.increment(1)

        def consumer():
            yield c.check(1)
            yield Compute(1.0)

        sim.spawn(producer(), name="p")
        sim.spawn(consumer(), name="q")
        result = sim.run()
        assert result.tasks["q"].wait_time == 4.0
        assert result.makespan == 5.0

    def test_multiple_levels_one_counter(self):
        sim = Simulation()
        c = sim.counter()
        wake_times = {}

        def producer():
            for _ in range(3):
                yield Compute(1.0)
                yield c.increment(1)

        def consumer(level):
            yield c.check(level)
            wake_times[level] = sim.now

        sim.spawn(producer())
        for level in (1, 2, 3):
            sim.spawn(consumer(level))
        sim.run()
        assert wake_times == {1: 1.0, 2: 2.0, 3: 3.0}
        assert c.max_live_levels == 3
        assert c.max_live_waiters == 3

    def test_check_level_zero_immediate(self):
        sim = Simulation()
        c = sim.counter()

        def task():
            yield c.check(0)

        sim.spawn(task())
        sim.run()  # must not deadlock

    def test_validation(self):
        sim = Simulation()
        c = sim.counter()
        with pytest.raises(ValueError):
            c.check(-1)
        with pytest.raises(ValueError):
            c.increment(-1)


class TestSimEvent:
    def test_set_releases_waiters(self):
        sim = Simulation()
        e = sim.event()
        woke = []

        def setter():
            yield Compute(2.0)
            yield e.set()

        def waiter():
            yield e.check()
            woke.append(sim.now)

        sim.spawn(setter())
        sim.spawn(waiter())
        sim.spawn(waiter())
        sim.run()
        assert woke == [2.0, 2.0]
        assert e.is_set

    def test_check_after_set_immediate(self):
        sim = Simulation()
        e = sim.event()

        def task():
            yield e.set()
            yield e.check()

        sim.spawn(task())
        sim.run()


class TestSimBarrier:
    def test_barrier_synchronizes_to_slowest(self):
        sim = Simulation()
        b = sim.barrier(3)
        after = {}

        def worker(name, cost):
            yield Compute(cost)
            yield b.pass_()
            after[name] = sim.now

        sim.spawn(worker("a", 1.0))
        sim.spawn(worker("b", 5.0))
        sim.spawn(worker("c", 3.0))
        sim.run()
        assert after == {"a": 5.0, "b": 5.0, "c": 5.0}
        assert b.episodes == 1

    def test_barrier_cycles(self):
        sim = Simulation()
        b = sim.barrier(2)

        def worker(costs):
            for cost in costs:
                yield Compute(cost)
                yield b.pass_()

        sim.spawn(worker([1.0, 1.0]))
        sim.spawn(worker([2.0, 2.0]))
        result = sim.run()
        assert result.makespan == 4.0  # lockstep with the slower task
        assert b.episodes == 2

    def test_parties_validation(self):
        with pytest.raises(ValueError):
            Simulation().barrier(0)


class TestSimLock:
    def test_mutual_exclusion_in_virtual_time(self):
        sim = Simulation()
        lock = sim.lock()
        sections = []

        def worker(i):
            yield lock.acquire()
            start = sim.now
            yield Compute(2.0)
            sections.append((i, start, sim.now))
            yield lock.release()

        for i in range(3):
            sim.spawn(worker(i))
        sim.run()
        intervals = sorted((s, e) for _, s, e in sections)
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2, "critical sections overlapped"

    def test_release_by_non_owner_fails(self):
        sim = Simulation()
        lock = sim.lock()

        def bad():
            yield lock.release()

        sim.spawn(bad())
        with pytest.raises(Exception, match="does not own"):
            sim.run()


class TestSimSemaphore:
    def test_bounded_concurrency(self):
        sim = Simulation()
        sem = sim.semaphore(2)
        concurrent = []

        def worker():
            yield sem.acquire()
            concurrent.append(sim.now)
            yield Compute(3.0)
            yield sem.release()

        for _ in range(4):
            sim.spawn(worker())
        result = sim.run()
        assert result.makespan == 6.0  # 4 jobs, width 2, 3.0 each
        assert concurrent.count(0.0) == 2

    def test_multi_unit_acquire(self):
        sim = Simulation()
        sem = sim.semaphore(0)
        woke = []

        def producer():
            for _ in range(3):
                yield Compute(1.0)
                yield sem.release(1)

        def consumer():
            yield sem.acquire(3)
            woke.append(sim.now)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert woke == [3.0]

    def test_validation(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            sim.semaphore(-1)
        sem = sim.semaphore(1)
        with pytest.raises(ValueError):
            sem.acquire(0)


class TestSimChannel:
    def test_put_get_pipeline(self):
        sim = Simulation()
        ch = sim.channel(capacity=2)
        received = []

        def producer():
            for i in range(4):
                yield Compute(1.0)
                yield ch.put(i)

        def consumer():
            for _ in range(4):
                item = yield ch.get()
                received.append(item)
                yield Compute(2.0)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert received == [0, 1, 2, 3]

    def test_bounded_capacity_backpressure(self):
        sim = Simulation()
        ch = sim.channel(capacity=1)

        def producer():
            for i in range(3):
                yield ch.put(i)  # zero-cost puts: must block on capacity

        def consumer():
            for _ in range(3):
                yield Compute(5.0)
                yield ch.get()

        sim.spawn(producer(), name="p")
        sim.spawn(consumer(), name="c")
        result = sim.run()
        assert result.tasks["p"].wait_time > 0.0

    def test_get_blocks_until_put(self):
        sim = Simulation()
        ch = sim.channel(capacity=1)
        got = []

        def producer():
            yield Compute(7.0)
            yield ch.put("x")

        def consumer():
            item = yield ch.get()
            got.append((item, sim.now))

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert got == [("x", 7.0)]

    def test_channel_deadlock_detected(self):
        sim = Simulation()
        ch = sim.channel(capacity=1)

        def consumer():
            yield ch.get()

        sim.spawn(consumer())
        with pytest.raises(SimDeadlockError):
            sim.run()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Simulation().channel(0)
