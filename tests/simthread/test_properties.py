"""Property-based tests of the virtual-time scheduler's invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simthread import Compute, Simulation

compute_lists = st.lists(
    st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False), min_size=1, max_size=5),
    min_size=1,
    max_size=5,
)


@settings(deadline=None, max_examples=60)
@given(compute_lists)
def test_unbounded_pool_makespan_is_max_task_time(workloads):
    """Independent compute-only tasks on one processor each: the makespan
    is exactly the longest task."""
    sim = Simulation()

    def task(costs):
        for cost in costs:
            yield Compute(cost)

    for costs in workloads:
        sim.spawn(task(costs))
    result = sim.run()
    assert result.makespan == max(sum(costs) for costs in workloads)
    assert result.total_wait == 0.0


@settings(deadline=None, max_examples=60)
@given(compute_lists)
def test_single_processor_makespan_is_total_work(workloads):
    """With one processor, compute serializes: makespan == total work."""
    sim = Simulation(processors=1)

    def task(costs):
        for cost in costs:
            yield Compute(cost)

    for costs in workloads:
        sim.spawn(task(costs))
    result = sim.run()
    total = sum(sum(costs) for costs in workloads)
    assert abs(result.makespan - total) < 1e-9
    assert abs(result.total_compute - total) < 1e-9


@settings(deadline=None, max_examples=40)
@given(compute_lists, st.integers(min_value=1, max_value=4))
def test_bounded_pool_brackets(workloads, processors):
    """P processors: makespan between total/P (perfect packing) and
    total (full serialization), and at least the longest task."""
    sim = Simulation(processors=processors)

    def task(costs):
        for cost in costs:
            yield Compute(cost)

    for costs in workloads:
        sim.spawn(task(costs))
    result = sim.run()
    total = sum(sum(costs) for costs in workloads)
    longest = max(sum(costs) for costs in workloads)
    assert result.makespan <= total + 1e-9
    assert result.makespan >= max(longest, total / processors) - 1e-9


@settings(deadline=None, max_examples=40)
@given(
    st.lists(st.floats(min_value=0.1, max_value=5.0, allow_nan=False), min_size=2, max_size=6)
)
def test_counter_chain_serializes_exactly(costs):
    """A counter-ordered chain of tasks has makespan == sum of their
    compute: the §5.2 'no concurrency' extreme, exact in virtual time."""
    sim = Simulation()
    counter = sim.counter()

    def worker(i, cost):
        yield counter.check(i)
        yield Compute(cost)
        yield counter.increment(1)

    for i, cost in enumerate(costs):
        sim.spawn(worker(i, cost))
    result = sim.run()
    assert abs(result.makespan - sum(costs)) < 1e-9


@settings(deadline=None, max_examples=40)
@given(
    st.lists(st.floats(min_value=0.1, max_value=5.0, allow_nan=False), min_size=2, max_size=6),
    st.integers(min_value=0, max_value=999_999),
)
def test_barrier_lockstep_formula(costs, seed):
    """N tasks, each computing its cost then passing an N-way barrier,
    repeated twice: makespan == 2 * max(costs) (barrier = per-round max).
    The seed exercises the scheduler's tie-breaking paths."""
    sim = Simulation(policy="random", seed=seed)
    barrier = sim.barrier(len(costs))

    def worker(cost):
        for _ in range(2):
            yield Compute(cost)
            yield barrier.pass_()

    for cost in costs:
        sim.spawn(worker(cost))
    result = sim.run()
    assert abs(result.makespan - 2 * max(costs)) < 1e-9


@settings(deadline=None, max_examples=30)
@given(compute_lists, st.integers(min_value=0, max_value=10_000))
def test_same_seed_same_trace(workloads, seed):
    """Determinism: identical programs + seeds -> identical results."""

    def build():
        sim = Simulation(policy="random", seed=seed)
        lock = sim.lock()

        def task(costs):
            for cost in costs:
                yield Compute(cost)
                yield lock.acquire()
                yield lock.release()

        for costs in workloads:
            sim.spawn(task(costs))
        result = sim.run()
        return (result.makespan, result.total_wait, tuple(sorted(result.tasks)))

    assert build() == build()
