"""Tests for the virtual-time scheduler: clock, accounting, determinism."""

from __future__ import annotations

import pytest

from repro.simthread import (
    Compute,
    Delay,
    SimDeadlockError,
    SimTaskError,
    Simulation,
)


class TestBasicScheduling:
    def test_empty_simulation(self):
        result = Simulation().run()
        assert result.makespan == 0.0
        assert result.tasks == {}

    def test_single_task_compute_time(self):
        sim = Simulation()

        def work():
            yield Compute(3.5)
            yield Compute(1.5)

        sim.spawn(work(), name="w")
        result = sim.run()
        assert result.makespan == 5.0
        assert result.tasks["w"].compute_time == 5.0
        assert result.tasks["w"].wait_time == 0.0

    def test_tasks_run_in_parallel_by_default(self):
        sim = Simulation()

        def work():
            yield Compute(10.0)

        sim.spawn_all([work() for _ in range(4)])
        result = sim.run()
        assert result.makespan == 10.0  # one processor per task
        assert result.total_compute == 40.0
        assert result.speedup == 4.0

    def test_task_return_values_collected(self):
        sim = Simulation()

        def work(v):
            yield Compute(1.0)
            return v * 2

        sim.spawn(work(21), name="a")
        sim.spawn(work(4), name="b")
        result = sim.run()
        assert result.returns == {"a": 42, "b": 8}

    def test_delay_does_not_count_as_compute(self):
        sim = Simulation()

        def work():
            yield Delay(5.0)
            yield Compute(1.0)

        sim.spawn(work(), name="w")
        result = sim.run()
        assert result.makespan == 6.0
        assert result.tasks["w"].compute_time == 1.0
        assert result.tasks["w"].delay_time == 5.0

    def test_spawn_requires_generator(self):
        sim = Simulation()

        def not_a_generator():
            return 5

        with pytest.raises(TypeError, match="generator"):
            sim.spawn(not_a_generator)

    def test_run_only_once(self):
        sim = Simulation()
        sim.run()
        with pytest.raises(RuntimeError, match="once"):
            sim.run()

    def test_dynamic_spawn_from_running_task(self):
        sim = Simulation()
        log = []

        def child():
            yield Compute(2.0)
            log.append(("child", sim.now))

        def parent():
            yield Compute(1.0)
            sim.spawn(child(), name="child")
            yield Compute(0.5)

        sim.spawn(parent(), name="parent")
        result = sim.run()
        assert result.makespan == 3.0  # child starts at t=1, runs 2
        assert log == [("child", 3.0)]

    def test_yield_from_composition(self):
        sim = Simulation()

        def subroutine(d):
            yield Compute(d)
            return d * 10

        def work():
            a = yield from subroutine(1.0)
            b = yield from subroutine(2.0)
            return a + b

        sim.spawn(work(), name="w")
        assert sim.run().returns["w"] == 30.0

    def test_invalid_yield_reported_as_task_error(self):
        sim = Simulation()

        def bad():
            yield "not a syscall"

        sim.spawn(bad())
        with pytest.raises(SimTaskError):
            sim.run()

    def test_task_exception_aggregated(self):
        sim = Simulation()

        def boom():
            yield Compute(1.0)
            raise ValueError("boom")

        def fine():
            yield Compute(2.0)

        sim.spawn(boom())
        sim.spawn(fine())
        with pytest.raises(SimTaskError) as excinfo:
            sim.run()
        assert {type(e) for e in excinfo.value.exceptions} == {ValueError}

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1.0)
        with pytest.raises(ValueError):
            Delay(-0.1)


class TestDeadlockDetection:
    def test_counter_deadlock(self):
        sim = Simulation()
        c = sim.counter()

        def stuck():
            yield c.check(1)

        sim.spawn(stuck(), name="stuck")
        with pytest.raises(SimDeadlockError, match="stuck"):
            sim.run()

    def test_barrier_deadlock_missing_party(self):
        sim = Simulation()
        b = sim.barrier(2)

        def lonely():
            yield b.pass_()

        sim.spawn(lonely())
        with pytest.raises(SimDeadlockError):
            sim.run()

    def test_lock_deadlock_cycle(self):
        sim = Simulation()
        l1, l2 = sim.lock("l1"), sim.lock("l2")

        def a():
            yield l1.acquire()
            yield Compute(1.0)
            yield l2.acquire()

        def b():
            yield l2.acquire()
            yield Compute(1.0)
            yield l1.acquire()

        sim.spawn(a())
        sim.spawn(b())
        with pytest.raises(SimDeadlockError):
            sim.run()


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        def build():
            sim = Simulation(policy="random", seed=7)
            lock = sim.lock()
            order = []

            def worker(i):
                yield Compute(1.0)
                yield lock.acquire()
                order.append(i)
                yield lock.release()

            for i in range(6):
                sim.spawn(worker(i))
            sim.run()
            return tuple(order)

        assert build() == build()

    def test_different_seeds_can_reorder_contended_locks(self):
        def build(seed):
            sim = Simulation(policy="random", seed=seed)
            lock = sim.lock()
            order = []

            def worker(i):
                yield Compute(1.0)  # all contend at t=1
                yield lock.acquire()
                order.append(i)
                yield lock.release()

            for i in range(8):
                sim.spawn(worker(i))
            sim.run()
            return tuple(order)

        orders = {build(seed) for seed in range(10)}
        assert len(orders) > 1, "random policy never varied the grant order"


class TestBoundedProcessors:
    def test_processor_pool_serializes_compute(self):
        sim = Simulation(processors=1)

        def work():
            yield Compute(5.0)

        sim.spawn_all([work() for _ in range(3)])
        result = sim.run()
        assert result.makespan == 15.0

    def test_pool_of_two(self):
        sim = Simulation(processors=2)

        def work():
            yield Compute(4.0)

        sim.spawn_all([work() for _ in range(4)])
        result = sim.run()
        assert result.makespan == 8.0

    def test_queueing_counts_as_wait(self):
        sim = Simulation(processors=1)

        def work():
            yield Compute(2.0)

        sim.spawn(work(), name="first")
        sim.spawn(work(), name="second")
        result = sim.run()
        assert result.tasks["second"].wait_time == 2.0

    def test_processor_validation(self):
        with pytest.raises(ValueError):
            Simulation(processors=0)
        with pytest.raises(ValueError):
            Simulation(policy="frob")
