"""Tests for simulator execution tracing and the Gantt renderer."""

from __future__ import annotations

from repro.simthread import Compute, Delay, Simulation, render_gantt


def two_task_sim() -> Simulation:
    sim = Simulation(trace=True)
    c = sim.counter("c")

    def producer():
        yield Compute(2.0)
        yield c.increment(1)

    def consumer():
        yield c.check(1)
        yield Compute(1.0)

    sim.spawn(producer(), name="p")
    sim.spawn(consumer(), name="q")
    return sim


class TestTraceRecorder:
    def test_tracing_off_by_default(self):
        assert Simulation().trace is None

    def test_events_recorded_in_time_order(self):
        sim = two_task_sim()
        sim.run()
        times = [event.time for event in sim.trace.events]
        assert times == sorted(times)
        assert len(sim.trace) == 4  # Compute, Increment, Check, Compute

    def test_event_contents(self):
        sim = two_task_sim()
        sim.run()
        kinds = [(e.task, e.syscall.split("(")[0]) for e in sim.trace.events]
        assert ("p", "Compute") in kinds
        assert ("p", "Increment") in kinds
        assert ("q", "Check") in kinds

    def test_busy_segments(self):
        sim = two_task_sim()
        result = sim.run()
        segments = sim.trace.segments()
        by_task = {}
        for segment in segments:
            by_task.setdefault(segment.task, []).append((segment.start, segment.end))
        assert by_task["p"] == [(0.0, 2.0)]
        assert by_task["q"] == [(2.0, 3.0)]  # waited 2.0 on the counter
        assert result.makespan == 3.0

    def test_delay_segments_marked(self):
        sim = Simulation(trace=True)

        def task():
            yield Delay(1.0)
            yield Compute(1.0)

        sim.spawn(task(), name="t")
        sim.run()
        whats = [segment.what for segment in sim.trace.segments()]
        assert whats == ["delay", "compute"]

    def test_tracing_does_not_change_results(self):
        def build(trace):
            sim = Simulation(trace=trace)
            b = sim.barrier(2)

            def w(costs):
                for cost in costs:
                    yield Compute(cost)
                    yield b.pass_()

            sim.spawn(w([1.0, 3.0]))
            sim.spawn(w([2.0, 1.0]))
            return sim.run()

        traced, plain = build(True), build(False)
        assert traced.makespan == plain.makespan
        assert traced.total_wait == plain.total_wait


class TestGanttRenderer:
    def test_empty_trace(self):
        from repro.simthread import TraceRecorder

        assert "no busy segments" in render_gantt(TraceRecorder())

    def test_rows_and_legend(self):
        sim = two_task_sim()
        result = sim.run()
        chart = render_gantt(sim.trace, width=30, makespan=result.makespan)
        lines = chart.splitlines()
        assert len(lines) == 3  # two task rows + legend
        assert lines[0].startswith("p |")
        assert lines[1].startswith("q |")
        assert "virtual time" in lines[2]

    def test_wait_appears_as_gap(self):
        sim = two_task_sim()
        result = sim.run()
        chart = render_gantt(sim.trace, width=30, makespan=result.makespan)
        q_row = chart.splitlines()[1]
        body = q_row.split("|")[1]
        # q waits 2/3 of the makespan, then computes: row starts blank.
        assert body[:10].strip() == ""
        assert "█" in body

    def test_width_respected(self):
        sim = two_task_sim()
        sim.run()
        chart = render_gantt(sim.trace, width=50)
        for line in chart.splitlines()[:-1]:
            body = line.split("|")[1]
            assert len(body) == 50
