"""Tests for the multithreaded block and for-loop constructs (§3)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.structured import (
    ExecutionMode,
    MultithreadedBlockError,
    block_range,
    current_mode,
    execution_mode,
    multithreaded,
    multithreaded_for,
    sequential_execution,
)


class TestMultithreadedBlock:
    def test_returns_results_in_statement_order(self):
        assert multithreaded(lambda: "a", lambda: "b", lambda: "c") == ["a", "b", "c"]

    def test_empty_block(self):
        assert multithreaded() == []

    def test_statements_actually_run_as_threads(self):
        main = threading.get_ident()
        rendezvous = threading.Barrier(2)  # forces both threads alive at once

        def ident():
            rendezvous.wait(5)
            return threading.get_ident()

        idents = multithreaded(ident, ident)
        assert all(i != main for i in idents)
        assert idents[0] != idents[1]

    def test_join_boundary(self):
        """Execution does not continue past the block until all statements
        have terminated."""
        finished = []

        def slow():
            time.sleep(0.05)
            finished.append("slow")

        def fast():
            finished.append("fast")

        multithreaded(slow, fast)
        assert sorted(finished) == ["fast", "slow"]

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError, match="callable"):
            multithreaded(lambda: 1, "not callable")

    def test_exceptions_aggregated(self):
        def ok():
            return 1

        def boom():
            raise ValueError("boom")

        def bang():
            raise KeyError("bang")

        with pytest.raises(MultithreadedBlockError) as excinfo:
            multithreaded(ok, boom, bang)
        types = {type(e) for e in excinfo.value.exceptions}
        assert types == {ValueError, KeyError}

    def test_all_statements_run_despite_failure(self):
        ran = []

        def fail():
            ran.append("fail")
            raise RuntimeError

        def ok():
            ran.append("ok")

        with pytest.raises(MultithreadedBlockError):
            multithreaded(fail, ok)
        assert sorted(ran) == ["fail", "ok"]

    def test_nesting(self):
        def outer():
            return multithreaded(lambda: 1, lambda: 2)

        assert multithreaded(outer, outer) == [[1, 2], [1, 2]]


class TestMultithreadedFor:
    def test_iteration_results_in_order(self):
        assert multithreaded_for(lambda i: i * i, range(6)) == [0, 1, 4, 9, 16, 25]

    def test_empty_range(self):
        assert multithreaded_for(lambda i: i, range(0)) == []

    def test_control_variable_is_per_thread_copy(self):
        """The §3 requirement: each thread gets its own i (no late-binding)."""
        seen = multithreaded_for(lambda i: i, range(20))
        assert seen == list(range(20))

    def test_arbitrary_iterables(self):
        assert multithreaded_for(str.upper, ["a", "b"]) == ["A", "B"]

    def test_step_ranges(self):
        assert multithreaded_for(lambda i: i, range(1, 10, 3)) == [1, 4, 7]

    def test_body_must_be_callable(self):
        with pytest.raises(TypeError, match="callable"):
            multithreaded_for("nope", range(2))

    def test_exception_in_iteration(self):
        def body(i):
            if i == 2:
                raise ValueError(f"iteration {i}")
            return i

        with pytest.raises(MultithreadedBlockError):
            multithreaded_for(body, range(4))


class TestBlockRange:
    def test_partitions_cover_exactly(self):
        for total in (0, 1, 7, 10, 100):
            for parts in (1, 2, 3, 7):
                covered = []
                for part in range(parts):
                    covered.extend(block_range(part, total, parts))
                assert covered == list(range(total)), (total, parts)

    def test_sizes_differ_by_at_most_one(self):
        sizes = [len(block_range(t, 10, 3)) for t in range(3)]
        assert max(sizes) - min(sizes) <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            block_range(0, 10, 0)
        with pytest.raises(ValueError):
            block_range(3, 10, 3)
        with pytest.raises(ValueError):
            block_range(-1, 10, 3)
        with pytest.raises(ValueError):
            block_range(0, -1, 3)


class TestExecutionModes:
    def test_default_mode_is_threaded(self):
        assert current_mode() is ExecutionMode.THREADED

    def test_sequential_mode_runs_on_calling_thread(self):
        main = threading.get_ident()
        with sequential_execution():
            idents = multithreaded(threading.get_ident, threading.get_ident)
        assert idents == [main, main]

    def test_sequential_mode_restored_on_exit(self):
        with sequential_execution():
            assert current_mode() is ExecutionMode.SEQUENTIAL
        assert current_mode() is ExecutionMode.THREADED

    def test_sequential_runs_in_textual_order(self):
        order = []
        with sequential_execution():
            multithreaded(lambda: order.append(1), lambda: order.append(2))
        assert order == [1, 2]

    def test_sequential_for_loop_in_index_order(self):
        order = []
        with sequential_execution():
            multithreaded_for(order.append, range(5))
        assert order == [0, 1, 2, 3, 4]

    def test_mode_propagates_into_nested_constructs(self):
        """A nested multithreaded block inside a sequential outer block
        also runs sequentially (contextvar propagation)."""
        main = threading.get_ident()

        def outer():
            return multithreaded(threading.get_ident)

        with sequential_execution():
            assert multithreaded(outer) == [[main]]

    def test_explicit_mode_overrides_ambient(self):
        main = threading.get_ident()
        with sequential_execution():
            idents = multithreaded(
                threading.get_ident, mode=ExecutionMode.THREADED
            )
        assert idents[0] != main

    def test_execution_mode_type_checked(self):
        with pytest.raises(TypeError):
            with execution_mode("sequential"):
                pass

    def test_sequential_failure_uses_same_error_type(self):
        with sequential_execution():
            with pytest.raises(MultithreadedBlockError):
                multithreaded(lambda: 1 / 0)
