"""Tests for ThreadScope (imperative structured spawning)."""

from __future__ import annotations

import threading

import pytest

from repro.structured import (
    MultithreadedBlockError,
    ThreadScope,
    sequential_execution,
)


class TestThreadScope:
    def test_spawn_and_result(self):
        with ThreadScope() as scope:
            handle = scope.spawn(lambda: 21 * 2)
        assert handle.result() == 42

    def test_spawn_with_args_and_kwargs(self):
        with ThreadScope() as scope:
            handle = scope.spawn(divmod, 17, 5)
        assert handle.result() == (3, 2)

    def test_scope_joins_all_at_exit(self):
        done = []

        def work(i):
            done.append(i)

        with ThreadScope() as scope:
            for i in range(8):
                scope.spawn(work, i)
        assert sorted(done) == list(range(8))

    def test_result_before_completion_is_an_error(self):
        gate = threading.Event()
        with ThreadScope() as scope:
            handle = scope.spawn(lambda: gate.wait(5) and 1)
            with pytest.raises(RuntimeError, match="scope"):
                handle.result()  # the statement is still blocked on the gate
            gate.set()
        assert handle.result() == 1

    def test_spawn_after_exit_rejected(self):
        with ThreadScope() as scope:
            pass
        with pytest.raises(RuntimeError, match="spawn"):
            scope.spawn(lambda: 1)

    def test_spawn_outside_with_rejected(self):
        scope = ThreadScope()
        with pytest.raises(RuntimeError, match="spawn"):
            scope.spawn(lambda: 1)

    def test_non_callable_rejected(self):
        with ThreadScope() as scope:
            with pytest.raises(TypeError):
                scope.spawn("nope")

    def test_exceptions_aggregate_at_exit(self):
        with pytest.raises(MultithreadedBlockError) as excinfo:
            with ThreadScope() as scope:
                scope.spawn(lambda: 1 / 0)
                scope.spawn(lambda: int("x"))
        types = {type(e) for e in excinfo.value.exceptions}
        assert types == {ZeroDivisionError, ValueError}

    def test_failed_handle_reraises_its_exception(self):
        with pytest.raises(MultithreadedBlockError):
            with ThreadScope() as scope:
                handle = scope.spawn(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            handle.result()

    def test_body_exception_takes_precedence(self):
        """An exception raised in the with-body propagates (after joining)
        rather than being masked by statement failures."""
        with pytest.raises(KeyError):
            with ThreadScope() as scope:
                scope.spawn(lambda: 1 / 0)
                raise KeyError("body")

    def test_not_reentrant(self):
        scope = ThreadScope()
        with scope:
            with pytest.raises(RuntimeError, match="reentrant"):
                with scope:
                    pass

    def test_sequential_mode_runs_inline(self):
        main = threading.get_ident()
        with sequential_execution():
            with ThreadScope() as scope:
                handle = scope.spawn(threading.get_ident)
                # In sequential mode the spawn has already completed.
                order_probe = handle
        assert order_probe.result() == main

    def test_sequential_mode_failure_aggregates(self):
        with sequential_execution():
            with pytest.raises(MultithreadedBlockError):
                with ThreadScope() as scope:
                    scope.spawn(lambda: 1 / 0)

    def test_repr_states(self):
        scope = ThreadScope(name="demo")
        assert "new" in repr(scope)
        with scope:
            assert "open" in repr(scope)
        assert "closed" in repr(scope)
