"""Tests for CyclicBarrier (and its counter-built twin)."""

from __future__ import annotations

import threading

import pytest

from repro.sync import BrokenBarrierError, CounterBarrier, CyclicBarrier, SyncTimeout
from tests.helpers import join_all, spawn


@pytest.fixture(params=["cyclic", "counter"])
def barrier_factory(request):
    if request.param == "cyclic":
        return CyclicBarrier
    return CounterBarrier


class TestBarrierCommon:
    def test_parties_validated(self, barrier_factory):
        with pytest.raises(ValueError):
            barrier_factory(0)
        with pytest.raises(ValueError):
            barrier_factory(-3)
        with pytest.raises(ValueError):
            barrier_factory(True)

    def test_single_party_barrier_never_blocks(self, barrier_factory):
        b = barrier_factory(1)
        for _ in range(5):
            b.pass_()

    def test_all_parties_required(self, barrier_factory):
        b = barrier_factory(3)
        arrived = []
        lock = threading.Lock()

        def party(i):
            b.pass_()
            with lock:
                arrived.append(i)

        t1 = spawn(party, 0)
        t2 = spawn(party, 1)
        t1.join(0.05)
        assert not arrived, "barrier released before all parties arrived"
        t3 = spawn(party, 2)
        join_all([t1, t2, t3])
        assert sorted(arrived) == [0, 1, 2]

    def test_reusable_across_many_episodes(self, barrier_factory):
        b = barrier_factory(4)
        episodes = 25
        counts = [0] * 4

        def party(i):
            for _ in range(episodes):
                b.pass_()
                counts[i] += 1

        threads = [spawn(party, i) for i in range(4)]
        join_all(threads)
        assert counts == [episodes] * 4

    def test_no_episode_overtaking(self, barrier_factory):
        """A fast thread must not pass episode t+1 before every thread has
        passed episode t — the fundamental barrier property."""
        b = barrier_factory(3)
        episode_of = [0, 0, 0]
        violations = []
        lock = threading.Lock()

        def party(i):
            for _ in range(20):
                b.pass_()
                with lock:
                    episode_of[i] += 1
                    spread = max(episode_of) - min(episode_of)
                    if spread > 1:
                        violations.append(tuple(episode_of))

        threads = [spawn(party, i) for i in range(3)]
        join_all(threads)
        assert not violations


class TestCyclicBarrierSpecifics:
    def test_pass_returns_arrival_index(self):
        b = CyclicBarrier(2)
        results = []
        lock = threading.Lock()

        def party():
            index = b.pass_()
            with lock:
                results.append(index)

        threads = [spawn(party), spawn(party)]
        join_all(threads)
        assert sorted(results) == [0, 1]

    def test_timeout_breaks_barrier(self):
        b = CyclicBarrier(2)
        with pytest.raises(SyncTimeout):
            b.pass_(timeout=0.02)
        assert b.broken
        with pytest.raises(BrokenBarrierError):
            b.pass_()

    def test_abort_wakes_and_fails_waiters(self):
        b = CyclicBarrier(3)
        failures = threading.Semaphore(0)

        def party():
            try:
                b.pass_()
            except BrokenBarrierError:
                failures.release()

        threads = [spawn(party), spawn(party)]
        b.abort()
        assert failures.acquire(timeout=5) and failures.acquire(timeout=5)
        join_all(threads)

    def test_reset_returns_barrier_to_service(self):
        b = CyclicBarrier(2)
        b.abort()
        b.reset()
        assert not b.broken
        threads = [spawn(b.pass_), spawn(b.pass_)]
        join_all(threads)

    def test_passes_counter(self):
        b = CyclicBarrier(2)
        for _ in range(3):
            threads = [spawn(b.pass_), spawn(b.pass_)]
            join_all(threads)
        assert b.passes == 3


class TestCounterBarrierSpecifics:
    def test_built_on_one_counter(self):
        b = CounterBarrier(3)
        assert b.counter.value == 0
        threads = [spawn(b.pass_) for _ in range(3)]
        join_all(threads)
        assert b.counter.value == 3  # one increment per arrival

    def test_counter_value_tracks_episodes(self):
        b = CounterBarrier(2)

        def party():
            for _ in range(5):
                b.pass_()

        threads = [spawn(party), spawn(party)]
        join_all(threads)
        assert b.counter.value == 10

    def test_accepts_injected_counter(self):
        from repro.core import MonotonicCounter

        c = MonotonicCounter(name="shared")
        b = CounterBarrier(2, counter=c)
        threads = [spawn(b.pass_), spawn(b.pass_)]
        join_all(threads)
        assert c.value == 2
