"""Tests for the sticky set/check event (the paper's §4.4 'condition variable')."""

from __future__ import annotations

import threading

import pytest

from repro.core import MonotonicCounter
from repro.sync import Event, SyncTimeout
from tests.helpers import join_all, spawn, wait_until


class TestEventBasics:
    def test_starts_unset(self):
        assert not Event().is_set()

    def test_set_then_check_returns_immediately(self):
        e = Event()
        e.set()
        e.check()
        assert e.is_set()

    def test_set_is_idempotent(self):
        e = Event()
        e.set()
        e.set()
        assert e.is_set()

    def test_check_blocks_until_set(self):
        e = Event()
        passed = threading.Event()

        def waiter():
            e.check()
            passed.set()

        thread = spawn(waiter)
        assert not passed.wait(0.05)
        e.set()
        assert passed.wait(5)
        join_all([thread])

    def test_set_wakes_all_waiters(self):
        e = Event()
        done = threading.Semaphore(0)
        threads = [spawn(lambda: (e.check(), done.release())) for _ in range(8)]
        e.set()
        for _ in range(8):
            assert done.acquire(timeout=5)
        join_all(threads)

    def test_check_timeout(self):
        e = Event()
        with pytest.raises(SyncTimeout):
            e.check(timeout=0.01)

    def test_wait_alias(self):
        e = Event()
        e.set()
        e.wait()

    def test_repr_shows_state(self):
        e = Event(name="kDone")
        assert "kDone" in repr(e) and "unset" in repr(e)
        e.set()
        assert "set" in repr(e)


class TestEventCounterEquivalence:
    """§4.5: an event is exactly a counter restricted to {0, 1}."""

    def test_set_check_maps_to_increment_check1(self):
        e = Event()
        c = MonotonicCounter()
        # Both unset/zero: check would block on both (probe via timeout).
        with pytest.raises(SyncTimeout):
            e.check(timeout=0.01)
        from repro.core import CheckTimeout

        with pytest.raises(CheckTimeout):
            c.check(1, timeout=0.01)
        # Set == Increment(1): both now pass their checks immediately.
        e.set()
        c.increment(1)
        e.check()
        c.check(1)

    def test_array_of_events_replaced_by_one_counter(self):
        """The §4.4 -> §4.5 transformation: kDone[k].Set() == Increment(1)
        when sets happen in index order."""
        n = 10
        events = [Event() for _ in range(n)]
        counter = MonotonicCounter()
        observed_by_events = []
        observed_by_counter = []
        done = threading.Semaphore(0)

        def event_reader():
            for k in range(n):
                events[k].check()
                observed_by_events.append(k)
            done.release()

        def counter_reader():
            for k in range(n):
                counter.check(k + 1)
                observed_by_counter.append(k)
            done.release()

        threads = [spawn(event_reader), spawn(counter_reader)]
        for k in range(n):
            events[k].set()
            counter.increment(1)
        assert done.acquire(timeout=10) and done.acquire(timeout=10)
        join_all(threads)
        assert observed_by_events == observed_by_counter == list(range(n))


class TestEventStress:
    def test_many_set_check_rounds(self):
        for _ in range(50):
            e = Event()
            waiters = [spawn(e.check) for _ in range(4)]
            e.set()
            join_all(waiters)

    def test_check_after_timeout_still_works(self):
        e = Event()
        with pytest.raises(SyncTimeout):
            e.check(timeout=0.01)
        e.set()
        e.check()

    def test_concurrent_setters_single_transition(self):
        e = Event()
        results = []
        lock = threading.Lock()

        def setter():
            e.set()
            with lock:
                results.append(e.is_set())

        threads = [spawn(setter) for _ in range(8)]
        join_all(threads)
        assert results == [True] * 8
