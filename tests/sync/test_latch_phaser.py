"""Tests for CountDownLatch and Phaser (the related-work comparators)."""

from __future__ import annotations

import threading

import pytest

from repro.core import MonotonicCounter
from repro.sync import CountDownLatch, Phaser, SyncError, SyncTimeout
from tests.helpers import join_all, spawn


class TestCountDownLatch:
    def test_count_validation(self):
        for bad in (-1, 0.5, True):
            with pytest.raises(ValueError):
                CountDownLatch(bad)

    def test_zero_latch_is_open(self):
        CountDownLatch(0).await_()

    def test_await_blocks_until_zero(self):
        latch = CountDownLatch(3)
        passed = threading.Event()
        thread = spawn(lambda: (latch.await_(), passed.set()))
        latch.count_down()
        latch.count_down()
        assert not passed.wait(0.05)
        latch.count_down()
        assert passed.wait(5)
        join_all([thread])

    def test_count_down_floors_at_zero(self):
        latch = CountDownLatch(1)
        latch.count_down(5)
        assert latch.count == 0
        latch.count_down()  # further countdown is a no-op
        assert latch.count == 0

    def test_await_timeout(self):
        with pytest.raises(SyncTimeout):
            CountDownLatch(1).await_(timeout=0.01)

    def test_count_down_n(self):
        latch = CountDownLatch(10)
        latch.count_down(7)
        assert latch.count == 3

    def test_single_shot_vs_counter(self):
        """The latch is weaker than a counter: one target level only.
        A counter expresses the same wait and arbitrarily many others."""
        latch = CountDownLatch(3)
        counter = MonotonicCounter()
        done = threading.Semaphore(0)
        threads = [
            spawn(lambda: (latch.await_(), done.release())),
            spawn(lambda: (counter.check(3), done.release())),
            spawn(lambda: (counter.check(1), done.release())),  # extra level: latch can't
        ]
        for _ in range(3):
            latch.count_down()
            counter.increment(1)
        for _ in range(3):
            assert done.acquire(timeout=5)
        join_all(threads)


class TestPhaser:
    def test_parties_validation(self):
        with pytest.raises(ValueError):
            Phaser(-1)

    def test_register_returns_phase(self):
        p = Phaser()
        assert p.register(2) == 0
        assert p.parties == 2

    def test_arrive_with_no_parties_raises(self):
        with pytest.raises(SyncError):
            Phaser(0).arrive()

    def test_phase_advances_when_all_arrive(self):
        p = Phaser(2)
        assert p.arrive() == 0
        assert p.phase == 0
        assert p.arrive() == 0
        assert p.phase == 1

    def test_arrive_and_await_advance(self):
        p = Phaser(3)
        reached = []
        lock = threading.Lock()

        def party(i):
            for _ in range(4):
                p.arrive_and_await_advance()
            with lock:
                reached.append(i)

        threads = [spawn(party, i) for i in range(3)]
        join_all(threads)
        assert sorted(reached) == [0, 1, 2]
        assert p.phase == 4

    def test_await_advance_on_past_phase_returns(self):
        p = Phaser(1)
        p.arrive()  # phase -> 1
        assert p.await_advance(0) == 1  # already advanced past 0

    def test_await_advance_blocks_on_current_phase(self):
        p = Phaser(2)
        passed = threading.Event()
        thread = spawn(lambda: (p.await_advance(0), passed.set()))
        p.arrive()
        assert not passed.wait(0.05)
        p.arrive()
        assert passed.wait(5)
        join_all([thread])

    def test_await_advance_timeout(self):
        p = Phaser(1)
        with pytest.raises(SyncTimeout):
            p.await_advance(0, timeout=0.01)

    def test_arrive_and_deregister(self):
        p = Phaser(2)
        p.arrive_and_deregister()
        assert p.parties == 1
        p.arrive()  # the lone remaining party now completes phases alone
        assert p.phase >= 1

    def test_await_advance_validation(self):
        p = Phaser(1)
        with pytest.raises(ValueError):
            p.await_advance(-1)

    def test_phase_is_monotone_like_a_counter(self):
        """await_advance(phase) has the stable-condition property of
        check(level): once the phase passes, it never un-passes."""
        p = Phaser(1)
        for expected in range(5):
            assert p.phase == expected
            p.arrive()
            p.await_advance(expected)  # returns immediately, forever after
            p.await_advance(expected)
