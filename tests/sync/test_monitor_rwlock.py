"""Tests for the Monitor and ReadWriteLock substrates."""

from __future__ import annotations

import threading

import pytest

from repro.sync import Monitor, ReadWriteLock, SyncError, SyncTimeout, synchronized
from tests.helpers import join_all, spawn, wait_until


class BoundedCell(Monitor):
    """Classic monitor example: a one-slot buffer."""

    def __init__(self) -> None:
        super().__init__()
        self._value = None
        self._full = False

    @synchronized
    def put(self, value) -> None:
        self.wait_for("empty", lambda: not self._full)
        self._value = value
        self._full = True
        self.notify("full")

    @synchronized
    def take(self):
        self.wait_for("full", lambda: self._full)
        value = self._value
        self._full = False
        self.notify("empty")
        return value


class TestMonitor:
    def test_put_take_roundtrip(self):
        cell = BoundedCell()
        cell.put(7)
        assert cell.take() == 7

    def test_take_blocks_until_put(self):
        cell = BoundedCell()
        got = []
        thread = spawn(lambda: got.append(cell.take()))
        thread.join(0.05)
        assert not got
        cell.put("x")
        join_all([thread])
        assert got == ["x"]

    def test_put_blocks_when_full(self):
        cell = BoundedCell()
        cell.put(1)
        done = threading.Event()
        thread = spawn(lambda: (cell.put(2), done.set()))
        assert not done.wait(0.05)
        assert cell.take() == 1
        assert done.wait(5)
        join_all([thread])
        assert cell.take() == 2

    def test_producer_consumer_sequence(self):
        cell = BoundedCell()
        received = []

        def producer():
            for i in range(50):
                cell.put(i)

        def consumer():
            for _ in range(50):
                received.append(cell.take())

        threads = [spawn(producer), spawn(consumer)]
        join_all(threads)
        assert received == list(range(50))  # one-slot buffer preserves order

    def test_queue_names_are_static_once_used(self):
        cell = BoundedCell()
        cell.put(1)
        cell.take()
        assert cell.queue_names == ("empty", "full")

    def test_wait_outside_monitor_rejected(self):
        cell = BoundedCell()
        with pytest.raises(SyncError, match="outside"):
            cell.wait_for("full", lambda: True)
        with pytest.raises(SyncError, match="outside"):
            cell.notify("full")
        with pytest.raises(SyncError, match="outside"):
            cell.notify_all("full")

    def test_wait_timeout(self):
        cell = BoundedCell()
        with cell.entered():
            with pytest.raises(SyncTimeout):
                cell.wait_for("full", lambda: False, timeout=0.02)

    def test_synchronized_requires_monitor(self):
        class NotAMonitor:
            @synchronized
            def method(self):
                return 1

        with pytest.raises(TypeError):
            NotAMonitor().method()

    def test_entered_is_reentrant(self):
        cell = BoundedCell()
        with cell.entered():
            with cell.entered():
                cell.notify("full")

    def test_mutual_exclusion_of_synchronized_methods(self):
        class CounterMonitor(Monitor):
            def __init__(self):
                super().__init__()
                self.n = 0

            @synchronized
            def bump(self):
                local = self.n
                self.n = local + 1

        monitor = CounterMonitor()
        threads = [spawn(lambda: [monitor.bump() for _ in range(500)]) for _ in range(4)]
        join_all(threads)
        assert monitor.n == 2000


class TestReadWriteLock:
    def test_multiple_concurrent_readers(self):
        rw = ReadWriteLock()
        inside = []
        barrier = threading.Barrier(3)

        def reader():
            with rw.reading():
                barrier.wait(5)  # proves 3 readers are in simultaneously
                inside.append(1)

        threads = [spawn(reader) for _ in range(3)]
        join_all(threads)
        assert len(inside) == 3

    def test_writer_excludes_readers(self):
        rw = ReadWriteLock()
        rw.acquire_write()
        blocked = threading.Event()
        entered = threading.Event()

        def reader():
            blocked.set()
            with rw.reading():
                entered.set()

        thread = spawn(reader)
        blocked.wait(5)
        assert not entered.wait(0.05)
        rw.release_write()
        assert entered.wait(5)
        join_all([thread])

    def test_writer_excludes_writer(self):
        rw = ReadWriteLock()
        order = []

        def writer(i):
            with rw.writing():
                order.append(("enter", i))
                order.append(("exit", i))

        threads = [spawn(writer, i) for i in range(4)]
        join_all(threads)
        # enters and exits must strictly alternate
        for j in range(0, 8, 2):
            assert order[j][0] == "enter" and order[j + 1][0] == "exit"
            assert order[j][1] == order[j + 1][1]

    def test_writer_preference_blocks_new_readers(self):
        rw = ReadWriteLock()
        rw.acquire_read()
        writer_waiting = threading.Event()
        writer_done = threading.Event()
        reader_entered = threading.Event()

        def writer():
            writer_waiting.set()
            with rw.writing():
                pass
            writer_done.set()

        def late_reader():
            with rw.reading():
                reader_entered.set()

        writer_thread = spawn(writer)
        writer_waiting.wait(5)
        wait_until(lambda: rw._waiting_writers == 1)
        reader_thread = spawn(late_reader)
        assert not reader_entered.wait(0.05), "late reader barged past waiting writer"
        rw.release_read()
        assert writer_done.wait(5)
        assert reader_entered.wait(5)
        join_all([writer_thread, reader_thread])

    def test_release_without_acquire_rejected(self):
        rw = ReadWriteLock()
        with pytest.raises(SyncError):
            rw.release_read()
        with pytest.raises(SyncError):
            rw.release_write()

    def test_acquire_timeouts(self):
        rw = ReadWriteLock()
        rw.acquire_write()
        with pytest.raises(SyncTimeout):
            rw.acquire_read(timeout=0.02)
        with pytest.raises(SyncTimeout):
            rw.acquire_write(timeout=0.02)
        rw.release_write()

    def test_stress_invariant(self):
        rw = ReadWriteLock()
        state = {"readers": 0, "writers": 0}
        violations = []
        guard = threading.Lock()

        def reader():
            for _ in range(50):
                with rw.reading():
                    with guard:
                        state["readers"] += 1
                        if state["writers"]:
                            violations.append("reader saw writer")
                    with guard:
                        state["readers"] -= 1

        def writer():
            for _ in range(20):
                with rw.writing():
                    with guard:
                        state["writers"] += 1
                        if state["writers"] > 1 or state["readers"]:
                            violations.append("writer not exclusive")
                    with guard:
                        state["writers"] -= 1

        threads = [spawn(reader) for _ in range(4)] + [spawn(writer) for _ in range(2)]
        join_all(threads)
        assert not violations
