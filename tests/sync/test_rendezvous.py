"""Tests for the Ada-style rendezvous entry."""

from __future__ import annotations

import threading

import pytest

from repro.sync import Rendezvous, SyncTimeout
from tests.helpers import join_all, spawn


class TestRendezvousBasics:
    def test_call_and_accept(self):
        entry: Rendezvous[int, int] = Rendezvous()
        server = spawn(lambda: entry.accept(lambda r: r * 2))
        assert entry.call(21) == 42
        join_all([server])

    def test_accept_returns_the_reply(self):
        entry: Rendezvous[int, int] = Rendezvous()
        results = []
        server = spawn(lambda: results.append(entry.accept(lambda r: r + 1)))
        assert entry.call(4) == 5
        join_all([server])
        assert results == [5]

    def test_none_reply_is_valid(self):
        entry: Rendezvous[str, None] = Rendezvous()
        server = spawn(lambda: entry.accept(lambda r: None))
        assert entry.call("x") is None
        join_all([server])

    def test_multiple_calls_served_fifo(self):
        entry: Rendezvous[int, int] = Rendezvous()
        served = []

        def server():
            for _ in range(3):
                entry.accept(lambda r: served.append(r) or r)

        server_thread = spawn(server)
        replies = []
        callers = [spawn(lambda i=i: replies.append(entry.call(i))) for i in range(3)]
        join_all(callers + [server_thread])
        assert sorted(served) == [0, 1, 2]
        assert sorted(replies) == [0, 1, 2]

    def test_caller_blocks_for_whole_service(self):
        """Extended rendezvous: the caller cannot proceed while the
        service runs."""
        entry: Rendezvous[int, int] = Rendezvous()
        service_started = threading.Event()
        service_release = threading.Event()
        caller_done = threading.Event()

        def service(request):
            service_started.set()
            assert service_release.wait(10)
            return request

        server = spawn(lambda: entry.accept(service))
        caller = spawn(lambda: (entry.call(1), caller_done.set()))
        assert service_started.wait(5)
        assert not caller_done.wait(0.05), "caller proceeded before service finished"
        service_release.set()
        assert caller_done.wait(5)
        join_all([server, caller])


class TestRendezvousFailure:
    def test_service_exception_reaches_both_sides(self):
        entry: Rendezvous[int, int] = Rendezvous()
        server_errors = []

        def server():
            try:
                entry.accept(lambda r: 1 // r)
            except ZeroDivisionError as exc:
                server_errors.append(exc)

        server_thread = spawn(server)
        with pytest.raises(ZeroDivisionError):
            entry.call(0)
        join_all([server_thread])
        assert len(server_errors) == 1

    def test_call_timeout_withdraws_request(self):
        entry: Rendezvous[int, int] = Rendezvous()
        with pytest.raises(SyncTimeout):
            entry.call(1, timeout=0.02)
        assert entry.pending == 0

    def test_accept_timeout(self):
        entry: Rendezvous[int, int] = Rendezvous()
        with pytest.raises(SyncTimeout):
            entry.accept(lambda r: r, timeout=0.02)

    def test_withdrawn_call_not_served_later(self):
        entry: Rendezvous[int, int] = Rendezvous()
        with pytest.raises(SyncTimeout):
            entry.call(99, timeout=0.02)
        served = []
        server = spawn(lambda: served.append(entry.accept(lambda r: r)))
        assert entry.call(1) == 1
        join_all([server])
        assert served == [1]  # the withdrawn 99 never reached a server


class TestRendezvousConcurrency:
    def test_many_clients_one_server(self):
        entry: Rendezvous[int, int] = Rendezvous()
        n = 16

        def server():
            for _ in range(n):
                entry.accept(lambda r: r * r)

        server_thread = spawn(server)
        replies = {}
        lock = threading.Lock()

        def client(i):
            reply = entry.call(i)
            with lock:
                replies[i] = reply

        clients = [spawn(client, i) for i in range(n)]
        join_all(clients + [server_thread])
        assert replies == {i: i * i for i in range(n)}

    def test_multiple_servers(self):
        entry: Rendezvous[int, int] = Rendezvous()
        n = 12
        servers = [
            spawn(lambda: [entry.accept(lambda r: -r) for _ in range(n // 3)])
            for _ in range(3)
        ]
        replies = [entry.call(i) for i in range(n)]
        join_all(servers)
        assert replies == [-i for i in range(n)]
