"""Tests for the from-scratch counting semaphore."""

from __future__ import annotations

import threading

import pytest

from repro.sync import CountingSemaphore, SyncTimeout
from tests.helpers import join_all, spawn


class TestSemaphoreBasics:
    def test_initial_value(self):
        assert CountingSemaphore(3).value == 3

    def test_initial_validation(self):
        for bad in (-1, 1.5, True, "2"):
            with pytest.raises(ValueError):
                CountingSemaphore(bad)

    def test_acquire_decrements(self):
        s = CountingSemaphore(2)
        s.acquire()
        assert s.value == 1

    def test_release_increments(self):
        s = CountingSemaphore(0)
        s.release(3)
        assert s.value == 3

    def test_acquire_blocks_at_zero(self):
        s = CountingSemaphore(0)
        passed = threading.Event()
        thread = spawn(lambda: (s.acquire(), passed.set()))
        assert not passed.wait(0.05)
        s.release()
        assert passed.wait(5)
        join_all([thread])

    def test_acquire_timeout(self):
        s = CountingSemaphore(0)
        with pytest.raises(SyncTimeout):
            s.acquire(timeout=0.01)

    def test_operand_validation(self):
        s = CountingSemaphore(1)
        for bad in (0, -1, 1.5, True):
            with pytest.raises(ValueError):
                s.acquire(bad)
            with pytest.raises(ValueError):
                s.release(bad)

    def test_context_manager(self):
        s = CountingSemaphore(1)
        with s:
            assert s.value == 0
        assert s.value == 1


class TestMultiUnit:
    def test_acquire_n_waits_for_n_units(self):
        s = CountingSemaphore(1)
        passed = threading.Event()
        thread = spawn(lambda: (s.acquire(3), passed.set()))
        s.release(1)
        assert not passed.wait(0.05), "acquire(3) returned with only 2 units"
        s.release(1)
        assert passed.wait(5)
        join_all([thread])

    def test_no_stranding_of_large_waiter(self):
        """release wakes all waiters so a large request is not starved
        behind the condition variable."""
        s = CountingSemaphore(0)
        big_done = threading.Event()
        small_done = threading.Event()
        big = spawn(lambda: (s.acquire(2), big_done.set()))
        small = spawn(lambda: (s.acquire(1), small_done.set()))
        s.release(3)
        assert big_done.wait(5)
        assert small_done.wait(5)
        join_all([big, small])


class TestSemaphoreStress:
    def test_producer_consumer_conservation(self):
        s = CountingSemaphore(0)
        produced = 400
        consumed = []
        lock = threading.Lock()

        def consumer():
            for _ in range(produced // 4):
                s.acquire()
                with lock:
                    consumed.append(1)

        consumers = [spawn(consumer) for _ in range(4)]
        for _ in range(produced):
            s.release()
        join_all(consumers)
        assert len(consumed) == produced
        assert s.value == 0

    def test_mutex_discipline(self):
        s = CountingSemaphore(1)
        inside = [0]
        max_inside = [0]

        def worker():
            for _ in range(100):
                s.acquire()
                inside[0] += 1
                max_inside[0] = max(max_inside[0], inside[0])
                inside[0] -= 1
                s.release()

        threads = [spawn(worker) for _ in range(4)]
        join_all(threads)
        assert max_inside[0] == 1
