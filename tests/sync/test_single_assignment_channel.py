"""Tests for SingleAssignment variables and the bounded Channel."""

from __future__ import annotations

import threading

import pytest

from repro.sync import (
    AlreadyAssignedError,
    Channel,
    ChannelClosedError,
    CountingSemaphore,
    SingleAssignment,
    SyncTimeout,
)
from tests.helpers import join_all, spawn


class TestSingleAssignment:
    def test_read_after_assign(self):
        cell = SingleAssignment()
        cell.assign(42)
        assert cell.read() == 42
        assert cell.is_assigned()

    def test_double_assign_raises(self):
        cell = SingleAssignment()
        cell.assign(1)
        with pytest.raises(AlreadyAssignedError):
            cell.assign(2)
        assert cell.read() == 1

    def test_read_blocks_until_assigned(self):
        cell = SingleAssignment()
        results = []
        lock = threading.Lock()

        def reader():
            value = cell.read()
            with lock:
                results.append(value)

        threads = [spawn(reader) for _ in range(4)]
        cell.assign("ready")
        join_all(threads)
        assert results == ["ready"] * 4

    def test_read_timeout(self):
        with pytest.raises(SyncTimeout):
            SingleAssignment().read(timeout=0.01)

    def test_none_is_a_valid_value(self):
        cell = SingleAssignment()
        cell.assign(None)
        assert cell.read() is None
        assert cell.is_assigned()

    def test_concurrent_assign_exactly_one_wins(self):
        cell = SingleAssignment()
        outcomes = []
        lock = threading.Lock()

        def assigner(i):
            try:
                cell.assign(i)
                with lock:
                    outcomes.append(("ok", i))
            except AlreadyAssignedError:
                with lock:
                    outcomes.append(("dup", i))

        threads = [spawn(assigner, i) for i in range(8)]
        join_all(threads)
        winners = [i for kind, i in outcomes if kind == "ok"]
        assert len(winners) == 1
        assert cell.read() == winners[0]


class TestChannel:
    def test_capacity_validation(self):
        for bad in (0, -1, 1.5, True):
            with pytest.raises(ValueError):
                Channel(bad)

    def test_fifo_order(self):
        ch = Channel(capacity=4)
        for i in range(4):
            ch.put(i)
        assert [ch.get() for _ in range(4)] == [0, 1, 2, 3]

    def test_put_blocks_when_full(self):
        ch = Channel(capacity=1)
        ch.put("a")
        blocked = threading.Event()
        passed = threading.Event()

        def producer():
            blocked.set()
            ch.put("b")
            passed.set()

        thread = spawn(producer)
        blocked.wait(5)
        assert not passed.wait(0.05)
        assert ch.get() == "a"
        assert passed.wait(5)
        join_all([thread])
        assert ch.get() == "b"

    def test_get_blocks_when_empty(self):
        ch = Channel(capacity=1)
        got = []
        thread = spawn(lambda: got.append(ch.get()))
        thread.join(0.05)
        assert not got
        ch.put(9)
        join_all([thread])
        assert got == [9]

    def test_get_timeout(self):
        with pytest.raises(SyncTimeout):
            Channel(capacity=1).get(timeout=0.01)

    def test_close_then_drain(self):
        ch = Channel(capacity=4)
        ch.put(1)
        ch.put(2)
        ch.close()
        assert ch.get() == 1
        assert ch.get() == 2
        with pytest.raises(ChannelClosedError):
            ch.get()

    def test_put_after_close_raises(self):
        ch = Channel(capacity=2)
        ch.close()
        with pytest.raises(ChannelClosedError):
            ch.put(1)

    def test_close_is_idempotent(self):
        ch = Channel(capacity=1)
        ch.close()
        ch.close()

    def test_iteration_stops_at_close(self):
        ch = Channel(capacity=8)
        for i in range(5):
            ch.put(i)
        ch.close()
        assert list(ch) == [0, 1, 2, 3, 4]

    def test_multi_producer_multi_consumer_each_item_once(self):
        """The §5.3 contrast: channel items are consumed exactly once
        (unlike a broadcast, where every reader sees every item)."""
        ch = Channel(capacity=8)
        n_items = 200
        consumed: list[int] = []
        lock = threading.Lock()

        def producer(base):
            for i in range(n_items // 2):
                ch.put(base + i)

        def consumer():
            for item in ch:
                with lock:
                    consumed.append(item)

        producers = [spawn(producer, 0), spawn(producer, 1000)]
        consumers = [spawn(consumer) for _ in range(3)]
        join_all(producers)
        ch.close()
        join_all(consumers)
        assert len(consumed) == n_items
        assert len(set(consumed)) == n_items  # no duplicates

    def test_built_on_from_scratch_semaphores(self):
        ch = Channel(capacity=2)
        assert isinstance(ch._slots, CountingSemaphore)
        assert isinstance(ch._filled, CountingSemaphore)
