"""Property-based tests on the substrate primitives (hypothesis)."""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sync import Channel, CountDownLatch, CountingSemaphore, Phaser
from tests.helpers import join_all, spawn


@settings(deadline=None, max_examples=30)
@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50))
def test_channel_preserves_fifo_single_consumer(items):
    ch: Channel[int] = Channel(capacity=max(1, len(items) // 2))
    received: list[int] = []

    def consumer():
        for _ in items:
            received.append(ch.get(timeout=30))

    thread = spawn(consumer)
    for item in items:
        ch.put(item, timeout=30)
    join_all([thread])
    assert received == items


@settings(deadline=None, max_examples=30)
@given(
    st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30),
    st.integers(min_value=1, max_value=4),
)
def test_channel_conservation_multi_consumer(items, consumers):
    """Every item consumed exactly once regardless of consumer count."""
    ch: Channel[int] = Channel(capacity=4)
    received: list[int] = []
    lock = threading.Lock()

    def consumer():
        for item in ch:
            with lock:
                received.append(item)

    threads = [spawn(consumer) for _ in range(consumers)]
    for item in items:
        ch.put(item, timeout=30)
    ch.close()
    join_all(threads)
    assert sorted(received) == sorted(items)


@settings(deadline=None, max_examples=40)
@given(
    st.integers(min_value=1, max_value=30),  # latch count
    st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=30),
)
def test_latch_opens_iff_countdowns_cover_count(count, downs):
    latch = CountDownLatch(count)
    for n in downs:
        latch.count_down(n)
    opened = latch.count == 0
    assert opened == (sum(downs) >= count)
    if opened:
        latch.await_()  # must not block


@settings(deadline=None, max_examples=40)
@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=20))
def test_phaser_phase_counts_completions(parties, rounds):
    phaser = Phaser(parties)
    for _ in range(rounds):
        for _ in range(parties):
            phaser.arrive()
    assert phaser.phase == rounds


@settings(deadline=None, max_examples=30)
@given(
    st.integers(min_value=0, max_value=10),
    st.lists(st.integers(min_value=1, max_value=5), min_size=0, max_size=20),
)
def test_semaphore_value_is_conserved(initial, transfers):
    """Acquires and releases balance exactly (single-threaded algebra)."""
    sem = CountingSemaphore(initial)
    held = 0
    for n in transfers:
        if sem.value >= n:
            sem.acquire(n)
            held += n
        else:
            sem.release(n)
            held -= n
    assert sem.value == initial - held
