"""Tests for the schedule-injection test kit itself."""
