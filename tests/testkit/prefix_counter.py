"""Shared test model: ``MonotonicCounter`` with PR 2's drain leak re-introduced.

Used by the scripted regression tests (pin the leak as one exact
schedule) and by the shrink/replay tests (hand the explorer and the
minimizer a real historical bug to find and reduce).
"""

from __future__ import annotations

from repro.core import MonotonicCounter
from repro.core import syncpoints as _sp
from repro.core.errors import CheckTimeout
from repro.core.validation import validate_amount


class PreFixCounter(MonotonicCounter):
    """``MonotonicCounter`` with PR 2's increment bug re-introduced,
    transliterated to the engine: the wake pass (set flag + slot sets)
    runs inside the critical section, before the ``_draining`` insert,
    instead of in the out-of-lock ``signal()`` pass.  Sync points are
    preserved so the same schedule drives both variants.  (The later
    ``signal()`` is harmless double delivery: each wheel entry's claim
    is already spent, so the second ``release_wake`` no-ops.)
    """

    def increment(self, amount: int = 1) -> int:
        amount = validate_amount(amount)
        released = None
        if _sp.enabled:
            _sp.fire("increment.lock", self)
        with self._lock:
            new_value = self._value + amount
            self._value = new_value
            if amount and self._live_levels:
                released = self._waiters.release_through(new_value)
                if released:
                    if _sp.enabled:
                        _sp.fire("increment.release", self)
                    draining = []
                    for node in released:
                        node.released = True
                        self._live_levels -= 1
                        self._live_waiters -= node.count
                        if node.count:
                            node.countdown = node.waiters[:]
                            draining.append(node)
                        node.signaled = True           # THE BUG: the wake
                        for waiter in node.waiters:    # is observable while
                            waiter.release_wake()      # the insert is pending
                    if draining:
                        if _sp.enabled:
                            _sp.fire("increment.drain", self)
                        with self._drain_lock:
                            for node in draining:
                                self._draining[id(node)] = node
        if released:
            if _sp.enabled:
                _sp.fire("increment.unlock", self)
            for node in released:
                if _sp.enabled:
                    _sp.fire("increment.signal", self)
                node.signal()
        return new_value


def drain_leak_model(timeout: float = 0.25):
    """A fresh pre-fix counter plus the two-worker model that can leak.

    Returns ``(counter, threads, leaked)``: the worker mapping for a
    controller/replay, and the oracle that detects the leak (a
    ``_draining`` entry surviving the run).
    """
    counter = PreFixCounter()
    result: dict[str, str] = {}

    def waiter():
        try:
            counter.check(1, timeout=timeout)
            result["check"] = "released"
        except CheckTimeout:
            result["check"] = "timeout"

    threads = {"w": waiter, "inc": (counter.increment, 1)}

    def leaked(controller) -> bool:
        return len(counter._draining) == 1

    return counter, threads, leaked
