"""The plain counter under adversarial schedules.

These are the schedule-injection ports of the classic hammer scenarios
(fan-in, multi-level release, timeout races, subscription churn): same
workloads, but the interleavings are *chosen* by a seeded scheduler
instead of left to the OS, every run's schedule is printable, and each
ends with full quiescence checks over the counter's private state.
"""

from __future__ import annotations

from repro.core import MonotonicCounter
from repro.core.errors import CheckTimeout
from repro.testkit import (
    assert_counter_quiescent,
    interleave,
    tallies_consistent,
)


@interleave(schedules=12)
def test_fan_in_release(sched):
    """N incrementers, one waiter for the total: the waiter always gets
    out and nothing leaks, wherever the increments land in the schedule."""
    counter = MonotonicCounter()
    for i in range(sched.threads):
        sched.spawn(f"inc{i}", counter.increment, 1)
    sched.spawn("w", counter.check, sched.threads)
    sched.invariant_at("park.enter", lambda obj: tallies_consistent(counter))
    sched.invariant_at("increment.signal", lambda obj: tallies_consistent(counter))
    sched.run()
    assert_counter_quiescent(counter, expect_value=sched.threads)


@interleave(schedules=12, scheduler="pct")
def test_fan_in_release_pct(sched):
    """Same fan-in workload under PCT priorities: different adversary,
    same guarantees."""
    counter = MonotonicCounter()
    for i in range(sched.threads):
        sched.spawn(f"inc{i}", counter.increment, 1)
    sched.spawn("w", counter.check, sched.threads)
    sched.run()
    assert_counter_quiescent(counter, expect_value=sched.threads)


@interleave(schedules=10)
def test_multi_level_waiters(sched):
    """Waiters at staggered levels, increments that release them in
    batches — exercises the coalesced release scan and per-level nodes."""
    counter = MonotonicCounter()
    sched.spawn("w1", counter.check, 1)
    sched.spawn("w3", counter.check, 3)
    sched.spawn("w4", counter.check, 4)
    sched.spawn("incA", counter.increment, 2)
    sched.spawn("incB", counter.increment, 2)
    sched.run()
    assert_counter_quiescent(counter, expect_value=4)


@interleave(schedules=10)
def test_same_level_pileup(sched):
    """Several waiters share one level (one wait node, count > 1): a
    single release must wake them all and reclaim the shared node."""
    counter = MonotonicCounter()
    for i in range(3):
        sched.spawn(f"w{i}", counter.check, 2)
    sched.spawn("inc", counter.increment, 2)
    sched.run()
    assert_counter_quiescent(counter, expect_value=2)


@interleave(schedules=14)
def test_timeout_vs_release_race(sched):
    """A waiter with a short timeout racing the increment that satisfies
    it: both outcomes are legal, neither may corrupt state.  This is the
    schedule-injected version of the timeout-adjudication races that
    previously needed hand-built trapping locks."""
    counter = MonotonicCounter()
    outcome = []

    def impatient():
        try:
            counter.check(2, timeout=0.05)
            outcome.append("released")
        except CheckTimeout:
            outcome.append("timeout")

    sched.spawn("w", impatient)
    sched.spawn("inc1", counter.increment, 1)
    sched.spawn("inc2", counter.increment, 1)
    sched.run()
    assert outcome in (["released"], ["timeout"])
    assert_counter_quiescent(counter, expect_value=2)


@interleave(schedules=10)
def test_subscription_fires_once_under_any_schedule(sched):
    """A subscription racing the increment that satisfies it fires
    exactly once, and its node is reclaimed."""
    counter = MonotonicCounter()
    fired = []

    def subscriber():
        sub = counter.subscribe(2, lambda: fired.append("hit"))
        if sub is None:  # already satisfied at registration
            fired.append("hit")

    sched.spawn("sub", subscriber)
    sched.spawn("inc", counter.increment, 2)
    sched.run()
    assert fired == ["hit"]
    assert_counter_quiescent(counter, expect_value=2)


@interleave(schedules=10)
def test_subscription_cancel_races_release(sched):
    """Cancelling a subscription while the releasing increment is in
    flight: the callback fires at most once and nothing leaks either way."""
    counter = MonotonicCounter()
    fired = []

    def churn():
        sub = counter.subscribe(1, lambda: fired.append("hit"))
        if sub is not None:
            sub.cancel()

    sched.spawn("sub", churn)
    sched.spawn("inc", counter.increment, 1)
    sched.run()
    assert len(fired) <= 1
    assert_counter_quiescent(counter, expect_value=1)


@interleave(schedules=8)
def test_reset_reuse_after_quiescence(sched):
    """A full wait/release round leaves the counter reusable: reset()
    succeeds and a second round on the same object behaves identically.
    Guards the PR-2 regression where a leaked draining node poisoned
    reset() forever."""
    counter = MonotonicCounter()
    sched.spawn("w", counter.check, 2)
    sched.spawn("inc", counter.increment, 2)
    sched.run()
    assert_counter_quiescent(counter, expect_value=2)  # also resets
    counter.increment(1)
    counter.check(1)
    assert counter.value == 1
