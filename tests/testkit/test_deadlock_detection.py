"""Harness-level deadlock detection: the instant proof and its report.

The scheduler loop detects "every unfinished worker is blocked" two
ways: an *instant* proof (all blocked workers known-parked at engine
park points, timer wheel empty — nothing can wake anyone) confirmed
after a short silence, and the conservative no-progress timeout for
everything else.  These tests inject a lost wakeup at the harness level
and pin (a) that detection is the proof, not the timeout, and (b) the
structured who-waits-on-what report.  They also pin finish()'s error
attribution: a worker exception that kills a waker must be reported as
the cause, not buried under the resulting hang.
"""

from __future__ import annotations

import time

import pytest

from repro.core import MonotonicCounter
from repro.testkit import Controller, ScheduleDeadlock, ScheduleError
from repro.testkit.schedulers import RandomScheduler


def test_instant_detection_of_untimed_lost_wakeup():
    """An untimed waiter above any increment's reach: nothing is armed,
    nothing can wake it.  With the fallback timeout set far beyond the
    test budget, only the instant proof can report in time."""
    counter = MonotonicCounter()
    controller = Controller(
        deadlock_timeout=60.0, deadlock_confirm=0.05, finish_timeout=0.3
    )
    controller.spawn("w", counter.check, 2)
    controller.spawn("inc", counter.increment, 1)
    started = time.monotonic()
    try:
        with controller:
            with pytest.raises(ScheduleDeadlock) as excinfo:
                controller.run_scheduler(RandomScheduler(7), settle=0.004)
            counter.increment(1)  # wake the stranded waiter for close()
            controller.finish()
    finally:
        elapsed = time.monotonic() - started
    assert elapsed < 10.0, f"instant proof fell back to the timeout: {elapsed:.1f}s"

    report = excinfo.value.report
    assert report is not None
    assert report.instant
    assert report.wheel_armed == 0
    assert [info.name for info in report.workers] == ["w"]
    assert report.workers[0].known
    assert report.workers[0].point == "park.enter"


def test_deadlock_report_names_who_waits_on_what():
    counter = MonotonicCounter(name="orders")
    controller = Controller(
        deadlock_timeout=60.0, deadlock_confirm=0.05, finish_timeout=0.3
    )
    controller.spawn("w", counter.check, 5)
    with controller:
        with pytest.raises(ScheduleDeadlock) as excinfo:
            controller.run_scheduler(RandomScheduler(0), settle=0.004)
        counter.increment(5)
        controller.finish()
    text = str(excinfo.value.report)
    assert "nothing can wake anyone" in text
    assert "w: parked after 'park.enter'" in text
    assert "who waits on what" in text
    assert "level 5: 1 waiter(s)" in text
    # The report embeds the replayable grant trace up to the deadlock.
    assert "w:park.enter" in excinfo.value.report.trace


def test_timed_wait_disarms_the_instant_proof():
    """A *timed* waiter arms the wheel: the all-parked state is not a
    deadlock (the timer will fire), and the loop must not report one —
    the waiter times out and the run completes."""
    from repro.core.errors import CheckTimeout

    counter = MonotonicCounter()
    outcome = {}

    def waiter():
        try:
            counter.check(1, timeout=0.2)
            outcome["check"] = "released"
        except CheckTimeout:
            outcome["check"] = "timeout"

    controller = Controller(deadlock_timeout=30.0, deadlock_confirm=0.05)
    controller.spawn("w", waiter)
    with controller:
        controller.run_scheduler(RandomScheduler(1), settle=0.004)
        controller.finish()
    controller.raise_worker_errors()
    assert outcome["check"] == "timeout"


def test_finish_reports_the_killer_exception_not_the_hang():
    """A crashed waker strands its waiter; finish() must lead with the
    exception (the cause) instead of the stall it produced."""
    counter = MonotonicCounter()

    def doomed_waker():
        raise ValueError("died before incrementing")

    controller = Controller(finish_timeout=0.3)
    controller.spawn("w", counter.check, 1)
    controller.spawn("waker", doomed_waker)
    with controller:
        controller.until("w", "park.enter")
        controller.grant("w")            # parks; only the waker can help
        controller.run_thread("waker")   # ...and it dies instead
        with pytest.raises(ScheduleError, match=r"worker\(s\) raised.*died before"):
            controller.finish()
        counter.increment(1)  # release the stranded waiter for close()
