"""The timer wheel under adversarial schedules.

PR 6 moved every timed wait — counter ``check(timeout=)`` and MultiWait
— onto one shared :class:`~repro.core.engine.TimerWheel`, with a
per-entry *claim* arbitrating between the releasing thread and the
wheel's sweeper.  These suites drive the real primitives through chosen
interleavings and pin the wheel's two obligations:

* whichever side wins the claim, exactly one wakeup is delivered and
  the protocol adjudicates correctly (no lost wakeup, no false timeout
  after a satisfying release);
* a satisfied timed wait *cancels* its deadline — the wheel ends every
  schedule with ``armed_count() == 0``, so no ghost timeout can fire
  into a recycled parking slot later.

Unit-level wheel mechanics (bucket hashing, sweeper lifecycle) live in
``tests/core/test_engine.py``.
"""

from __future__ import annotations

from repro.core import MonotonicCounter
from repro.core.engine import wheel
from repro.core.errors import CheckTimeout
from repro.core.multiwait import MultiWait
from repro.testkit import (
    assert_counter_quiescent,
    assert_multiwait_closed,
    interleave,
)


@interleave(schedules=14)
def test_timeout_fires_vs_release_race(sched):
    """A short-fuse waiter racing the increments that satisfy it: the
    sweeper's fire_timeout and the release pass race for the entry's
    claim.  Both outcomes are legal; either way the deadline is disarmed
    and the counter drains clean."""
    counter = MonotonicCounter()
    outcome = []

    def impatient():
        try:
            counter.check(2, timeout=0.05)
            outcome.append("released")
        except CheckTimeout:
            outcome.append("timeout")

    sched.spawn("w", impatient)
    sched.spawn("inc1", counter.increment, 1)
    sched.spawn("inc2", counter.increment, 1)
    sched.run()
    assert outcome in (["released"], ["timeout"])
    assert_counter_quiescent(counter, expect_value=2)
    assert wheel().armed_count() == 0


@interleave(schedules=12)
def test_cancel_on_satisfy_leaves_no_armed_deadline(sched):
    """A far-deadline waiter satisfied by a release must *cancel* its
    wheel entry on the way out — a leaked deadline would keep the
    sweeper armed for 30s and fire a ghost set into whatever park the
    thread's recycled slot is in by then."""
    counter = MonotonicCounter()
    sched.spawn("w1", counter.check, 2, 30.0)
    sched.spawn("w2", counter.check, 2, 30.0)
    sched.spawn("inc", counter.increment, 2)
    sched.run()
    assert_counter_quiescent(counter, expect_value=2)
    assert wheel().armed_count() == 0


@interleave(schedules=12, scheduler="pct")
def test_mass_timeout_sweep_pct(sched):
    """Several waiters at distinct levels, none ever satisfied: the
    sweeper fires them all in one-or-more sweeps while the PCT adversary
    perturbs who adjudicates first.  Every waiter reports a genuine
    timeout and the wheel ends empty."""
    counter = MonotonicCounter()
    outcomes = []

    def impatient(level):
        try:
            counter.check(level, timeout=0.03)
            outcomes.append("released")
        except CheckTimeout:
            outcomes.append("timeout")

    for i in range(3):
        sched.spawn(f"w{i}", impatient, i + 1)
    sched.run()
    assert outcomes == ["timeout"] * 3
    assert_counter_quiescent(counter, expect_value=0)
    assert wheel().armed_count() == 0


@interleave(schedules=12, scheduler="pct")
def test_mixed_release_and_timeout_pct(sched):
    """Half the waiters get released, half can only time out, all on the
    same wheel: each entry's claim goes to exactly one side and neither
    population corrupts the other's adjudication."""
    counter = MonotonicCounter()
    outcomes = {}

    def waiter(name, level):
        try:
            counter.check(level, timeout=0.05)
            outcomes[name] = "released"
        except CheckTimeout:
            outcomes[name] = "timeout"

    sched.spawn("low", waiter, "low", 1)
    sched.spawn("high", waiter, "high", 50)
    sched.spawn("inc", counter.increment, 1)
    sched.run()
    assert outcomes["high"] == "timeout"
    assert outcomes["low"] in ("released", "timeout")
    assert_counter_quiescent(counter, expect_value=1)
    assert wheel().armed_count() == 0


@interleave(schedules=10)
def test_multiwait_timed_wait_rides_the_same_wheel(sched):
    """MultiWait's timed parks share the wheel: a wait_any satisfied by
    a racing increment cancels its entry; a genuine expiry removes the
    waiter record.  Either way close() finds nothing retained and the
    wheel ends empty."""
    a = MonotonicCounter(name="a")
    b = MonotonicCounter(name="b")
    mw = MultiWait([(a, 1), (b, 1)])
    outcome = []

    def joiner():
        try:
            mw.wait_any(timeout=0.05)
            outcome.append("woke")
        except CheckTimeout:
            outcome.append("timeout")

    sched.spawn("w", joiner)
    sched.spawn("inc", a.increment, 1)
    sched.run()
    assert outcome in (["woke"], ["timeout"])
    mw.close()
    assert_multiwait_closed(mw)
    assert wheel().armed_count() == 0
