"""PR-7 engine races, ported onto the exhaustive explorer.

The doorbell pop-claim race and the wheel-entry release-vs-timeout claim
were originally pinned as a handful of scripted schedules.  Here the
*whole* schedule space of each race is enumerated: every inequivalent
interleaving, with the exhaustiveness certificate asserted, so the claim
invariants ("exactly one winner", "no double set") are proven over the
space rather than spot-checked.
"""

from __future__ import annotations

import pytest

from repro.core.engine import Doorbell, ParkingSlot, WheelEntry
from repro.testkit import explore_model

pytestmark = pytest.mark.explore

FAST = dict(settle=0.004, stall_timeout=0.008)


def doorbell_model():
    """Two ringers race the one-shot pending token; one waiter consumes.

    Deliveries depend on the schedule: rings racing the same armed token
    collapse into one delivery; a ring after the waiter consumed (and
    re-armed) delivers again, banking a second set.
    """
    bell = Doorbell()
    delivered = {}

    def ringer(name):
        delivered[name] = bell.ring()

    def oracle(controller):
        wins = sum(delivered.values())
        # At least one ring always delivers; both only when the waiter's
        # consumption re-armed the token in between.
        assert wins in (1, 2), delivered
        return wins

    return {
        "r1": (ringer, "r1"),
        "r2": (ringer, "r2"),
        "w": bell.wait,
    }, oracle


def wheel_claim_model():
    """The release pass and the sweeper race for one entry's claim."""
    entry = WheelEntry(ParkingSlot(), deadline=0.0)

    def oracle(controller):
        # Exactly one side won; the slot took exactly one set (a second
        # set would have crashed the loser inside the run).
        assert entry.claimed
        assert entry.why in ("release", "timeout")
        return entry.why

    return {
        "rel": entry.release_wake,
        "tmo": entry.fire_timeout,
    }, oracle


def test_doorbell_ring_race_exhaustive():
    report = explore_model(doorbell_model, **FAST)
    report.check()
    assert "EXHAUSTIVE" in report.certificate
    # Both outcomes are reachable: coalesced rings (1 delivery) and
    # consume-then-ring-again (2 deliveries).
    assert report.states == {1, 2}
    assert report.schedules >= 4


def test_wheel_release_vs_timeout_exhaustive():
    report = explore_model(wheel_claim_model, **FAST)
    report.check()
    assert "EXHAUSTIVE" in report.certificate
    # The claim race is the whole model: each side can win.
    assert report.states == {"release", "timeout"}
    # Two workers, two gates each, total dependence on the entry: the
    # space is exactly the two claim orders.
    assert report.schedules == 2
