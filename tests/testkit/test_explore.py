"""Exhaustive exploration over counter models: the ISSUE's acceptance bar.

Each test enumerates *every* inequivalent schedule of a small model and
asserts the exhaustiveness certificate, so these are proofs about the
full schedule space, not samples.  Deterministic models make the counts
themselves stable, and the tests pin them: a changed count means the
schedule space (or the dependence relation) changed, which a reviewer
should look at either way.
"""

from __future__ import annotations

import time

import pytest

from repro.core import MonotonicCounter
from repro.testkit import explore_model
from repro.testkit.invariants import assert_counter_quiescent

pytestmark = pytest.mark.explore

# Tight-but-safe driving parameters: settle/stall only bound how long
# the controller waits for wakes to surface, and the models below are
# wake-driven (no timers), so short windows just cost retries at worst.
FAST = dict(settle=0.004, stall_timeout=0.008)


def two_thread_model():
    """One waiter, one incrementer: the smallest release/park interplay."""
    counter = MonotonicCounter()

    def oracle(controller):
        final = counter.value  # the quiescence check resets the counter
        assert_counter_quiescent(counter, expect_value=1)
        return final

    return {"w": (counter.check, 1), "inc": (counter.increment, 1)}, oracle


def coalesced_model():
    """Two waiters at different levels, one increment crossing both:
    the coalesced release pass (one sweep wakes two parked threads)."""
    counter = MonotonicCounter()

    def oracle(controller):
        final = counter.value  # the quiescence check resets the counter
        assert_counter_quiescent(counter, expect_value=2)
        return final

    return {
        "w1": (counter.check, 1),
        "w2": (counter.check, 2),
        "inc": (counter.increment, 2),
    }, oracle


def test_two_thread_model_exhaustive():
    report = explore_model(two_thread_model, **FAST)
    report.check()
    assert "EXHAUSTIVE" in report.certificate
    # The space: inc-first (fast-path check, 3 grants) plus the parked
    # variants differing in where the waiter's wake lands.
    assert report.schedules == 4
    assert report.states == {1}
    assert report.executions < 30


def test_coalesced_release_model_exhaustive():
    report = explore_model(coalesced_model, **FAST)
    report.check()
    assert "EXHAUSTIVE" in report.certificate
    # Every inequivalent interleaving of two checks against the
    # two-level release sweep; the pinned count is the acceptance bar.
    assert report.schedules == 77
    assert report.states == {2}
    # DPOR keeps the enumeration linear-ish in the class count — a blowup
    # here means the dependence relation regressed.
    assert report.executions < 6 * report.schedules


def test_certificate_reports_counts():
    report = explore_model(two_thread_model, **FAST)
    assert f"{report.schedules} inequivalent schedule(s)" in report.certificate
    assert f"in {report.executions} execution(s)" in report.certificate


def test_budget_exhaustion_is_not_certified():
    report = explore_model(coalesced_model, max_executions=5, **FAST)
    assert report.truncated
    assert not report.complete
    assert "INCOMPLETE" in report.certificate
    with pytest.raises(AssertionError, match="exploration incomplete"):
        report.check()


def test_oracle_failures_are_witnessed_not_fatal():
    def model():
        counter = MonotonicCounter()

        def oracle(controller):
            assert counter.value == 999, "planted oracle failure"
            return counter.value

        return {"w": (counter.check, 1), "inc": (counter.increment, 1)}, oracle

    report = explore_model(model, **FAST)
    assert report.failures  # every completed schedule fails the oracle
    assert report.complete  # ...but the space was still fully explored
    with pytest.raises(AssertionError, match="planted oracle failure"):
        report.check()
    report.check(allow_failures=True)


class TestDeadlockModels:
    """A waiter above the increment's reach: every schedule deadlocks."""

    @staticmethod
    def model():
        counter = MonotonicCounter()
        return {"w": (counter.check, 2), "inc": (counter.increment, 1)}

    def test_all_schedules_deadlock_with_instant_witnesses(self):
        report = explore_model(self.model, finish_timeout=0.2, **FAST)
        report.check(allow_deadlocks=True)
        assert report.schedules == 0  # no schedule completes
        assert report.deadlocks
        witness = report.deadlocks[0]
        assert witness.report is not None
        # Detected by the instant engine-park rule, not the timeout.
        assert witness.report.instant
        assert witness.report.wheel_armed == 0
        # The structured report names the parked worker and the level it
        # waits on — the who-waits-on-what snapshot.
        text = str(witness.report)
        assert "w: parked after 'park.enter'" in text
        assert "who waits on what" in text
        assert "level 2: 1 waiter(s)" in text

    def test_deadlock_witness_trace_is_replayable_text(self):
        report = explore_model(self.model, finish_timeout=0.2, **FAST)
        witness = report.deadlocks[0]
        # The witness carries the grant trace up to the deadlock.
        assert "w:park.enter" in witness.trace

    def test_detection_is_instant_not_timeout_scaled(self):
        # With a fallback timeout big enough to dominate the test's
        # runtime budget, only the instant path can finish in time.
        started = time.monotonic()
        report = explore_model(
            self.model,
            deadlock_timeout=30.0,
            deadlock_confirm=0.05,
            finish_timeout=0.2,
            max_executions=3,
            **FAST,
        )
        elapsed = time.monotonic() - started
        assert report.deadlocks
        assert all(w.report.instant for w in report.deadlocks)
        assert elapsed < 10.0, f"deadlock detection waited out timeouts: {elapsed:.1f}s"
