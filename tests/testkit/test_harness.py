"""The controller itself: gates, grants, blocking detection, traces.

These tests drive the harness with tiny purpose-built worker bodies
(appending to lists, taking plain locks) rather than the counters, so a
harness bug fails here and not in some counter interleaving test three
files away.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import MonotonicCounter
from repro.core import syncpoints
from repro.testkit import (
    Controller,
    ScheduleDeadlock,
    ScheduleError,
    ScheduleFailure,
    Trace,
    TraceStep,
    interleave,
    replay,
    run_script,
)
from repro.testkit import grant, probe, run_thread, until


class TestTrace:
    def test_roundtrip(self):
        trace = Trace([TraceStep("w0", "start"), TraceStep("w0", "park.enter")])
        assert str(trace) == "w0:start w0:park.enter"
        assert Trace.parse(str(trace)) == trace

    def test_parse_rejects_malformed_tokens(self):
        for bad in ["nopoint", ":park.enter", "w:"]:
            with pytest.raises(ValueError, match="malformed"):
                Trace.parse(bad)

    def test_empty_trace(self):
        assert len(Trace()) == 0
        assert Trace.parse("") == Trace()


class TestSpawnValidation:
    def test_rejects_colon_and_whitespace_names(self):
        controller = Controller()
        for bad in ["a:b", "a b", "a\tb", ""]:
            with pytest.raises(ValueError):
                controller.spawn(bad, lambda: None)

    def test_rejects_duplicate_names(self):
        controller = Controller()
        controller.spawn("w", lambda: None)
        with pytest.raises(ValueError, match="duplicate"):
            controller.spawn("w", lambda: None)

    def test_rejects_spawn_after_start(self):
        controller = Controller()
        controller.spawn("w", lambda: None)
        with controller:
            with pytest.raises(ScheduleError, match="after start"):
                controller.spawn("late", lambda: None)
            controller.finish()


class TestGating:
    def test_start_gate_orders_launch(self):
        """Workers run their bodies strictly in grant order when each is
        run to completion before the next grant."""
        order = []
        controller = Controller()
        for name in ["a", "b", "c"]:
            controller.spawn(name, order.append, name)
        with controller:
            for name in ["c", "a", "b"]:
                assert controller.run_thread(name) == "done"
        assert order == ["c", "a", "b"]
        assert str(controller.trace) == "c:start a:start b:start"

    def test_until_walks_through_intermediate_gates(self):
        counter = MonotonicCounter()
        controller = Controller()
        controller.spawn("w", counter.check, 1)
        with controller:
            # start and check.lock are granted on the way to park.enter.
            controller.until("w", "park.enter")
            assert [s.point for s in controller.trace] == ["start", "check.lock"]
            controller.grant("w", "park.enter")
            counter.increment(1)  # main thread passes through ungated
            controller.finish()
        controller.raise_worker_errors()

    def test_until_fails_if_worker_finishes_first(self):
        controller = Controller()
        controller.spawn("w", lambda: None)
        with controller:
            with pytest.raises(ScheduleError, match="finished before reaching"):
                controller.until("w", "park.enter", timeout=2.0)

    def test_grant_asserts_gate_point(self):
        counter = MonotonicCounter()
        counter.increment(5)
        controller = Controller()
        controller.spawn("w", counter.increment, 1)
        with controller:
            controller.grant("w", "start")
            with pytest.raises(ScheduleError, match="expected 'park.enter'"):
                controller.grant("w", "park.enter", timeout=2.0)
            controller.finish()

    def test_unknown_worker_name(self):
        controller = Controller()
        controller.spawn("w", lambda: None)
        with controller:
            with pytest.raises(ScheduleError, match="unknown worker"):
                controller.grant("nope")
            controller.finish()

    def test_unregistered_threads_pass_through(self):
        """Sync points fired by threads the controller does not own are
        ignored — the instrumented world keeps working mid-schedule."""
        counter = MonotonicCounter()
        controller = Controller()
        controller.spawn("w", counter.check, 2)
        with controller:
            controller.until("w", "park.enter")
            # Main thread and a foreign thread drive the counter freely.
            counter.increment(1)
            foreign = threading.Thread(target=counter.increment, args=(1,))
            foreign.start()
            foreign.join()
            controller.finish()
        controller.raise_worker_errors()
        assert counter.value == 2

    def test_run_thread_reports_blocked_on_real_lock(self):
        gate_lock = threading.Lock()
        counter = MonotonicCounter()

        def holder():
            with gate_lock:
                counter.increment(1)  # a sync point inside the lock

        def contender():
            counter.increment(1)  # gates first, so we can position it
            with gate_lock:
                pass

        controller = Controller()
        controller.spawn("holder", holder)
        controller.spawn("contender", contender)
        with controller:
            controller.until("holder", "increment.lock")  # holds gate_lock now
            assert controller.run_thread("contender") == "blocked"
            assert controller.run_thread("holder") == "done"
            # The lock is free; the blocked worker can now finish.
            controller.finish()
        controller.raise_worker_errors()


class TestErrorsAndDeadlock:
    def test_worker_exception_is_captured_and_reraised(self):
        def boom():
            raise RuntimeError("kaboom")

        controller = Controller()
        controller.spawn("w", boom)
        with controller:
            assert controller.run_thread("w") == "done"
            assert isinstance(controller.errors["w"], RuntimeError)
            with pytest.raises(ScheduleError, match="kaboom"):
                controller.raise_worker_errors()

    def test_point_invariant_failure_fails_the_worker(self):
        counter = MonotonicCounter()
        controller = Controller()
        controller.spawn("w", counter.increment, 1)
        controller.invariant_at(
            "increment.lock", lambda obj: (_ for _ in ()).throw(AssertionError("bad state"))
        )
        with controller:
            controller.run_thread("w")
            with pytest.raises(ScheduleError, match="bad state"):
                controller.raise_worker_errors()

    def test_scheduler_deadlock_detection(self):
        """A waiter parked with no incrementer in sight is reported as a
        schedule deadlock, with the trace attached."""
        from repro.core.errors import CheckTimeout
        from repro.testkit import RandomScheduler

        counter = MonotonicCounter()

        def doomed_waiter():
            try:
                counter.check(1, timeout=5.0)
            except CheckTimeout:
                pass

        controller = Controller(deadlock_timeout=0.2)
        controller.spawn("w", doomed_waiter)
        with controller:
            with pytest.raises(ScheduleDeadlock, match="blocked in real primitives"):
                controller.run_scheduler(RandomScheduler(0))
            counter.increment(1)  # let the waiter out before close()
            controller.finish()

    def test_hook_is_uninstalled_after_close(self):
        controller = Controller()
        controller.spawn("w", lambda: None)
        with controller:
            assert syncpoints.enabled
            controller.finish()
        assert not syncpoints.enabled

    def test_hook_uninstalled_even_when_schedule_raises(self):
        controller = Controller()
        controller.spawn("w", lambda: None)
        with pytest.raises(ScheduleError):
            with controller:
                controller.grant("other-name")
        assert not syncpoints.enabled


class TestScriptsAndReplay:
    def test_run_script_pins_an_interleaving(self):
        counter = MonotonicCounter()
        seen = {}

        controller = run_script(
            [
                until("w", "park.enter"),
                grant("w"),
                until("inc", "increment.drain"),
                probe(lambda c: seen.update(value=counter._value)),
                run_thread("w", expect="blocked"),
                grant("inc"),
            ],
            {"w": (counter.check, 3), "inc": (counter.increment, 3)},
        )
        # At the increment.drain gate the value was already published...
        assert seen["value"] == 3
        # ...and the grant order is exactly what the script imposed.
        assert [str(s) for s in controller.trace] == [
            "w:start",
            "w:check.lock",
            "w:park.enter",
            "inc:start",
            "inc:increment.lock",
            "inc:increment.release",
            "inc:increment.drain",
        ]

    def test_script_expect_mismatch_raises(self):
        counter = MonotonicCounter()
        counter.increment(1)
        with pytest.raises(ScheduleError, match="ended 'done'"):
            run_script(
                [run_thread("w", expect="blocked")],
                {"w": (counter.check, 1)},
            )

    def test_replay_reimposes_trace(self):
        counter = MonotonicCounter()
        controller = run_script(
            [
                until("w", "park.enter"),
                grant("w"),
                run_thread("inc"),
            ],
            {"w": (counter.check, 2), "inc": (counter.increment, 2)},
        )
        fresh = MonotonicCounter()
        result = replay(
            str(controller.trace),
            {"w": (fresh.check, 2), "inc": (fresh.increment, 2)},
        )
        assert result.divergences == 0
        recorded = [str(s) for s in controller.trace]
        replayed = [str(s) for s in result.controller.trace]
        # Every recorded step is re-imposed, in order.  The replay's
        # deterministic drain then grants (and records) the tail steps
        # the recording's concurrent free-run finish let through
        # unrecorded — here the waiter's last-leaver pop.
        assert replayed[: len(recorded)] == recorded
        assert all(step.startswith("w:") for step in replayed[len(recorded):])
        assert fresh.value == 2

    def test_replay_rejects_unknown_thread(self):
        with pytest.raises(ScheduleError, match="trace names worker"):
            replay("ghost:start", {"w": (lambda: None,)})

    def test_replay_is_lenient_about_divergence(self):
        """A trace recorded against different code (extra steps for a
        worker that finishes early here) replays with divergences counted
        instead of failing."""
        counter = MonotonicCounter()
        counter.increment(1)
        result = replay(
            # The recorded run parked; this run fast-paths and finishes
            # after check.lock never fires.
            "w:start w:check.lock w:park.enter",
            {"w": (counter.check, 1)},
            step_timeout=0.3,
        )
        assert result.divergences >= 1
        assert result.skipped  # the impossible steps were skipped, not fatal


class TestInterleaveDecorator:
    def test_runs_body_once_per_schedule(self):
        runs = []

        @interleave(schedules=3, seed=7)
        def body(sched):
            runs.append(sched.seed)
            sched.spawn("w", lambda: None)
            sched.run()

        body()
        assert runs == [7, 8, 9]

    def test_failure_wraps_with_trace_and_seed(self):
        @interleave(schedules=2, seed=123)
        def body(sched):
            sched.spawn("w", lambda: None)
            sched.run()
            raise AssertionError("schedule-level assertion")

        with pytest.raises(ScheduleFailure) as info:
            body()
        assert info.value.seed == 123
        assert "replay" in str(info.value)
        assert isinstance(info.value.trace, Trace)

    def test_trace_dump_on_failure(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TESTKIT_TRACE_DIR", str(tmp_path))

        @interleave(schedules=1, seed=5)
        def body(sched):
            sched.spawn("w", lambda: None)
            sched.run()
            raise AssertionError("dump me")

        with pytest.raises(ScheduleFailure):
            body()
        dumps = list(tmp_path.glob("body-seed5.trace"))
        assert len(dumps) == 1
        assert dumps[0].read_text().strip() == "w:start"

    def test_env_seed_and_scale_override(self, monkeypatch):
        monkeypatch.setenv("TESTKIT_SEED", "1000")
        monkeypatch.setenv("TESTKIT_SCHEDULES_SCALE", "2")
        seeds = []

        @interleave(schedules=2, seed=7)
        def body(sched):
            seeds.append(sched.seed)
            sched.spawn("w", lambda: None)
            sched.run()

        body()
        assert seeds == [1000, 1001, 1002, 1003]

    def test_requires_sched_parameter(self):
        with pytest.raises(TypeError, match="first parameter"):
            @interleave(schedules=1)
            def body():  # pragma: no cover - rejected at decoration
                pass

    def test_marker_applied(self):
        @interleave(schedules=1)
        def body(sched):  # pragma: no cover - never run
            pass

        marks = getattr(body, "pytestmark", [])
        assert any(m.name == "interleave" for m in marks)
