"""MultiWait under adversarial schedules.

The subscription strategy has three racy seams: callbacks firing while
the waiter is still registering, ``close()`` racing a late callback, and
``wait_any`` waking between two satisfactions.  Each gets schedules here,
plus a scripted pin of the close-vs-fire race.
"""

from __future__ import annotations

from repro.core import MonotonicCounter
from repro.core.multiwait import MultiWait
from repro.testkit import (
    assert_counter_quiescent,
    assert_multiwait_closed,
    grant,
    interleave,
    run_script,
    run_thread,
    until,
)


@interleave(schedules=12)
def test_wait_all_joins_under_any_schedule(sched):
    """Producers on two counters, a joiner over both: wherever the
    registration lands relative to the increments, wait_all returns and
    every subscription is reclaimed."""
    a, b = MonotonicCounter(), MonotonicCounter()
    seen = []

    def joiner():
        with MultiWait([(a, 1), (b, 1)]) as mw:
            mw.wait_all()
            seen.append(mw.satisfied)
            closed = mw
        assert_multiwait_closed(closed)

    sched.spawn("join", joiner)
    sched.spawn("incA", a.increment, 1)
    sched.spawn("incB", b.increment, 1)
    sched.run()
    assert seen == [frozenset({0, 1})]
    assert_counter_quiescent(a, expect_value=1)
    assert_counter_quiescent(b, expect_value=1)


@interleave(schedules=12, scheduler="pct")
def test_wait_any_reclaims_the_loser(sched):
    """Only one of two watched counters is ever incremented: wait_any
    returns with the winner satisfied, and closing must cancel the other
    subscription so the loser counter holds no residue."""
    a, b = MonotonicCounter(), MonotonicCounter()
    seen = []

    def racer():
        with MultiWait([(a, 1), (b, 1)]) as mw:
            seen.append(mw.wait_any())

    sched.spawn("race", racer)
    sched.spawn("incA", a.increment, 1)
    sched.run()
    assert len(seen) == 1 and 0 in seen[0]
    assert_counter_quiescent(a, expect_value=1)
    # The loser's subscription node must have been reclaimed by close().
    assert_counter_quiescent(b, expect_value=0)


@interleave(schedules=10)
def test_sequential_check_all_agrees(sched):
    """check_all (the sequential strategy) under the same schedules: the
    stability argument says it joins wherever the increments land."""
    from repro.core.multiwait import check_all

    a, b = MonotonicCounter(), MonotonicCounter()
    sched.spawn("join", check_all, [(a, 1), (b, 2)])
    sched.spawn("incA", a.increment, 1)
    sched.spawn("incB1", b.increment, 1)
    sched.spawn("incB2", b.increment, 1)
    sched.run()
    assert_counter_quiescent(a, expect_value=1)
    assert_counter_quiescent(b, expect_value=2)


def test_scripted_close_races_late_callback():
    """Pin the close-vs-fire race: the producer is paused at the node's
    subscriber-callback pass (after the satisfaction is decided, before
    the callback runs), the waiter times out and closes the MultiWait,
    and only then is the callback delivered — into a closed object, which
    must absorb it harmlessly and leak nothing."""
    from repro.core.errors import CheckTimeout

    a = MonotonicCounter()
    holder: list[MultiWait] = []

    def waiter():
        mw = MultiWait([(a, 1)])
        holder.append(mw)
        try:
            mw.wait_all(timeout=0.05)
        except CheckTimeout:
            pass
        mw.close()

    controller = run_script(
        [
            until("w", "multiwait.park"),
            grant("w"),                          # parks with a short timeout
            until("inc", "node.subscribers"),    # satisfaction decided...
            until("w", "multiwait.close"),       # ...but w times out first
            run_thread("w", expect="done"),      # close() cancels + returns
            run_thread("inc", expect="done"),    # late callback hits closed mw
        ],
        {"w": waiter, "inc": (a.increment, 1)},
    )
    assert not controller.errors
    mw = holder[0]
    assert_multiwait_closed(mw)
    # The late delivery landed in the satisfied set of the closed object.
    assert mw.satisfied == frozenset({0})
    assert_counter_quiescent(a, expect_value=1)
