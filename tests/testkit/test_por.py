"""Unit tests for the DPOR substrate: dependence, clocks, races, keys."""

from __future__ import annotations

from repro.testkit.por import (
    GrantEvent,
    ObjLabeler,
    annotate,
    canonical_key,
    conflicts,
    family_of,
    footprints_conflict,
    happens_before_clocks,
    racing_pairs,
)


def ev(index, thread, point, label=None):
    return GrantEvent(index, thread, point, family_of(point, label))


class TestDependence:
    def test_object_scoped_points_conflict_only_on_same_object(self):
        assert conflicts(ev(0, "a", "increment.lock", "o0"), ev(1, "b", "check.lock", "o0"))
        assert not conflicts(ev(0, "a", "increment.lock", "o0"), ev(1, "b", "check.lock", "o1"))

    def test_same_thread_always_conflicts(self):
        assert conflicts(ev(0, "a", "start"), ev(1, "a", "start"))
        assert conflicts(ev(0, "a", "park.enter", "o0"), ev(1, "a", "park.enter", "o0"))

    def test_wildcard_points_conflict_with_everything(self):
        node_signal = ev(0, "a", "node.signal")
        assert node_signal.family is None
        assert conflicts(node_signal, ev(1, "b", "increment.lock", "o0"))
        assert conflicts(node_signal, ev(1, "b", "park.enter", "o0"))

    def test_start_segments_commute_with_each_other(self):
        assert not conflicts(ev(0, "a", "start"), ev(1, "b", "start"))

    def test_start_commutes_with_value_preserving_segments(self):
        # check.lock / park.* never publish a counter value, so a
        # pre-first-gate read cannot observe them.
        assert not conflicts(ev(0, "a", "start"), ev(1, "b", "check.lock", "o0"))
        assert not conflicts(ev(0, "a", "start"), ev(1, "b", "park.drain", "o0"))

    def test_start_ordered_against_value_publication(self):
        assert conflicts(ev(0, "a", "start"), ev(1, "b", "increment.lock", "o0"))
        assert conflicts(ev(0, "a", "start"), ev(1, "b", "node.signal"))

    def test_park_enter_is_thread_local(self):
        park = ev(0, "a", "park.enter", "o0")
        # Two threads parking their own slots commute; parking commutes
        # with the increment's critical section on the same counter...
        assert not conflicts(park, ev(1, "b", "park.enter", "o0"))
        assert not conflicts(park, ev(1, "b", "increment.release", "o0"))
        assert not conflicts(park, ev(1, "b", "check.lock", "o0"))
        # ...but stays ordered against wake delivery (wildcard).
        assert conflicts(park, ev(1, "b", "node.signal"))

    def test_symmetric_points_commute_across_threads(self):
        assert not conflicts(ev(0, "a", "check.lock", "o0"), ev(1, "b", "check.lock", "o0"))
        assert not conflicts(ev(0, "a", "park.drain", "o0"), ev(1, "b", "park.drain", "o0"))
        # Symmetry is per-point: mixed pairs keep the family conflict.
        assert conflicts(ev(0, "a", "check.lock", "o0"), ev(1, "b", "park.drain", "o0"))

    def test_footprints_conflict_mirrors_event_dependence(self):
        assert footprints_conflict(("increment.lock", "o0"), ("check.lock", "o0"))
        assert not footprints_conflict(("increment.lock", "o0"), ("park.enter", "o0"))
        assert not footprints_conflict(("start", None), ("start", None))
        assert footprints_conflict(("doorbell.ring", "o0"), ("doorbell.wait", "o0"))
        assert not footprints_conflict(("doorbell.ring", "o0"), ("doorbell.wait", "o1"))


class TestObjLabeler:
    def test_labels_by_first_sighting(self):
        labeler = ObjLabeler()
        a, b = object(), object()
        assert labeler.label(a) == "o0"
        assert labeler.label(b) == "o1"
        assert labeler.label(a) == "o0"
        assert labeler.label(None) is None

    def test_id_reuse_cannot_alias(self):
        labeler = ObjLabeler()
        for i in range(64):
            labeler.label(object())  # would recycle ids without the keep-list
        assert len({labeler.label(obj) for obj in labeler._keep}) == 64


class _Step:
    def __init__(self, thread, point, obj=None):
        self.thread, self.point, self.obj = thread, point, obj


class TestClocksAndRaces:
    def test_annotate_labels_objects(self):
        counter = object()
        events = annotate(
            [_Step("a", "start"), _Step("a", "increment.lock", counter)]
        )
        assert events[0].family is None
        assert events[1].family == ("obj", "o0")

    def test_happens_before_orders_dependent_chain(self):
        events = [
            ev(0, "a", "increment.lock", "o0"),
            ev(1, "b", "check.lock", "o0"),
        ]
        clocks = happens_before_clocks(events)
        assert clocks[0].happens_before(clocks[1])

    def test_independent_grants_stay_concurrent(self):
        events = [
            ev(0, "a", "increment.lock", "o0"),
            ev(1, "b", "increment.lock", "o1"),
        ]
        clocks = happens_before_clocks(events)
        assert clocks[0].concurrent_with(clocks[1])

    def test_racing_pairs_finds_adjacent_reversals(self):
        events = [
            ev(0, "a", "increment.lock", "o0"),
            ev(1, "b", "check.lock", "o0"),
        ]
        assert racing_pairs(events) == [(0, 1)]

    def test_transitively_ordered_pair_is_not_a_race(self):
        # a -> b (same obj), b -> c (same obj): a -> c is implied, so
        # reversing (a, c) alone is not a schedulable choice.
        events = [
            ev(0, "a", "increment.lock", "o0"),
            ev(1, "b", "increment.lock", "o0"),
            ev(2, "c", "increment.lock", "o0"),
        ]
        assert (0, 2) not in racing_pairs(events)
        assert (0, 1) in racing_pairs(events)
        assert (1, 2) in racing_pairs(events)


class TestCanonicalKey:
    def test_commuting_interleavings_share_a_key(self):
        ab = [ev(0, "a", "increment.lock", "o0"), ev(1, "b", "increment.lock", "o1")]
        ba = [ev(0, "b", "increment.lock", "o1"), ev(1, "a", "increment.lock", "o0")]
        assert canonical_key(ab) == canonical_key(ba)

    def test_dependent_interleavings_differ(self):
        ab = [ev(0, "a", "increment.lock", "o0"), ev(1, "b", "check.lock", "o0")]
        ba = [ev(0, "b", "check.lock", "o0"), ev(1, "a", "increment.lock", "o0")]
        assert canonical_key(ab) != canonical_key(ba)

    def test_key_levels_are_foata_fronts(self):
        events = [
            ev(0, "a", "start"),
            ev(1, "b", "start"),
            ev(2, "a", "increment.lock", "o0"),
        ]
        key = canonical_key(events)
        # Both starts commute into one front; the lock forms the next.
        assert key[0] == (("a", "start"), ("b", "start"))
        assert key[1] == (("a", "increment.lock"),)
