"""The rate limiter under adversarial schedules.

Two invariants carry the quota service:

* **never over quota** — however admits, opportunistic rolls, and
  explicit rolls interleave, a key's window estimate never exceeds the
  limit, because every decision reads both counters under the entry
  lock and ``retired`` is always a sample from at least one window ago.
* **eviction never orphans a live acquirer** — an entry is pinned from
  ``_touch`` until the decision (and through the park on reject), so
  the LRU sweep can never close counters a thread is about to decide
  on or is parked on.  Without the pin, a key could be evicted and
  re-created mid-acquire, splitting the window estimate across two
  counter pairs — over quota.
"""

from __future__ import annotations

from repro.apps.ratelimit import RateLimiter
from repro.testkit import interleave, probe, run_script, run_thread, until


def fixed_clock(value: float = 0.0):
    def clock() -> float:
        return clock.now

    clock.now = value
    return clock


@interleave(schedules=12)
def test_never_admits_over_quota(sched):
    """All threads race try_acquire on one key, limit below the thread
    count: exactly ``limit`` admits, whatever the schedule."""
    clock = fixed_clock()
    limiter = RateLimiter(2, 1.0, clock=clock)
    results = {}

    def worker(name):
        results[name] = limiter.try_acquire("k")

    for i in range(sched.threads):
        sched.spawn(f"t{i}", worker, f"t{i}")
    sched.run()
    assert sum(results.values()) == 2
    snap = limiter.snapshot()["k"]
    assert snap["admitted"] == 2
    assert snap["in_window"] <= limiter.limit
    assert snap["pins"] == 0


@interleave(schedules=10, scheduler="pct")
def test_rolls_racing_admits_stay_under_quota(sched):
    """Admits interleaved with explicit rolls at a later clock: rolls may
    free quota mid-race, but the estimate never exceeds the limit and
    every window holds at most ``limit`` admissions."""
    clock = fixed_clock()
    limiter = RateLimiter(2, 1.0, roll_interval=1000.0, clock=clock)
    results = []

    def acquirer():
        results.append(limiter.try_acquire("k"))

    def roller():
        # A roll from a future instant: everything marked so far ages out.
        limiter.roll("k", now=clock.now + 5.0)

    for i in range(sched.threads - 1):
        sched.spawn(f"a{i}", acquirer)
    sched.spawn("roll", roller)
    sched.run()
    snap = limiter.snapshot().get("k")
    if snap is not None:
        assert snap["in_window"] <= limiter.limit
        assert snap["pins"] == 0
    # The roll retires at most what was admitted before it sampled, so
    # even with freed quota the admit count stays within two windows.
    assert sum(results) <= 2 * limiter.limit


@interleave(schedules=10)
def test_eviction_pressure_never_orphans_a_key(sched):
    """try_acquire over more keys than max_keys, every schedule: each
    key's quota holds and no thread ever decides against a re-created
    counter pair (which would show up as an over-limit window)."""
    clock = fixed_clock()
    limiter = RateLimiter(1, 1.0, max_keys=2, clock=clock)
    keys = [f"k{i % 3}" for i in range(sched.threads)]
    results = []

    def worker(key):
        results.append((key, limiter.try_acquire(key)))

    for i, key in enumerate(keys):
        sched.spawn(f"t{i}", worker, key)
    sched.run()
    for snap in limiter.snapshot().values():
        assert snap["in_window"] <= limiter.limit
        assert snap["pins"] == 0
    # Per key, at most one admit can have landed on any single counter
    # pair; an orphaned-entry split would allow two.
    for key in set(keys):
        admitted = sum(ok for k, ok in results if k == key)
        assert admitted <= limiter.limit, f"{key} over-admitted: {results}"


@interleave(schedules=8)
def test_parked_waiter_survives_eviction_pressure(sched):
    """A blocked acquirer parked on a full key, LRU churn from other
    keys, and the roll that frees it: the waiter must always be woken
    (an eviction pulling its counters would strand it — the harness
    reports that as a deadlock)."""
    limiter = RateLimiter(1, 1.0, max_keys=2,
                          roll_interval=1000.0, clock=fixed_clock())
    assert limiter.try_acquire("a")  # fill the quota before the race
    results = {}

    def waiter():
        results["a"] = limiter.acquire("a")

    def churn(key):
        results[key] = limiter.try_acquire(key)

    def releaser():
        limiter.roll("a", now=5.0)

    sched.spawn("wait", waiter)
    sched.spawn("churn-b", churn, "b")
    sched.spawn("churn-c", churn, "c")
    sched.spawn("roll", releaser)
    sched.run()
    assert results["a"] is True
    assert "a" in limiter.keys()
    assert limiter.snapshot()["a"]["pins"] == 0


def test_scripted_pin_blocks_eviction_at_the_decision_gate():
    """The pin protocol, pinned as one exact interleaving: a thread
    paused at the admission gate (touched, not yet decided) while
    another floods the LRU — the sweep must skip the pinned entry, and
    the paused thread's admit must land on the original counters."""
    limiter = RateLimiter(1, 1.0, max_keys=1, clock=fixed_clock())

    controller = run_script(
        [
            until("t1", "ratelimit.lock"),      # touched "a": pin held
            probe(lambda c: _assert_pinned(limiter, "a")),
            run_thread("flood", expect="done"),  # touches "b": sweep runs
            probe(lambda c: _assert_survived(limiter, "a")),
            run_thread("t1", expect="done"),     # decides on the live entry
        ],
        {
            "t1": (limiter.try_acquire, "a"),
            "flood": (limiter.try_acquire, "b"),
        },
    )
    points = {step.point for step in controller.trace}
    assert "ratelimit.lock" in points
    snap = limiter.snapshot()["a"]
    assert snap["admitted"] == 1 and snap["pins"] == 0


def _assert_pinned(limiter, key):
    assert limiter._entries[key].pins == 1, "touch did not pin the entry"


def _assert_survived(limiter, key):
    assert key in limiter._entries, "eviction swept a pinned entry"
