"""Replay semantics for truncated and minimized traces.

A shrunk trace is not a full recording: the boring grants are gone and
each surviving step means "walk this thread to this point, then let it
through" (``mode="until"``).  These tests pin that mode, the strict
escalations (:class:`StaleTraceError` instead of silently free-running
a trace the code has outgrown), and the gate-to-gate serialization
(:meth:`Controller.settle`) that makes a replayed order mean what the
recorded order meant.
"""

from __future__ import annotations

import pytest

from repro.core import MonotonicCounter
from repro.testkit import (
    Controller,
    ScheduleError,
    StaleTraceError,
    replay,
)
from repro.testkit.trace import Trace

from tests.testkit.prefix_counter import drain_leak_model


def counter_model():
    counter = MonotonicCounter()
    return counter, {"w": (counter.check, 1), "inc": (counter.increment, 1)}


class TestUntilMode:
    def test_truncated_trace_positions_then_grants(self):
        """Two positioning steps stand in for the whole recording: the
        replayer walks each thread through the deleted boring gates."""
        counter, threads = counter_model()
        result = replay(
            "w:park.enter inc:increment.release", threads, mode="until"
        )
        assert result.imposed == 2
        assert result.divergences == 0
        # The intermediate gates were granted (and recorded) on the way.
        steps = [str(step) for step in result.controller.trace]
        assert steps.index("w:check.lock") < steps.index("w:park.enter")
        assert steps.index("inc:increment.lock") < steps.index(
            "inc:increment.release"
        )
        assert counter.value == 1

    def test_minimized_leak_trace_is_a_complete_reproduction(self):
        """The 2-step minimal the shrinker finds for the PR-2 leak
        carries enough schedule to reproduce it from nothing else."""
        counter, threads, leaked = drain_leak_model()
        result = replay(
            "w:park.enter inc:increment.release", threads, mode="until"
        )
        assert leaked(result.controller)

    def test_stale_minimized_step_counts_as_divergence(self):
        """The same minimal trace replayed against *fixed* code: the
        waiter never wakes mid-critical-section, so the third recorded
        positioning step cannot be imposed — counted, not hidden."""
        counter, threads = counter_model()
        result = replay(
            "w:park.enter inc:increment.release w:park.drain",
            threads,
            mode="until",
            step_timeout=0.3,
        )
        assert result.imposed == 2
        assert result.divergences == 1
        assert result.skipped == ["w:park.drain"]
        # The deterministic drain still completes the run cleanly.
        assert counter.value == 1

    def test_mode_is_validated(self):
        with pytest.raises(ValueError, match="mode must be"):
            replay("w:start", {"w": (lambda: None,)}, mode="fast")


class TestStrictMode:
    def test_unimposable_step_raises(self):
        counter = MonotonicCounter()
        counter.increment(1)  # fast path: w never reaches park.enter
        with pytest.raises(StaleTraceError, match="could not be re-imposed"):
            replay(
                "w:park.enter",
                {"w": (counter.check, 1)},
                mode="until",
                strict=True,
                step_timeout=0.3,
            )

    def test_gate_point_mismatch_raises(self):
        counter, threads = counter_model()
        # Grant-mode: the recorded first gate for w is start, not
        # check.lock — a strict replay must refuse to reinterpret it.
        with pytest.raises(StaleTraceError, match="expected gate"):
            replay(
                "w:check.lock", threads, mode="grant", strict=True,
                step_timeout=0.3,
            )

    def test_fully_stale_trace_raises_even_leniently(self):
        counter = MonotonicCounter()
        counter.increment(1)  # every step of the recording is now dead
        with pytest.raises(StaleTraceError, match="none of its 2 step"):
            replay(
                "w:park.enter w:park.drain",
                {"w": (counter.check, 1)},
                mode="until",
                step_timeout=0.3,
            )


class TestSettle:
    def test_settle_waits_out_the_granted_segment(self):
        """grant() opens the gate and returns; settle() is the fence
        that makes the released segment's effects visible."""
        counter = MonotonicCounter()
        controller = Controller()
        controller.spawn("inc", counter.increment, 1)
        with controller:
            controller.until("inc", "increment.lock")
            controller.grant("inc")
            controller.settle()
            # Deterministic, not racy: the whole increment (its only
            # remaining gate-free segment) has run.
            assert counter.value == 1
            controller.finish()
        controller.raise_worker_errors()

    def test_settle_returns_when_workers_park(self):
        """A segment that parks in a real primitive cannot finish; settle
        returns after its change-free window instead of hanging."""
        counter = MonotonicCounter()
        controller = Controller()
        controller.spawn("w", counter.check, 1)
        controller.spawn("inc", counter.increment, 1)
        with controller:
            controller.until("w", "park.enter")
            controller.grant("w")      # parks on the engine slot
            controller.settle(0.05)    # must not deadlock the test thread
            controller.run_thread("inc", timeout=5.0)
            controller.finish()
        controller.raise_worker_errors()
        assert counter.value == 1
