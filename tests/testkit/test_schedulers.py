"""Scheduling policies: determinism, PCT demotion, construction errors."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.core import MonotonicCounter
from repro.testkit import (
    Controller,
    PCTScheduler,
    RandomScheduler,
    make_scheduler,
)


@dataclass
class FakeWorker:
    name: str
    point: str = "start"


def choices(scheduler, rounds):
    """Feed a fixed 3-worker candidate list and record the picks."""
    workers = [FakeWorker("a"), FakeWorker("b"), FakeWorker("c")]
    return [scheduler.choose(workers, step).name for step in range(rounds)]


class TestRandomScheduler:
    def test_same_seed_same_choices(self):
        assert choices(RandomScheduler(7), 20) == choices(RandomScheduler(7), 20)

    def test_different_seed_different_choices(self):
        runs = {tuple(choices(RandomScheduler(seed), 20)) for seed in range(5)}
        assert len(runs) > 1

    def test_eventually_picks_everyone(self):
        assert set(choices(RandomScheduler(0), 50)) == {"a", "b", "c"}


class TestPCTScheduler:
    def test_deterministic(self):
        a = choices(PCTScheduler(3, depth=2, horizon=16), 15)
        b = choices(PCTScheduler(3, depth=2, horizon=16), 15)
        assert a == b

    def test_depth_zero_is_strict_priority(self):
        """With no change points the same leader wins every round it is
        available."""
        picks = choices(PCTScheduler(1, depth=0), 10)
        assert len(set(picks)) == 1

    def test_demotion_changes_the_leader(self):
        """With change points covering every step, the leader is demoted
        whenever the horizon says so — over enough rounds with 3 workers
        at least two distinct workers must get picked."""
        picks = choices(PCTScheduler(2, depth=10, horizon=12), 11)
        assert len(set(picks)) >= 2

    def test_priorities_assigned_lazily(self):
        scheduler = PCTScheduler(0, depth=0)
        scheduler.choose([FakeWorker("a")], 0)
        assert set(scheduler._priority) == {"a"}
        scheduler.choose([FakeWorker("a"), FakeWorker("b")], 1)
        assert set(scheduler._priority) == {"a", "b"}

    def test_validation(self):
        with pytest.raises(ValueError):
            PCTScheduler(0, depth=-1)
        with pytest.raises(ValueError):
            PCTScheduler(0, horizon=1)


class TestMakeScheduler:
    def test_kinds(self):
        assert isinstance(make_scheduler("random", 1), RandomScheduler)
        pct = make_scheduler("pct", 1, pct_depth=5)
        assert isinstance(pct, PCTScheduler)
        assert pct.depth == 5

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("fair", 0)


class TestSchedulerDrivesController:
    def test_identical_seeds_produce_identical_traces(self):
        """End to end: a gate-driven body (no real condvar parking, so no
        real-time nondeterminism) scheduled twice with the same seed
        yields the same grant trace."""

        def one_run(seed):
            counter = MonotonicCounter()
            # Generous stall window: misclassifying a slow-but-running
            # worker as blocked is the one residual timing dependence.
            controller = Controller(stall_timeout=0.25)
            for i in range(3):
                controller.spawn(f"inc{i}", counter.increment, 1)
            with controller:
                controller.run_scheduler(RandomScheduler(seed))
                controller.finish()
            controller.raise_worker_errors()
            assert counter.value == 3
            return str(controller.trace)

        assert one_run(5) == one_run(5)

    def test_scheduler_rejecting_candidates_is_an_error(self):
        class Rogue:
            def choose(self, waiting, step):
                return FakeWorker("ghost")

        counter = MonotonicCounter()
        controller = Controller()
        controller.spawn("w", counter.increment, 1)
        from repro.testkit import ScheduleError

        with controller:
            with pytest.raises(ScheduleError, match="non-waiting worker"):
                controller.run_scheduler(Rogue())
            controller.finish()
