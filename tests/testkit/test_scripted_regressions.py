"""PR-2 review bugs, pinned as scripted testkit schedules.

The drain-leak bug: ``increment`` once made the release observable
*inside* its critical section.  A parked waiter resumes the moment its
wakeup is delivered, so a waiter woken at just the wrong moment could
observe the release, pop the node's drain countdown to zero, and run
the last-leaver ``_draining.pop`` — all before the increment performed
the ``_draining`` *insert*.  The entry then leaked forever and poisoned
every future ``reset()``.  (In the condvar era the early publication
was ``signaled``; on the engine the equivalent bug is delivering the
slot sets inside the critical section.)

The original reproduction (kept in
``tests/core/test_timeout_races.py::TestIncrementPreemptedMidCriticalSection``)
swaps in a hand-built trapping ``_drain_lock``.  Here the same
preemption is expressed as a *schedule* over the primitives' built-in
sync points — no monkeypatched attributes, no Frankenstein objects.
One schedule, two codebases:

* on a shared test model reproducing the pre-fix ``increment``
  (``tests/testkit/prefix_counter.py`` — the shrink tests minimize the
  same bug), the schedule deterministically produces the leak;
* on current code, the *same positioning script* shows the fix working:
  the waiter stays parked through the whole critical section, its
  timer's adjudication blocking on the counter lock until the
  increment's critical section (insert included) completes.
"""

from __future__ import annotations

from repro.core import MonotonicCounter
from repro.core.errors import CheckTimeout, ResetConcurrencyError
from repro.testkit import Controller, assert_counter_quiescent

import pytest

from tests.testkit.prefix_counter import PreFixCounter


def _drive_drain_race(counter):
    """The schedule, shared verbatim by both variants.

    1. Park a waiter (``check(1, timeout=0.25)``).
    2. Walk the increment to the ``increment.drain`` gate: release
       decided, tallies settled, ``_draining`` insert NOT yet performed,
       counter lock held.
    3. Run the waiter as far as it can get.  Pre-fix: its slot was set
       inside the critical section, so it is already awake — it pops
       the (absent) draining entry and finishes, the leak interleaving.
       Fixed: nothing has woken it; its 0.25s timer fires, claims the
       entry, and the provisional timeout goes to lock adjudication,
       which *blocks* on the counter lock the increment still holds.
    4. Release the increment; free-run everything.

    Returns ``(controller, result, waiter_outcome)``.
    """
    result = {}

    def waiter():
        try:
            counter.check(1, timeout=0.25)
            result["check"] = "released"
        except CheckTimeout:
            result["check"] = "timeout"

    controller = Controller()
    controller.spawn("w", waiter)
    controller.spawn("inc", counter.increment, 1)
    with controller:
        controller.until("w", "park.enter")
        controller.grant("w")                      # parks, 0.25s deadline
        controller.until("inc", "increment.drain")  # mid-critical-section
        outcome = controller.run_thread("w")
        controller.run_thread("inc", timeout=5.0)
        controller.finish()
    controller.raise_worker_errors()
    return controller, result, outcome


def test_drain_leak_reproduces_on_prefix_increment():
    """On the pre-fix increment the schedule leaks deterministically:
    the waiter returns *before* the insert, the entry stays in
    ``_draining`` forever, and ``reset()`` is poisoned."""
    counter = PreFixCounter()
    controller, result, outcome = _drive_drain_race(counter)

    # The waiter observed the early `signaled` and got out mid-release...
    assert outcome == "done"
    assert result["check"] == "released"
    # ...so the increment's later insert leaked:
    assert len(counter._draining) == 1, str(controller.trace)
    with pytest.raises(ResetConcurrencyError):
        counter.reset()


def test_same_schedule_clean_on_current_increment():
    """The identical schedule on current code: the early observation is
    impossible (slot sets only delivered after the critical section),
    the waiter's timer adjudication blocks until the insert has
    happened, and nothing leaks."""
    counter = MonotonicCounter()
    controller, result, outcome = _drive_drain_race(counter)

    # The waiter could NOT get past adjudication mid-release: it blocked
    # on the counter lock until the increment finished.
    assert outcome == "blocked", str(controller.trace)
    # Adjudication then found `released` set: success, not a timeout.
    assert result["check"] == "released"
    assert_counter_quiescent(counter, expect_value=1)


def test_release_unobservable_mid_critical_section():
    """Schedule-injected port of the trapping-``_drain_lock`` test: with
    the increment paused at the drain gate, nothing it has published may
    be observable through the node's ``signaled`` flag, and the waiter
    must still be parked."""
    counter = MonotonicCounter()
    outcomes = []
    captured = {}

    def waiter():
        counter.check(1, timeout=30)
        outcomes.append("ok")

    controller = Controller()
    controller.spawn("w", waiter)
    controller.spawn("inc", counter.increment, 1)
    with controller:
        controller.until("w", "park.enter")
        captured["node"] = next(iter(counter._waiters))
        controller.grant("w")  # parks for up to 30s
        controller.until("inc", "increment.drain")
        node = captured["node"]
        # Mid-critical-section: the release is decided under the counter
        # lock but must be invisible to the parked waiter.
        assert node.released
        assert not node.signaled
        assert outcomes == []
        controller.run_thread("inc", timeout=5.0)  # insert + signal pass
        controller.finish()
    controller.raise_worker_errors()
    assert outcomes == ["ok"]
    assert_counter_quiescent(counter, expect_value=1)


def test_adjudication_beats_late_increment():
    """The other side of the adjudication window: the timeout's lock
    acquisition is scheduled *before* the increment's critical section.
    Adjudication must then report a genuine timeout and deregister the
    node completely, so the late increment releases nobody and nothing
    leaks.  (The release-wins side of the window is
    ``test_same_schedule_clean_on_current_increment``.)"""
    counter = MonotonicCounter()
    result = {}

    def waiter():
        try:
            counter.check(2, timeout=0.25)
            result["check"] = "released"
        except CheckTimeout:
            result["check"] = "timeout"

    controller = Controller()
    controller.spawn("w", waiter)
    controller.spawn("inc", counter.increment, 2)
    with controller:
        controller.until("w", "park.enter")
        controller.grant("w")
        # Park the increment at its lock gate: poised, but its critical
        # section is entirely in the waiter's future.
        controller.until("inc", "increment.lock")
        controller.until("w", "park.verdict", timeout=5.0)
        # Verdict (genuine timeout) → adjudication → uncontended counter
        # lock → CheckTimeout + node deregistration, all the way out.
        outcome = controller.run_thread("w", timeout=5.0)
        assert outcome == "done", str(controller.trace)
        controller.run_thread("inc", timeout=5.0)
        controller.finish()
    controller.raise_worker_errors()
    assert result["check"] == "timeout"
    # The late increment found no waiters; the node was fully reclaimed.
    assert_counter_quiescent(counter, expect_value=2)
