"""The sharded counter under adversarial schedules.

The interesting surface is the no-lost-wakeup protocol between a shard's
``increment`` (add pending → read ``_checkers`` under the shard lock)
and a checker's registration + drain.  Batching means a pending amount
can lawfully sit unpublished — but never while a checker is registered.
"""

from __future__ import annotations

from repro.core.sharded import ShardedCounter
from repro.testkit import (
    assert_sharded_quiescent,
    grant,
    interleave,
    probe,
    run_script,
    run_thread,
    until,
)


@interleave(schedules=12)
def test_batched_fan_in_releases_checker(sched):
    """Producers whose amounts sit below the batch threshold, one checker
    for the total: the checker's presence must force eager flushes, so it
    is always released regardless of where registration lands."""
    counter = ShardedCounter(shards=2, batch=100)  # batching alone never flushes
    for i in range(sched.threads):
        sched.spawn(f"inc{i}", counter.increment, 1)
    sched.spawn("w", counter.check, sched.threads)
    sched.run()
    assert_sharded_quiescent(counter, expect_value=sched.threads)


@interleave(schedules=10, scheduler="pct")
def test_batched_fan_in_pct(sched):
    counter = ShardedCounter(shards=2, batch=100)
    for i in range(sched.threads):
        sched.spawn(f"inc{i}", counter.increment, 1)
    sched.spawn("w", counter.check, sched.threads)
    sched.run()
    assert_sharded_quiescent(counter, expect_value=sched.threads)


@interleave(schedules=10)
def test_subscription_keeps_eager_flush(sched):
    """A live subscription counts as a checker: the increment reaching
    the level delivers the callback even with batching configured."""
    counter = ShardedCounter(shards=2, batch=100)
    fired = []

    def subscriber():
        sub = counter.subscribe(2, lambda: fired.append("hit"))
        if sub is None:
            fired.append("hit")

    sched.spawn("sub", subscriber)
    sched.spawn("incA", counter.increment, 1)
    sched.spawn("incB", counter.increment, 1)
    sched.run()
    assert fired == ["hit"]
    assert_sharded_quiescent(counter, expect_value=2)


def test_scripted_no_lost_wakeup_handoff():
    """The documented ordering argument, pinned as a script: a producer
    paused *before* its shard-lock critical section, a checker that
    registers and drains (seeing nothing) and parks — when the producer
    resumes, it must observe the registration and flush eagerly, waking
    the checker.  The batch threshold is unreachable, so only the
    checker-presence read can save this schedule from a lost wakeup."""
    counter = ShardedCounter(shards=1, batch=100)

    controller = run_script(
        [
            until("inc", "shard.lock"),       # poised to add, hasn't yet
            run_thread("w", expect="blocked"),  # registers, drains 0, parks
            probe(lambda c: _assert_registered(counter)),
            run_thread("inc", expect="done"),  # add + see checker → flush
        ],
        {"inc": (counter.increment, 3), "w": (counter.check, 3)},
    )
    assert "shard.flush" in {step.point for step in controller.trace}
    assert_sharded_quiescent(counter, expect_value=3)


def _assert_registered(counter):
    assert counter._checkers == 1, "checker parked without registering"
    assert counter.pending == 0, "producer published before being granted"
