"""Shrinking a real failing trace: the PR-2 drain leak, minimized.

The acceptance path: record the full grant trace of the historical
draining-set leak (11 grants on the shared pre-fix model), hand it to
:func:`shrink_trace` with the standard replay predicate, and get back a
trace of a handful of grants that still — deterministically — produces
the leak when replayed.  Alongside it, fast synthetic-predicate tests
pin the minimizer's mechanics (ddmin 1-minimality, validation, budget)
without spawning threads.
"""

from __future__ import annotations

import pytest

from repro.testkit import (
    grant,
    replay,
    replay_fails,
    run_script,
    run_thread,
    shrink_trace,
    until,
)
from repro.testkit.trace import Trace

from tests.testkit.prefix_counter import drain_leak_model


def record_leak_trace() -> Trace:
    """Drive the leak schedule end to end and return its full trace."""
    counter, threads, leaked = drain_leak_model()
    controller = run_script(
        [
            until("w", "park.enter"),
            grant("w"),
            until("inc", "increment.drain"),
            run_thread("w", expect="done"),
            run_thread("inc"),
        ],
        threads,
    )
    assert leaked(controller), str(controller.trace)
    return controller.trace


def leak_predicate():
    """The standard shrink predicate: fresh pre-fix model per candidate,
    failure = the ``leaked`` oracle after an until-mode replay."""
    return replay_fails(lambda: drain_leak_model()[1:])


class TestDrainLeakShrinks:
    def test_full_trace_reproduces_under_replay(self):
        # The shrinker's precondition, checked on its own so a predicate
        # regression fails here and not inside shrink_trace's ValueError.
        assert leak_predicate()(record_leak_trace())

    def test_leak_shrinks_to_a_handful_of_grants(self):
        full = record_leak_trace()
        result = shrink_trace(full, leak_predicate(), max_replays=200)
        assert result.original_steps == len(full)
        # The ISSUE's bar: from the full schedule to <= 5 grants.
        assert result.minimal_steps <= 5
        assert result.replays <= 200
        # The race needs both workers; a one-sided "minimum" would mean
        # the predicate accepted an unrelated failure.
        assert {step.thread for step in result.minimal} == {"w", "inc"}
        assert "step(s)" in str(result)

    def test_minimal_trace_replays_to_the_same_leak(self):
        result = shrink_trace(record_leak_trace(), leak_predicate(), max_replays=200)
        counter, threads, leaked = drain_leak_model()
        rerun = replay(result.minimal, threads, mode="until", step_timeout=2.0)
        assert rerun.divergences == 0
        assert leaked(rerun.controller), str(rerun.controller.trace)
        # The leaked entry poisons the counter exactly like the original
        # bug report: a lone draining node that never drains.
        assert len(counter._draining) == 1

    def test_oracle_predicate_rejects_a_different_failure(self):
        """The pre-fix model can also *crash* (double slot release when
        the replay delivers both wakes back-to-back).  That is a
        different bug: the leak's oracle predicate must not count it,
        or the shrinker walks across failure modes while "minimizing"."""
        crash_schedule = Trace.parse("w:park.enter inc:increment.lock")
        assert not leak_predicate()(crash_schedule)
        # An exception-mode predicate targets exactly that crash...
        crashes = replay_fails(
            lambda: drain_leak_model()[1], exception=RuntimeError
        )
        assert crashes(crash_schedule)
        # ...and symmetrically ignores the silent leak schedule.
        assert not crashes(Trace.parse("w:park.enter inc:increment.release"))


class TestShrinkMechanics:
    """Synthetic predicates: no threads, every replay is a pure function."""

    TRACE = Trace.parse("a:p b:q a:r c:s b:t a:u c:v b:w")

    @staticmethod
    def ordered_pair(first: str, second: str):
        def fails(candidate: Trace) -> bool:
            steps = [str(step) for step in candidate]
            return (
                first in steps
                and second in steps
                and steps.index(first) < steps.index(second)
            )

        return fails

    def test_ddmin_reaches_the_two_step_core(self):
        result = shrink_trace(self.TRACE, self.ordered_pair("b:q", "c:v"))
        assert [str(step) for step in result.minimal] == ["b:q", "c:v"]
        assert result.original_steps == 8

    def test_result_is_one_minimal(self):
        fails = self.ordered_pair("a:p", "b:w")
        result = shrink_trace(self.TRACE, fails)
        steps = list(result.minimal)
        for drop in range(len(steps)):
            candidate = Trace(steps[:drop] + steps[drop + 1:])
            assert not fails(candidate), f"dropping step {drop} still fails"

    def test_predicate_must_fail_on_the_original(self):
        with pytest.raises(ValueError, match="does not fail on the original"):
            shrink_trace(self.TRACE, lambda candidate: False)

    def test_empty_trace_is_rejected(self):
        with pytest.raises(ValueError, match="empty trace"):
            shrink_trace(Trace([]), lambda candidate: True)

    def test_budget_exhaustion_keeps_a_validated_trace(self):
        # One replay of budget: enough to validate the original, none to
        # improve on it — the result must be the (validated) input, not
        # some unverified shorter candidate.
        result = shrink_trace(
            self.TRACE, self.ordered_pair("b:q", "c:v"), max_replays=1
        )
        assert result.replays == 1
        assert [str(s) for s in result.minimal] == [str(s) for s in self.TRACE]

    def test_minimal_trace_is_saved_to_trace_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TESTKIT_TRACE_DIR", str(tmp_path))
        result = shrink_trace(self.TRACE, self.ordered_pair("b:q", "c:v"))
        assert result.path is not None
        saved = (tmp_path / "minimal-2steps.trace").read_text(encoding="utf-8")
        assert saved.strip() == str(result.minimal)
        assert str(result.path) == str(tmp_path / "minimal-2steps.trace")

    def test_save_as_overrides_trace_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TESTKIT_TRACE_DIR", str(tmp_path / "unused"))
        target = tmp_path / "picked.trace"
        result = shrink_trace(
            self.TRACE, self.ordered_pair("b:q", "c:v"), save_as=str(target)
        )
        assert result.path == str(target)
        assert target.read_text(encoding="utf-8").strip() == str(result.minimal)
