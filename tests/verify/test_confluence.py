"""Property-based model checking of the §6 determinacy theorem.

The paper's claim, generalized: a program whose ONLY synchronization is
counter operations is *confluent* — every schedule leads to the same
outcome.  This is the Kahn-network argument: check conditions are
monotone (once enabled, never disabled) and increments commute, so the
set of reachable final states has exactly one element, and
deadlock-or-not is also schedule-independent.

Hypothesis generates random small counter programs; the exhaustive
explorer enumerates ALL their interleavings; the properties assert:

* at most one distinct final state (counter values);
* deadlock is all-or-nothing across schedules;
* adding a lock to the same program CAN break confluence (sanity check
  that the test harness can detect nondeterminism at all).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simthread import SimCounter, SimLock
from repro.simthread.syscalls import Delay
from repro.verify import ExplorerProgram, explore

# An op is ("inc", counter_idx, amount) or ("chk", counter_idx, level).
ops = st.one_of(
    st.tuples(st.just("inc"), st.integers(0, 1), st.integers(0, 2)),
    st.tuples(st.just("chk"), st.integers(0, 1), st.integers(0, 4)),
)


@st.composite
def programs(draw):
    """2-3 tasks with a bounded TOTAL op count, so the exhaustive search
    stays well under the execution cap (the schedule count is roughly
    multinomial in the per-task step counts)."""
    num_tasks = draw(st.integers(2, 3))
    budget = 7 - num_tasks  # total ops across tasks
    specs = []
    for t in range(num_tasks):
        remaining_tasks = num_tasks - t - 1
        size = draw(st.integers(1, max(1, budget - remaining_tasks)))
        budget -= size
        specs.append(draw(st.lists(ops, min_size=size, max_size=size)))
    return specs


programs = programs()


def make_factory(task_specs):
    def factory() -> ExplorerProgram:
        counters = [SimCounter("c0"), SimCounter("c1")]

        def task(spec):
            for kind, idx, operand in spec:
                if kind == "inc":
                    yield counters[idx].increment(operand)
                else:
                    yield counters[idx].check(operand)

        return ExplorerProgram(
            tasks=[task(spec) for spec in task_specs],
            observe=lambda: (counters[0].value, counters[1].value),
        )

    return factory


@settings(deadline=None, max_examples=60)
@given(programs)
def test_counter_only_programs_are_confluent(task_specs):
    report = explore(make_factory(task_specs), max_executions=50_000)
    assert not report.truncated
    # One outcome: either every schedule completes with the same values...
    assert len(report.states) <= 1
    # ...or every schedule deadlocks (monotone conditions: an unreachable
    # level is unreachable in all schedules).
    assert report.deadlocks in (0, report.executions)


@settings(deadline=None, max_examples=40)
@given(programs)
def test_deadlock_verdict_matches_reachability(task_specs):
    """Cross-check the all-or-nothing deadlock verdict against a simple
    reachability argument: run the program greedily (any enabled task) —
    one run's outcome must equal the explorer's uniform verdict."""
    report = explore(make_factory(task_specs), max_executions=50_000)
    greedy = explore(make_factory(task_specs), max_executions=1)
    if report.deadlocks:
        assert greedy.deadlocks == 1
    else:
        assert greedy.deadlocks == 0
        assert greedy.states == report.states


@settings(deadline=None, max_examples=30)
@given(
    st.lists(st.integers(1, 3), min_size=2, max_size=3),  # increments per task
)
def test_pure_increment_programs_never_deadlock(amounts):
    def factory():
        counter = SimCounter()

        def task(amount):
            yield counter.increment(amount)
            yield Delay(0)

        return ExplorerProgram(
            tasks=[task(a) for a in amounts], observe=lambda: counter.value
        )

    report = explore(factory)
    assert report.deterministic
    assert report.states == {sum(amounts)}


def test_harness_detects_nondeterminism_with_locks():
    """Sanity: the same harness DOES flag a lock program — so the
    confluence results above are not a vacuous pass."""

    def factory():
        lock = SimLock()
        order = []

        def worker(i):
            yield lock.acquire()
            order.append(i)
            yield lock.release()

        return ExplorerProgram(
            tasks=[worker(0), worker(1)], observe=lambda: tuple(order)
        )

    report = explore(factory)
    assert len(report.states) == 2
