"""Tests for random-schedule sampling (explore_random) and new helpers."""

from __future__ import annotations

import pytest

from repro.determinism import sequentially_executable
from repro.verify import (
    counter_ordered_program,
    explore,
    explore_random,
    lock_program,
)


class TestExploreRandom:
    def test_finds_lock_nondeterminism(self):
        report = explore_random(lock_program, samples=200, seed=1)
        assert report.states == {1, 2}
        assert report.executions == 200
        assert report.truncated  # sampling never proves determinacy

    def test_single_state_for_ordered_program(self):
        report = explore_random(counter_ordered_program, samples=100, seed=2)
        assert report.states == {2}
        assert not report.deterministic  # honest: evidence, not proof

    def test_seeded_reproducibility(self):
        a = explore_random(lock_program, samples=50, seed=7)
        b = explore_random(lock_program, samples=50, seed=7)
        assert a.states == b.states
        assert a.deadlocks == b.deadlocks

    def test_counts_deadlocks(self):
        from repro.simthread import SimCounter
        from repro.verify import ExplorerProgram

        def factory():
            c = SimCounter()

            def stuck():
                yield c.check(5)

            return ExplorerProgram(tasks=[stuck()], observe=lambda: None)

        report = explore_random(factory, samples=10)
        assert report.deadlocks == 10

    def test_agrees_with_exhaustive_on_small_programs(self):
        exhaustive = explore(lock_program)
        sampled = explore_random(lock_program, samples=500, seed=3)
        assert sampled.states <= exhaustive.states
        # 500 samples of an 8-schedule space: both outcomes found w.h.p.
        assert sampled.states == exhaustive.states

    def test_unbounded_program_detected(self):
        from repro.simthread import Delay
        from repro.verify import ExplorerProgram

        def factory():
            def forever():
                while True:
                    yield Delay(0)

            return ExplorerProgram(tasks=[forever()], observe=lambda: 0)

        with pytest.raises(RuntimeError, match="max_steps"):
            explore_random(factory, samples=1, max_steps=50)


class TestSequentiallyExecutable:
    def test_section5_programs_are(self):
        from repro.apps.accumulate import accumulate_counter, float_sum

        assert sequentially_executable(
            lambda: accumulate_counter([1.0, 2.0, 3.0], float_sum, 0.0)
        )

    def test_broadcast_is(self):
        from repro.patterns import SingleWriterBroadcast
        from repro.structured import multithreaded

        def program():
            bc = SingleWriterBroadcast(5)

            def writer():
                for i in range(5):
                    bc.publish(i)

            def reader():
                return list(bc.read())

            multithreaded(writer, reader)

        assert sequentially_executable(program)

    def test_floyd_warshall_counter_version_is_not(self):
        """The §6 boundary case: deterministic but not sequentially
        executable (thread 0 needs a row thread 1 produces)."""
        from repro.apps.floyd_warshall import figure1_edge, shortest_paths_counter

        assert not sequentially_executable(
            lambda: shortest_paths_counter(figure1_edge(), num_threads=3),
            budget=0.5,
        )

    def test_failing_program_is_not(self):
        def program():
            raise ValueError("broken")

        assert not sequentially_executable(program)
