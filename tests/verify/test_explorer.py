"""Tests for the exhaustive schedule explorer."""

from __future__ import annotations

import pytest

from repro.simthread import Compute, Delay, SimCounter, SimLock, SimSemaphore
from repro.simthread.primitives import SimBarrier, SimEvent
from repro.verify import ExplorerProgram, explore


class TestBasicExploration:
    def test_single_task_single_state(self):
        def program():
            x = [0]

            def task():
                x[0] = 1
                yield Delay(0)
                x[0] += 1

            return ExplorerProgram(tasks=[task()], observe=lambda: x[0])

        report = explore(program)
        assert report.deterministic
        assert report.states == {2}
        assert report.executions == 1

    def test_two_independent_tasks_still_one_state(self):
        def program():
            x = [0]
            y = [0]

            def a():
                yield Delay(0)
                x[0] = 1

            def b():
                yield Delay(0)
                y[0] = 1

            return ExplorerProgram(tasks=[a(), b()], observe=lambda: (x[0], y[0]))

        report = explore(program)
        assert report.deterministic
        assert report.states == {(1, 1)}
        assert report.executions > 1  # interleavings explored

    def test_order_sensitive_tasks_multiple_states(self):
        def program():
            x = [0]

            def add():
                yield Delay(0)
                x[0] += 1

            def double():
                yield Delay(0)
                x[0] *= 2

            return ExplorerProgram(tasks=[add(), double()], observe=lambda: x[0])

        report = explore(program)
        assert not report.deterministic
        assert report.states == {1, 2}

    def test_deadlock_counted(self):
        def program():
            c = SimCounter()

            def stuck():
                yield c.check(1)

            return ExplorerProgram(tasks=[stuck()], observe=lambda: None)

        report = explore(program)
        assert report.deadlocks == report.executions == 1
        assert not report.deterministic

    def test_compute_costs_ignored(self):
        def program():
            x = [0]

            def task():
                yield Compute(1e9)
                x[0] = 1

            return ExplorerProgram(tasks=[task()], observe=lambda: x[0])

        assert explore(program).states == {1}

    def test_truncation_flag(self):
        def program():
            def chatty():
                for _ in range(3):
                    yield Delay(0)

            return ExplorerProgram(
                tasks=[chatty(), chatty(), chatty()], observe=lambda: 0
            )

        report = explore(program, max_executions=2)
        assert report.truncated
        assert not report.deterministic

    def test_unbounded_task_detected(self):
        def program():
            def forever():
                while True:
                    yield Delay(0)

            return ExplorerProgram(tasks=[forever()], observe=lambda: 0)

        with pytest.raises(RuntimeError, match="max_steps"):
            explore(program, max_steps=100)


class TestPrimitiveSemantics:
    def test_lock_grants_explored_in_both_orders(self):
        def program():
            lock = SimLock()
            order = []

            def worker(i):
                yield lock.acquire()
                order.append(i)
                yield lock.release()

            return ExplorerProgram(
                tasks=[worker(0), worker(1)], observe=lambda: tuple(order)
            )

        report = explore(program)
        assert report.states == {(0, 1), (1, 0)}

    def test_semaphore_bounded(self):
        def program():
            sem = SimSemaphore(1)
            max_inside = [0]
            inside = [0]

            def worker():
                yield sem.acquire()
                inside[0] += 1
                max_inside[0] = max(max_inside[0], inside[0])
                yield Delay(0)
                inside[0] -= 1
                yield sem.release()

            return ExplorerProgram(
                tasks=[worker(), worker()], observe=lambda: max_inside[0]
            )

        assert explore(program).states == {1}

    def test_event_orders_across_tasks(self):
        def program():
            e = SimEvent()
            x = [0]

            def setter():
                x[0] = 5
                yield e.set()

            def waiter():
                yield e.check()
                x[0] += 1

            return ExplorerProgram(tasks=[setter(), waiter()], observe=lambda: x[0])

        report = explore(program)
        assert report.deterministic
        assert report.states == {6}

    def test_barrier_all_parties_released(self):
        def program():
            b = SimBarrier(2)
            log = []

            def worker(i):
                yield b.pass_()
                log.append(i)

            return ExplorerProgram(
                tasks=[worker(0), worker(1)], observe=lambda: frozenset(log)
            )

        report = explore(program)
        assert report.states == {frozenset({0, 1})}
        assert report.deadlocks == 0

    def test_barrier_release_order_is_explored(self):
        def program():
            b = SimBarrier(2)
            order = []

            def worker(i):
                yield b.pass_()
                order.append(i)

            return ExplorerProgram(
                tasks=[worker(0), worker(1)], observe=lambda: tuple(order)
            )

        assert explore(program).states == {(0, 1), (1, 0)}

    def test_counter_stable_condition_no_order_branching(self):
        """Two waiters at the same satisfied level both proceed in all
        interleavings — no lost wakeups anywhere in the state space."""

        def program():
            c = SimCounter()
            done = []

            def incrementer():
                yield c.increment(5)

            def waiter(i):
                yield c.check(5)
                done.append(i)

            return ExplorerProgram(
                tasks=[incrementer(), waiter(0), waiter(1)],
                observe=lambda: frozenset(done),
            )

        report = explore(program)
        assert report.states == {frozenset({0, 1})}
        assert report.deadlocks == 0
