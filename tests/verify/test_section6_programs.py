"""E7: exhaustive verification of the paper's §6 determinacy claims."""

from __future__ import annotations

from repro.verify import (
    counter_ordered_program,
    counter_racy_program,
    counter_racy_program_split,
    explore,
    lock_program,
    lock_program_split,
)


class TestPaperSection6:
    def test_lock_program_is_nondeterministic(self):
        """The paper: 'the resulting value of x is nondeterministic
        because of the race condition on the order in which the two
        threads acquire the lock'."""
        report = explore(lock_program)
        assert report.states == {1, 2}  # x*2 first -> 1; x+1 first -> 2
        assert report.deadlocks == 0

    def test_ordered_counter_program_is_deterministic(self):
        """The paper: 'the Check operations will succeed in the same order
        in all executions' — one state across ALL interleavings."""
        report = explore(counter_ordered_program)
        assert report.deterministic
        assert report.states == {2}

    def test_racy_counter_program_is_nondeterministic(self):
        """Counter sync without the shared-variable discipline: the
        nondeterminacy is caused by concurrent access, not by a
        synchronization race condition."""
        report = explore(counter_racy_program)
        assert report.states == {1, 2}
        assert report.deadlocks == 0

    def test_split_racy_program_exposes_lost_updates(self):
        """With read and write split across scheduling points, the racy
        program additionally loses updates (both read x == 0)."""
        report = explore(counter_racy_program_split)
        assert report.states == {0, 1, 2}

    def test_split_lock_program_gains_no_states(self):
        """The lock DOES protect the read-modify-write: splitting inside
        the critical section adds no outcomes beyond ordering."""
        report = explore(lock_program_split)
        assert report.states == {1, 2}

    def test_no_deadlocks_anywhere(self):
        for factory in (
            lock_program,
            counter_ordered_program,
            counter_racy_program,
            lock_program_split,
            counter_racy_program_split,
        ):
            assert explore(factory).deadlocks == 0, factory.__name__

    def test_ordered_program_state_count_is_exactly_one_at_scale(self):
        """Chain of N counter-ordered mutations: still exactly one final
        state despite a combinatorial schedule space."""
        from repro.simthread import SimCounter
        from repro.verify import ExplorerProgram

        def program():
            c = SimCounter()
            x = [1]

            def worker(i):
                yield c.check(i)
                x[0] = x[0] * 2 + i
                yield c.increment(1)

            return ExplorerProgram(
                tasks=[worker(i) for i in range(4)], observe=lambda: x[0]
            )

        report = explore(program)
        assert report.deterministic
        expected = 1
        for i in range(4):
            expected = expected * 2 + i
        assert report.states == {expected}
